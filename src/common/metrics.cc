#include "common/metrics.h"

namespace db2graph::metrics {

namespace {

// Bucket index for a value: 0 for <=1, else 1 + floor(log2(v-ish)),
// clamped into the fixed bucket range.
int BucketIndex(uint64_t value) {
  int b = 0;
  uint64_t bound = 1;
  while (b < Histogram::kBuckets - 1 && value > bound) {
    ++b;
    bound <<= 1;
  }
  return b;
}

}  // namespace

void Histogram::Observe(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

uint64_t Histogram::Percentile(double q) const {
  uint64_t total = count_.load(std::memory_order_relaxed);
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      return b == 0 ? 1 : (uint64_t{1} << b);
    }
  }
  return uint64_t{1} << (kBuckets - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += "counter " + name + " " + std::to_string(c->load()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    out += "gauge " + name + " " + std::to_string(g->Value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    out += "histogram " + name + " count=" + std::to_string(h->Count()) +
           " sum=" + std::to_string(h->Sum()) +
           " p50=" + std::to_string(h->Percentile(0.50)) +
           " p95=" + std::to_string(h->Percentile(0.95)) +
           " p99=" + std::to_string(h->Percentile(0.99)) + "\n";
  }
  return out;
}

namespace {

// Maps a registry name onto the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*; out-of-charset bytes (dots, dashes, UTF-8
// continuation bytes) collapse to '_', and a leading digit is prefixed.
std::string SanitizePrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, "_");
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    std::string p = SanitizePrometheusName(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(c->load()) + "\n";
  }
  for (const auto& [name, g] : gauges_) {
    std::string p = SanitizePrometheusName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(g->Value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    std::string p = SanitizePrometheusName(name);
    out += "# TYPE " + p + " summary\n";
    out += p + "{quantile=\"0.5\"} " + std::to_string(h->Percentile(0.50)) +
           "\n";
    out += p + "{quantile=\"0.95\"} " + std::to_string(h->Percentile(0.95)) +
           "\n";
    out += p + "{quantile=\"0.99\"} " + std::to_string(h->Percentile(0.99)) +
           "\n";
    out += p + "_sum " + std::to_string(h->Sum()) + "\n";
    out += p + "_count " + std::to_string(h->Count()) + "\n";
  }
  return out;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    Sample s;
    s.name = name;
    s.kind = "counter";
    s.value = static_cast<int64_t>(c->load());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    Sample s;
    s.name = name;
    s.kind = "gauge";
    s.value = g->Value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    Sample s;
    s.name = name;
    s.kind = "histogram";
    s.value = static_cast<int64_t>(h->Count());
    s.sum = h->Sum();
    s.p50 = h->Percentile(0.50);
    s.p95 = h->Percentile(0.95);
    s.p99 = h->Percentile(0.99);
    out.push_back(std::move(s));
  }
  return out;
}

Json MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json counters = Json::Object();
  for (const auto& [name, c] : counters_) {
    counters.Set(name, Json::Number(static_cast<double>(c->load())));
  }
  Json gauges = Json::Object();
  for (const auto& [name, g] : gauges_) {
    gauges.Set(name, Json::Number(static_cast<double>(g->Value())));
  }
  Json histograms = Json::Object();
  for (const auto& [name, h] : histograms_) {
    Json one = Json::Object();
    one.Set("count", Json::Number(static_cast<double>(h->Count())));
    one.Set("sum", Json::Number(static_cast<double>(h->Sum())));
    one.Set("p50", Json::Number(static_cast<double>(h->Percentile(0.50))));
    one.Set("p95", Json::Number(static_cast<double>(h->Percentile(0.95))));
    one.Set("p99", Json::Number(static_cast<double>(h->Percentile(0.99))));
    histograms.Set(name, std::move(one));
  }
  Json out = Json::Object();
  out.Set("counters", std::move(counters));
  out.Set("gauges", std::move(gauges));
  out.Set("histograms", std::move(histograms));
  return out;
}

}  // namespace db2graph::metrics
