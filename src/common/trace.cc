#include "common/trace.h"

#include <chrono>
#include <cstdlib>

namespace db2graph {

uint64_t TraceClock::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

TraceClock* TraceClock::Default() {
  static TraceClock* instance = new TraceClock();
  return instance;
}

QueryTrace::QueryTrace(TraceClock* clock) : clock_(clock) {}

void QueryTrace::SetScript(std::string script) {
  std::lock_guard<std::mutex> lock(mutex_);
  script_ = std::move(script);
}

void QueryTrace::SetPlanSource(std::string source) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_source_ = std::move(source);
}

std::string QueryTrace::plan_source() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plan_source_;
}

void QueryTrace::SetTermination(std::string reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  termination_ = std::move(reason);
}

std::string QueryTrace::termination() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return termination_;
}

StepTraceSpan* QueryTrace::InnermostOpenLocked() {
  if (open_.empty()) return nullptr;
  return &spans_[open_.back()];
}

int QueryTrace::BeginStep(std::string step, std::string detail,
                          uint64_t in_count) {
  std::lock_guard<std::mutex> lock(mutex_);
  StepTraceSpan span;
  span.index = static_cast<int>(spans_.size());
  span.depth = static_cast<int>(open_.size());
  span.step = std::move(step);
  span.detail = std::move(detail);
  span.in_count = in_count;
  span.start_micros = clock_->NowMicros();
  span.tid = TraceTid();
  spans_.push_back(std::move(span));
  span_starts_.push_back(spans_.back().start_micros);
  span_paused_.push_back(false);
  open_.push_back(spans_.back().index);
  return spans_.back().index;
}

void QueryTrace::EndStep(int span_id, uint64_t out_count) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (span_id < 0 || span_id >= static_cast<int>(spans_.size())) return;
  StepTraceSpan& span = spans_[span_id];
  span.out_count = out_count;
  // Accumulate (not assign): a streamed span already banked the micros of
  // its earlier Resume/Pause windows.
  if (!span_paused_[span_id]) {
    span.micros += clock_->NowMicros() - span_starts_[span_id];
  }
  // Close this span (and, defensively, anything opened after it).
  while (!open_.empty() && open_.back() >= span_id) open_.pop_back();
}

void QueryTrace::PauseStep(int span_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (span_id < 0 || span_id >= static_cast<int>(spans_.size())) return;
  if (span_paused_[span_id]) return;
  spans_[span_id].micros += clock_->NowMicros() - span_starts_[span_id];
  span_paused_[span_id] = true;
  while (!open_.empty() && open_.back() >= span_id) open_.pop_back();
}

void QueryTrace::ResumeStep(int span_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (span_id < 0 || span_id >= static_cast<int>(spans_.size())) return;
  if (!span_paused_[span_id]) return;
  span_starts_[span_id] = clock_->NowMicros();
  span_paused_[span_id] = false;
  open_.push_back(span_id);
}

void QueryTrace::AddBlocks(uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (StepTraceSpan* span = InnermostOpenLocked()) span->blocks += n;
}

void QueryTrace::AddStepInput(int span_id, uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (span_id < 0 || span_id >= static_cast<int>(spans_.size())) return;
  spans_[span_id].in_count += n;
}

void QueryTrace::AddRewrite(std::string strategy, std::string before,
                            std::string after) {
  std::lock_guard<std::mutex> lock(mutex_);
  rewrites_.push_back(
      {std::move(strategy), std::move(before), std::move(after)});
}

void QueryTrace::RecordSql(SqlTraceRecord record) {
  if (record.tid == 0) record.tid = TraceTid();
  if (record.start_micros == 0) {
    uint64_t now = clock_->NowMicros();
    record.start_micros = now > record.micros ? now - record.micros : 0;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (StepTraceSpan* span = InnermostOpenLocked()) {
    span->statements.push_back(std::move(record));
  }
}

void QueryTrace::AddTableConsulted(std::string table) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (StepTraceSpan* span = InnermostOpenLocked()) {
    span->tables_consulted.push_back(std::move(table));
  }
}

void QueryTrace::AddTablePruned(std::string table) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (StepTraceSpan* span = InnermostOpenLocked()) {
    span->tables_pruned.push_back(std::move(table));
  }
}

void QueryTrace::AddCacheHit() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (StepTraceSpan* span = InnermostOpenLocked()) ++span->cache_hits;
}

void QueryTrace::AddCacheMiss() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (StepTraceSpan* span = InnermostOpenLocked()) ++span->cache_misses;
}

void QueryTrace::AddFanout(uint64_t batches, uint64_t tasks) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (StepTraceSpan* span = InnermostOpenLocked()) {
    span->fanout_batches += batches;
    span->fanout_tasks += tasks;
  }
}

void QueryTrace::AddShortcutVertices(uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (StepTraceSpan* span = InnermostOpenLocked()) {
    span->shortcut_vertices += n;
  }
}

void QueryTrace::Finish(uint64_t total_micros) {
  std::lock_guard<std::mutex> lock(mutex_);
  total_micros_ = total_micros;
}

uint64_t QueryTrace::total_micros() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_micros_;
}

std::vector<StepTraceSpan> QueryTrace::Spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {spans_.begin(), spans_.end()};
}

std::vector<StrategyRewrite> QueryTrace::Rewrites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rewrites_;
}

QueryTrace::RowTotals QueryTrace::SqlRowTotals() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RowTotals totals;
  for (const StepTraceSpan& span : spans_) {
    for (const SqlTraceRecord& rec : span.statements) {
      totals.rows_scanned += rec.rows_scanned;
      totals.rows_emitted += rec.rows_emitted;
    }
  }
  return totals;
}

std::string QueryTrace::RenderText() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  if (!script_.empty()) out += "query: " + script_ + "\n";
  if (!plan_source_.empty()) out += "plan: " + plan_source_ + "\n";
  if (!termination_.empty() && termination_ != "ok") {
    out += "termination: " + termination_ + "\n";
  }
  if (!rewrites_.empty()) {
    out += "strategies:\n";
    for (const StrategyRewrite& r : rewrites_) {
      out += "  " + r.strategy + ":\n";
      out += "    before: " + r.before + "\n";
      out += "    after:  " + r.after + "\n";
    }
  }
  out += "steps:\n";
  for (const StepTraceSpan& span : spans_) {
    std::string pad(2 + 2 * static_cast<size_t>(span.depth), ' ');
    out += pad + span.step + " " + span.detail + "  [" +
           std::to_string(span.in_count) + " -> " +
           std::to_string(span.out_count) + " traversers, " +
           std::to_string(span.micros) + "us]\n";
    if (span.blocks > 0) {
      out += pad + "  blocks=" + std::to_string(span.blocks) + "\n";
    }
    if (!span.tables_consulted.empty() || !span.tables_pruned.empty()) {
      out += pad + "  tables: consulted=" +
             std::to_string(span.tables_consulted.size()) + " pruned=" +
             std::to_string(span.tables_pruned.size());
      if (!span.tables_consulted.empty()) {
        out += " [";
        for (size_t i = 0; i < span.tables_consulted.size(); ++i) {
          if (i > 0) out += ", ";
          out += span.tables_consulted[i];
        }
        out += "]";
      }
      out += "\n";
    }
    if (span.cache_hits + span.cache_misses > 0) {
      out += pad + "  cache: hits=" + std::to_string(span.cache_hits) +
             " misses=" + std::to_string(span.cache_misses) + "\n";
    }
    if (span.fanout_batches > 0) {
      out += pad + "  fanout: batches=" +
             std::to_string(span.fanout_batches) +
             " tasks=" + std::to_string(span.fanout_tasks) + "\n";
    }
    if (span.shortcut_vertices > 0) {
      out += pad + "  shortcut_vertices=" +
             std::to_string(span.shortcut_vertices) + "\n";
    }
    for (const SqlTraceRecord& rec : span.statements) {
      out += pad + "  sql[" + rec.table + ", " + rec.access_path + "]: " +
             rec.sql + "\n";
      out += pad + "    rows: scanned=" + std::to_string(rec.rows_scanned) +
             " returned=" + std::to_string(rec.rows_returned);
      if (rec.rows_emitted != rec.rows_returned) {
        out += " emitted=" + std::to_string(rec.rows_emitted);
      }
      if (rec.rows_estimated > 0) {
        out += " estimated<=" + std::to_string(rec.rows_estimated);
      }
      if (!rec.exec_mode.empty()) {
        out += " mode=" + rec.exec_mode;
      }
      out += " (" + std::to_string(rec.micros) + "us)\n";
    }
  }
  out += "total: " + std::to_string(total_micros_) + "us\n";
  return out;
}

Json QueryTrace::ToJson() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json out = Json::Object();
  out.Set("script", Json::Str(script_));
  if (!plan_source_.empty()) out.Set("plan", Json::Str(plan_source_));
  if (!termination_.empty()) {
    out.Set("termination", Json::Str(termination_));
  }
  out.Set("total_micros", Json::Number(static_cast<double>(total_micros_)));
  Json strategies = Json::Array();
  for (const StrategyRewrite& r : rewrites_) {
    Json one = Json::Object();
    one.Set("strategy", Json::Str(r.strategy));
    one.Set("before", Json::Str(r.before));
    one.Set("after", Json::Str(r.after));
    strategies.Append(std::move(one));
  }
  out.Set("strategies", std::move(strategies));
  Json steps = Json::Array();
  for (const StepTraceSpan& span : spans_) {
    Json one = Json::Object();
    one.Set("index", Json::Number(span.index));
    one.Set("depth", Json::Number(span.depth));
    one.Set("step", Json::Str(span.step));
    one.Set("detail", Json::Str(span.detail));
    one.Set("in", Json::Number(static_cast<double>(span.in_count)));
    one.Set("out", Json::Number(static_cast<double>(span.out_count)));
    one.Set("micros", Json::Number(static_cast<double>(span.micros)));
    one.Set("blocks", Json::Number(static_cast<double>(span.blocks)));
    Json consulted = Json::Array();
    for (const std::string& t : span.tables_consulted) {
      consulted.Append(Json::Str(t));
    }
    one.Set("tables_consulted", std::move(consulted));
    Json pruned = Json::Array();
    for (const std::string& t : span.tables_pruned) {
      pruned.Append(Json::Str(t));
    }
    one.Set("tables_pruned", std::move(pruned));
    one.Set("cache_hits", Json::Number(static_cast<double>(span.cache_hits)));
    one.Set("cache_misses",
            Json::Number(static_cast<double>(span.cache_misses)));
    one.Set("fanout_batches",
            Json::Number(static_cast<double>(span.fanout_batches)));
    one.Set("fanout_tasks",
            Json::Number(static_cast<double>(span.fanout_tasks)));
    one.Set("shortcut_vertices",
            Json::Number(static_cast<double>(span.shortcut_vertices)));
    Json statements = Json::Array();
    for (const SqlTraceRecord& rec : span.statements) {
      Json stmt = Json::Object();
      stmt.Set("table", Json::Str(rec.table));
      stmt.Set("sql", Json::Str(rec.sql));
      stmt.Set("access_path", Json::Str(rec.access_path));
      stmt.Set("exec_mode", Json::Str(rec.exec_mode));
      stmt.Set("rows_scanned",
               Json::Number(static_cast<double>(rec.rows_scanned)));
      stmt.Set("rows_returned",
               Json::Number(static_cast<double>(rec.rows_returned)));
      stmt.Set("rows_emitted",
               Json::Number(static_cast<double>(rec.rows_emitted)));
      stmt.Set("rows_estimated",
               Json::Number(static_cast<double>(rec.rows_estimated)));
      stmt.Set("micros", Json::Number(static_cast<double>(rec.micros)));
      statements.Append(std::move(stmt));
    }
    one.Set("statements", std::move(statements));
    steps.Append(std::move(one));
  }
  out.Set("steps", std::move(steps));
  return out;
}

Json QueryTrace::ToChromeTrace() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Json events = Json::Array();
  auto complete_event = [](const std::string& name, const std::string& cat,
                           uint64_t ts, uint64_t dur, int tid, Json args) {
    Json e = Json::Object();
    e.Set("name", Json::Str(name));
    e.Set("cat", Json::Str(cat));
    e.Set("ph", Json::Str("X"));
    e.Set("ts", Json::Number(static_cast<double>(ts)));
    e.Set("dur", Json::Number(static_cast<double>(dur)));
    e.Set("pid", Json::Number(1));
    e.Set("tid", Json::Number(tid));
    e.Set("args", std::move(args));
    return e;
  };
  for (const StepTraceSpan& span : spans_) {
    Json args = Json::Object();
    args.Set("detail", Json::Str(span.detail));
    args.Set("in", Json::Number(static_cast<double>(span.in_count)));
    args.Set("out", Json::Number(static_cast<double>(span.out_count)));
    if (span.blocks > 0) {
      args.Set("blocks", Json::Number(static_cast<double>(span.blocks)));
    }
    if (span.fanout_tasks > 0) {
      args.Set("fanout_tasks",
               Json::Number(static_cast<double>(span.fanout_tasks)));
    }
    events.Append(complete_event("step:" + span.step, "step",
                                 span.start_micros, span.micros, span.tid,
                                 std::move(args)));
    for (const SqlTraceRecord& rec : span.statements) {
      Json sql_args = Json::Object();
      sql_args.Set("sql", Json::Str(rec.sql));
      sql_args.Set("access_path", Json::Str(rec.access_path));
      sql_args.Set("rows_scanned",
                   Json::Number(static_cast<double>(rec.rows_scanned)));
      sql_args.Set("rows_returned",
                   Json::Number(static_cast<double>(rec.rows_returned)));
      std::string name =
          rec.table.empty() ? std::string("sql") : "sql:" + rec.table;
      events.Append(complete_event(name, "sql", rec.start_micros, rec.micros,
                                   rec.tid, std::move(sql_args)));
    }
  }
  Json out = Json::Object();
  out.Set("traceEvents", std::move(events));
  out.Set("displayTimeUnit", Json::Str("ms"));
  if (!script_.empty()) {
    Json meta = Json::Object();
    meta.Set("script", Json::Str(script_));
    if (!plan_source_.empty()) meta.Set("plan", Json::Str(plan_source_));
    meta.Set("total_micros",
             Json::Number(static_cast<double>(total_micros_)));
    out.Set("metadata", std::move(meta));
  }
  return out;
}

namespace {
thread_local QueryTrace* g_current_trace = nullptr;
}  // namespace

QueryTrace* CurrentTrace() { return g_current_trace; }

int TraceTid() {
  static std::atomic<int> next_tid{1};
  thread_local int tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

ScopedTrace::ScopedTrace(QueryTrace* trace) : previous_(g_current_trace) {
  g_current_trace = trace;
}

ScopedTrace::~ScopedTrace() { g_current_trace = previous_; }

SlowQueryLog::SlowQueryLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  const char* env = std::getenv("DB2G_SLOW_QUERY_MS");
  if (env != nullptr) {
    threshold_ms_.store(std::atoll(env), std::memory_order_relaxed);
  }
}

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* instance = new SlowQueryLog();
  return *instance;
}

size_t SlowQueryLog::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void SlowQueryLog::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (entries_.size() > capacity_) entries_.pop_front();
}

void SlowQueryLog::Record(Entry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (entries_.size() >= capacity_) entries_.pop_front();
  entries_.push_back(std::move(entry));
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {entries_.begin(), entries_.end()};
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace db2graph
