// Copyright (c) 2026 The db2graph-repro Authors.
//
// Lightweight Status / Result<T> in the style of Arrow/RocksDB: public APIs
// that can fail on user input return these instead of throwing.

#ifndef DB2GRAPH_COMMON_STATUS_H_
#define DB2GRAPH_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace db2graph {

/// Error category for a failed operation.
enum class StatusCode {
  kOk,
  kInvalidArgument,  // malformed SQL / Gremlin / overlay config
  kNotFound,         // missing table, column, property, vertex...
  kAlreadyExists,    // duplicate table, constraint violation on create
  kConstraintViolation,
  kUnsupported,        // outside the implemented subset
  kUnavailable,        // service shutting down / not accepting work
  kInternal,
  kTimeout,            // query deadline expired (workload governor)
  kCancelled,          // cooperative cancellation (KillQuery, shutdown)
  kResourceExhausted,  // memory / result-row budget exceeded
  kOverloaded,         // admission control shed the request; retry later
};

/// Outcome of an operation that produces no value.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status ConstraintViolation(std::string m) {
    return Status(StatusCode::kConstraintViolation, std::move(m));
  }
  static Status Unsupported(std::string m) {
    return Status(StatusCode::kUnsupported, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Timeout(std::string m) {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Overloaded(std::string m) {
    return Status(StatusCode::kOverloaded, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk:
        return "OK";
      case StatusCode::kInvalidArgument:
        return "InvalidArgument";
      case StatusCode::kNotFound:
        return "NotFound";
      case StatusCode::kAlreadyExists:
        return "AlreadyExists";
      case StatusCode::kConstraintViolation:
        return "ConstraintViolation";
      case StatusCode::kUnsupported:
        return "Unsupported";
      case StatusCode::kUnavailable:
        return "Unavailable";
      case StatusCode::kInternal:
        return "Internal";
      case StatusCode::kTimeout:
        return "Timeout";
      case StatusCode::kCancelled:
        return "Cancelled";
      case StatusCode::kResourceExhausted:
        return "ResourceExhausted";
      case StatusCode::kOverloaded:
        return "Overloaded";
    }
    return "?";
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Outcome of an operation that produces a T on success.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value access; asserts ok(). ValueOrDie-style for tests/examples;
  /// production code should check ok() first.
  T& operator*() {
    assert(ok());
    return *value_;
  }
  const T& operator*() const {
    assert(ok());
    return *value_;
  }
  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }

  /// Moves the value out or throws std::runtime_error with the status text.
  T ValueOrThrow() && {
    if (!ok()) throw std::runtime_error(status_.ToString());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status out of the current function.
#define DB2G_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::db2graph::Status _st = (expr);            \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace db2graph

#endif  // DB2GRAPH_COMMON_STATUS_H_
