#include "common/fault_injection.h"

#include <chrono>
#include <thread>
#include <utility>

namespace db2graph::fault {

FailPointConfig ErrorFault(StatusCode code, std::string message) {
  FailPointConfig config;
  config.mode = FailPointConfig::Mode::kError;
  config.code = code;
  config.message = std::move(message);
  return config;
}

FailPointConfig SleepFault(int64_t sleep_ms) {
  FailPointConfig config;
  config.mode = FailPointConfig::Mode::kSleep;
  config.sleep_ms = sleep_ms;
  return config;
}

FailPointConfig AllocFailure(std::string message) {
  return ErrorFault(StatusCode::kResourceExhausted, std::move(message));
}

FailPointRegistry& FailPointRegistry::Global() {
  static FailPointRegistry* instance = new FailPointRegistry();
  return *instance;
}

void FailPointRegistry::Enable(const std::string& name,
                               FailPointConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  Armed armed;
  armed.config = std::move(config);
  armed_[name] = std::move(armed);
}

void FailPointRegistry::Disable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.erase(name);
}

void FailPointRegistry::DisableAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.clear();
}

Status FailPointRegistry::Hit(const std::string& name) {
  int64_t sleep_ms = 0;
  Status injected = Status::OK();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = armed_.find(name);
    if (it == armed_.end()) return Status::OK();
    Armed& armed = it->second;
    ++armed.hits;
    if (armed.config.skip > 0) {
      --armed.config.skip;
      return Status::OK();
    }
    if (armed.config.hits_remaining == 0) return Status::OK();
    if (armed.config.hits_remaining > 0) --armed.config.hits_remaining;
    if (armed.config.mode == FailPointConfig::Mode::kSleep) {
      sleep_ms = armed.config.sleep_ms;
    } else {
      injected = Status(armed.config.code, armed.config.message);
    }
  }
  // Sleep outside the lock so a slow block never serializes other
  // failpoints (or other threads crossing this one).
  if (sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
  }
  return injected;
}

uint64_t FailPointRegistry::HitCount(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = armed_.find(name);
  return it == armed_.end() ? 0 : it->second.hits;
}

}  // namespace db2graph::fault
