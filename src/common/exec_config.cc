// Copyright (c) 2026 The db2graph-repro Authors.

#include "common/exec_config.h"

#include <cstdlib>
#include <mutex>
#include <string>

namespace db2graph {

namespace {

// The process-default layer. Guarded by a mutex rather than atomics: it
// is read once per query (resolution happens at admission, not per
// block), and written only by configuration calls.
std::mutex g_default_mutex;
ExecConfig* g_process_default = nullptr;

ExecConfig SeedFromEnvironment() {
  ExecConfig config;
  if (const char* env = std::getenv("DB2G_PARALLELISM")) {
    config = config.parallelism(std::atoi(env));
  }
  auto env_bool = [](const char* name, bool* out) {
    const char* env = std::getenv(name);
    if (env == nullptr) return false;
    std::string v = env;
    *out = !(v == "0" || v == "false" || v == "off");
    return true;
  };
  bool flag = false;
  if (env_bool("DB2G_VECTORIZED", &flag)) config = config.vectorized(flag);
  if (env_bool("DB2G_STREAMING", &flag)) config = config.streaming(flag);
  return config;
}

ExecConfig& ProcessDefaultLocked() {
  if (g_process_default == nullptr) {
    g_process_default = new ExecConfig(SeedFromEnvironment());
  }
  return *g_process_default;
}

// The thread's installed per-query config; nullptr outside any scope.
thread_local const ExecConfig* tls_current = nullptr;

}  // namespace

ExecConfig ExecConfig::OverlaidBy(const ExecConfig& overrides) const {
  ExecConfig out = *this;
  if (overrides.has_parallelism_) {
    out.parallelism_ = overrides.parallelism_;
    out.has_parallelism_ = true;
  }
  if (overrides.has_vectorized_) {
    out.vectorized_ = overrides.vectorized_;
    out.has_vectorized_ = true;
  }
  if (overrides.has_streaming_) {
    out.streaming_ = overrides.streaming_;
    out.has_streaming_ = true;
  }
  if (overrides.has_profile_) {
    out.profile_ = overrides.profile_;
    out.has_profile_ = true;
  }
  if (overrides.has_block_rows_) {
    out.block_rows_ = overrides.block_rows_;
    out.has_block_rows_ = true;
  }
  if (overrides.has_timeout_ms_) {
    out.timeout_ms_ = overrides.timeout_ms_;
    out.has_timeout_ms_ = true;
  }
  if (overrides.has_max_result_rows_) {
    out.max_result_rows_ = overrides.max_result_rows_;
    out.has_max_result_rows_ = true;
  }
  if (overrides.has_max_memory_bytes_) {
    out.max_memory_bytes_ = overrides.max_memory_bytes_;
    out.has_max_memory_bytes_ = true;
  }
  return out;
}

ExecConfig ExecConfig::ProcessDefault() {
  std::lock_guard<std::mutex> lock(g_default_mutex);
  return ProcessDefaultLocked();
}

void ExecConfig::SetProcessDefault(const ExecConfig& config) {
  std::lock_guard<std::mutex> lock(g_default_mutex);
  ProcessDefaultLocked() = config;
}

ExecConfig ExecConfig::Current() {
  return tls_current != nullptr ? *tls_current : ExecConfig();
}

ScopedExecConfig::ScopedExecConfig(const ExecConfig& config)
    : previous_(tls_current), config_(config) {
  tls_current = &config_;
}

ScopedExecConfig::~ScopedExecConfig() { tls_current = previous_; }

}  // namespace db2graph
