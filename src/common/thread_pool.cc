#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

namespace db2graph {

ThreadPool::ThreadPool(int workers) {
  int n = std::max(1, workers);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = [] {
    int workers = static_cast<int>(std::thread::hardware_concurrency());
    if (const char* env = std::getenv("DB2G_POOL_WORKERS")) {
      workers = std::atoi(env);
    }
    // At least 2 so the fan-out path is exercised (and testable) even on
    // single-core hosts; capped to keep oversubscription bounded.
    workers = std::clamp(workers, 2, 32);
    return new ThreadPool(workers);
  }();
  return *pool;
}

void ThreadPool::DrainBatch(const std::shared_ptr<Batch>& batch) {
  for (;;) {
    size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch->total) return;
    (*batch->fn)(i);
    if (batch->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        batch->total) {
      // Lock pairs with the waiter's predicate check, so the final
      // notification cannot slip between its check and its wait.
      std::lock_guard<std::mutex> lock(batch->mutex);
      batch->cv.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      batch = std::move(queue_.front());
      queue_.pop_front();
    }
    DrainBatch(batch);
  }
}

void ThreadPool::RunBatch(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->total = n;
  // One queue entry per helper we could use; workers that pop an already
  // drained batch return to the queue immediately.
  size_t helpers = std::min(n - 1, workers_.size());
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < helpers; ++i) queue_.push_back(batch);
  }
  if (helpers == 1) {
    cv_.notify_one();
  } else {
    cv_.notify_all();
  }
  DrainBatch(batch);
  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->cv.wait(lock, [&] {
    return batch->done.load(std::memory_order_acquire) == batch->total;
  });
}

}  // namespace db2graph
