// Copyright (c) 2026 The db2graph-repro Authors.
//
// Per-query execution tracing for the Gremlin -> SQL pipeline. A
// QueryTrace is installed for the duration of one traced query (thread-
// locally, via ScopedTrace) and every layer underneath — strategy
// application, the interpreter's step loop, the provider's planner, the
// SQL Dialect — records into it through CurrentTrace().
//
// Zero-cost-when-disabled contract: the untraced hot path performs one
// thread-local pointer read and a null check per potential record site;
// no mutex is touched and nothing allocates. Only when a trace is
// installed do the record methods lock the trace's internal mutex (which
// is required anyway: parallel fan-out workers record into the same
// query's trace concurrently).

#ifndef DB2GRAPH_COMMON_TRACE_H_
#define DB2GRAPH_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace db2graph {

/// Injectable wall-clock source so tests can pin span timings.
class TraceClock {
 public:
  virtual ~TraceClock() = default;
  /// Monotonic microseconds.
  virtual uint64_t NowMicros() const;
  /// The process default (steady_clock-backed) instance.
  static TraceClock* Default();
};

/// One SQL statement executed (or, for EXPLAIN, predicted) on behalf of a
/// traced step.
struct SqlTraceRecord {
  std::string table;
  std::string sql;  // parameters substituted
  /// Wall stamp (trace-clock micros) when the statement started; filled by
  /// RecordSql as now-minus-micros when the recorder left it 0. Feeds the
  /// Chrome-trace exporter's event timeline.
  uint64_t start_micros = 0;
  /// Small per-thread integer identifying the recording thread (fan-out
  /// workers show as separate Chrome-trace rows); 0 = stamped by RecordSql.
  int tid = 0;
  /// Chosen access path: "index", "range", "scan", "mixed", "none" at
  /// runtime; "index probe" / "full scan" / "full scan+filter" predictions
  /// from EXPLAIN.
  std::string access_path;
  /// Execution mode attribution: "vectorized", "scalar", "mixed", or
  /// "none" (ExecInfo::ExecMode). Empty for EXPLAIN predictions.
  std::string exec_mode;
  /// Rows the statement actually pulled from storage (post-short-circuit:
  /// a pushed-down LIMIT stops the scan early and this reflects that).
  uint64_t rows_scanned = 0;
  uint64_t rows_returned = 0;
  /// Rows the statement emitted to its consumer (ExecInfo::rows_emitted).
  uint64_t rows_emitted = 0;
  /// EXPLAIN only: table cardinality bound on the rows the statement may
  /// touch (0 when unknown).
  uint64_t rows_estimated = 0;
  uint64_t micros = 0;
};

/// One compile-time strategy application that changed the plan.
struct StrategyRewrite {
  std::string strategy;
  std::string before;  // Traversal::ToString() prior to the pass
  std::string after;
};

/// One step of the traversal plan as executed, with everything the layers
/// below reported while it was the innermost open step.
struct StepTraceSpan {
  int index = 0;  // creation order within the trace
  int depth = 0;  // nesting depth (repeat bodies, sub-traversals)
  std::string step;    // step kind name
  std::string detail;  // Step::ToString()
  /// Wall stamp (trace-clock micros) of BeginStep — unlike the per-window
  /// start the timing machinery keeps, this never moves on Resume.
  uint64_t start_micros = 0;
  /// TraceTid() of the thread that opened the span.
  int tid = 0;
  uint64_t in_count = 0;
  uint64_t out_count = 0;
  /// Active (non-paused) time only; a streaming step accumulates across
  /// its Resume/Pause windows.
  uint64_t micros = 0;
  /// Blocks this step pulled/processed in streaming execution (0 when the
  /// step ran in one materialized pass).
  uint64_t blocks = 0;
  std::vector<std::string> tables_consulted;
  std::vector<std::string> tables_pruned;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t fanout_batches = 0;
  uint64_t fanout_tasks = 0;
  uint64_t shortcut_vertices = 0;
  std::vector<SqlTraceRecord> statements;
};

/// The trace of one query, from strategy application to result delivery.
/// All mutation methods are internally synchronized.
class QueryTrace {
 public:
  explicit QueryTrace(TraceClock* clock = TraceClock::Default());

  TraceClock* clock() const { return clock_; }

  void SetScript(std::string script);
  const std::string& script() const { return script_; }

  /// Where the executed plan came from: "cached" (plan-cache hit) or
  /// "compiled" (parsed + optimized for this execution). Rendered as the
  /// `plan:` line of RenderText() and the "plan" field of ToJson().
  void SetPlanSource(std::string source);
  std::string plan_source() const;

  /// How the execution ended ("ok", "timeout", "cancelled", ...; see
  /// governor::TerminationReason). Rendered as the `termination:` line of
  /// RenderText() and the "termination" field of ToJson() — a truncated
  /// trace is unambiguous about why it stops where it does.
  void SetTermination(std::string reason);
  std::string termination() const;

  /// Opens a step span (interpreter thread only); returns its id for
  /// EndStep. Spans nest: records arriving from lower layers attach to the
  /// most recently opened, still-open span.
  int BeginStep(std::string step, std::string detail, uint64_t in_count);
  void EndStep(int span_id, uint64_t out_count);

  /// Streaming execution processes a step one block at a time, interleaved
  /// with other steps of the same segment. Pause closes the span's timing
  /// window and pops it from the open stack (so records from other steps
  /// don't attach to it); Resume reopens it and restarts the clock. A
  /// paused span's micros accumulate over its active windows only. EndStep
  /// works on both paused and running spans.
  void PauseStep(int span_id);
  void ResumeStep(int span_id);

  /// Attributes `n` processed blocks to the innermost open span.
  void AddBlocks(uint64_t n);

  /// Adds to a span's input-traverser count. Streaming steps learn their
  /// input size one block at a time, so BeginStep opens them with 0 and
  /// this accumulates per block (materialized steps pass the full count to
  /// BeginStep and never call it).
  void AddStepInput(int span_id, uint64_t n);

  void AddRewrite(std::string strategy, std::string before,
                  std::string after);

  // Record sites for the layers below; each attaches to the innermost
  // open span (or is dropped when no span is open — e.g. SQL issued
  // outside any traversal step).
  void RecordSql(SqlTraceRecord record);
  void AddTableConsulted(std::string table);
  void AddTablePruned(std::string table);
  void AddCacheHit();
  void AddCacheMiss();
  void AddFanout(uint64_t batches, uint64_t tasks);
  void AddShortcutVertices(uint64_t n);

  /// Stamps the total query wall time.
  void Finish(uint64_t total_micros);
  uint64_t total_micros() const;

  // -- inspection ---------------------------------------------------------
  std::vector<StepTraceSpan> Spans() const;
  std::vector<StrategyRewrite> Rewrites() const;

  /// Sums of rows_scanned / rows_emitted over every SQL statement in the
  /// trace (used by the slow-query log's summary fields).
  struct RowTotals {
    uint64_t rows_scanned = 0;
    uint64_t rows_emitted = 0;
  };
  RowTotals SqlRowTotals() const;

  /// Human-readable rendering (indented by span depth).
  std::string RenderText() const;
  /// Machine-readable rendering: {"script", "total_micros", "strategies",
  /// "steps": [...]}.
  Json ToJson() const;
  /// chrome://tracing / Perfetto JSON (Trace Event Format): one complete
  /// ("X") event per step span and per SQL statement, laid out on the
  /// recording thread's row — fan-out workers and barrier drains render as
  /// a flamegraph. A streamed span's dur is its active micros, so paused
  /// windows are collapsed out of the bar. Dump with .Dump(0) and load the
  /// file directly in the tracing UI.
  Json ToChromeTrace() const;

 private:
  StepTraceSpan* InnermostOpenLocked();

  TraceClock* clock_;
  mutable std::mutex mutex_;
  std::string script_;
  std::string plan_source_;
  std::string termination_;
  uint64_t total_micros_ = 0;
  std::vector<StrategyRewrite> rewrites_;
  std::deque<StepTraceSpan> spans_;       // deque: stable element addresses
  std::vector<uint64_t> span_starts_;     // per span, current window start
  std::vector<bool> span_paused_;         // per span, paused right now?
  std::vector<int> open_;                 // stack of open span ids
};

/// The trace installed on this thread; nullptr when the current query is
/// untraced (the common case).
QueryTrace* CurrentTrace();

/// Small, stable integer identifying the calling thread (1, 2, 3, ... in
/// first-use order) — friendlier than std::thread::id for trace output.
int TraceTid();

/// RAII installer; saves and restores the previous thread-local trace, so
/// fan-out workers (and nested graphQuery interpreters) compose.
class ScopedTrace {
 public:
  explicit ScopedTrace(QueryTrace* trace);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  QueryTrace* previous_;
};

/// Ring buffer of queries whose wall time crossed the slow-query
/// threshold, each captured with its full trace. The threshold comes from
/// the DB2G_SLOW_QUERY_MS environment variable (read once at first use;
/// 0 or unset = disabled) and can be overridden programmatically. While
/// the threshold is nonzero, queries run traced so the offender's trace
/// is available when the threshold trips.
class SlowQueryLog {
 public:
  struct Entry {
    std::string script;
    uint64_t elapsed_micros = 0;
    /// Rows the query's SQL statements pulled / emitted (trace totals).
    uint64_t rows_scanned = 0;
    uint64_t rows_emitted = 0;
    std::string trace_json;
    /// Termination reason ("ok", "timeout", ...); a slow query that was
    /// in fact killed by the governor says so right in the log.
    std::string reason = "ok";
  };

  static constexpr size_t kDefaultCapacity = 64;

  explicit SlowQueryLog(size_t capacity = kDefaultCapacity);

  static SlowQueryLog& Global();

  int64_t threshold_ms() const {
    return threshold_ms_.load(std::memory_order_relaxed);
  }
  void SetThresholdMs(int64_t ms) {
    threshold_ms_.store(ms, std::memory_order_relaxed);
  }

  size_t capacity() const;
  /// Resizes the ring (clamped to >= 1); shrinking drops oldest entries.
  void SetCapacity(size_t capacity);

  void Record(Entry entry);
  std::vector<Entry> Entries() const;
  void Clear();

 private:
  std::atomic<int64_t> threshold_ms_{0};
  mutable std::mutex mutex_;
  size_t capacity_;
  std::deque<Entry> entries_;
};

}  // namespace db2graph

#endif  // DB2GRAPH_COMMON_TRACE_H_
