// Copyright (c) 2026 The db2graph-repro Authors.
//
// Process-wide ring of recently executed queries, the backing store of the
// sysmon.query_log virtual table. Every execution that flows through a
// unified entry point — sql::Database::ExecuteStatement reads and
// core::Db2Graph::ExecutePlan — files one Entry here, traced or not, so
// the engine's recent history is queryable with plain SQL (Db2's
// MON_GET_PKG_CACHE_STMT, scaled down). Recording is a mutex-guarded
// deque push; the enabled flag is a relaxed atomic read so switching the
// log off removes it from the hot path entirely.

#ifndef DB2GRAPH_COMMON_QUERY_LOG_H_
#define DB2GRAPH_COMMON_QUERY_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace db2graph {

class QueryLog {
 public:
  struct Entry {
    /// Monotonic sequence number (1, 2, ...) across the process.
    uint64_t id = 0;
    /// Which entry point filed it: "sql" or "gremlin".
    std::string layer;
    std::string script;
    /// "cached" (plan-cache hit) / "compiled"; empty for the SQL layer.
    std::string plan_source;
    /// ExecInfo::ExecMode(): "vectorized", "scalar", "mixed", "none".
    std::string exec_mode;
    /// ExecInfo::AccessPath(): "index", "range", "scan", "mixed", "none".
    std::string access_path;
    uint64_t rows_scanned = 0;
    uint64_t rows_emitted = 0;
    /// Intra-query parallelism: resolved degree of parallelism and number
    /// of morsels dispatched (ExecInfo::dop/morsels; 1/0 = serial).
    uint64_t dop = 1;
    uint64_t morsels = 0;
    /// Hops the multi-hop optimizer collapsed into join steps (gremlin
    /// layer only; 0 = step-at-a-time plan).
    uint64_t collapsed_hops = 0;
    uint64_t micros = 0;
    bool error = false;
    std::string error_message;
    /// How the execution ended: "ok", "error", "timeout", "cancelled",
    /// "overloaded", or "resource_exhausted" (governor terminations get
    /// their own labels so runaway-query kills are distinguishable from
    /// plain failures). See governor::TerminationReason.
    std::string reason = "ok";
    /// EXPLAIN ANALYZE rendering when the statement ran profiled.
    std::string plan;
  };

  static constexpr size_t kDefaultCapacity = 256;

  explicit QueryLog(size_t capacity = kDefaultCapacity);
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// The process-wide instance sysmon.query_log reads.
  static QueryLog& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  size_t capacity() const;
  /// Resizes the ring (clamped to >= 1); shrinking drops oldest entries.
  void SetCapacity(size_t capacity);

  /// Files an entry (assigning entry.id); no-op while disabled.
  void Record(Entry entry);
  /// Oldest-first copy of the ring.
  std::vector<Entry> Entries() const;
  void Clear();

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mutex_;
  size_t capacity_;
  std::deque<Entry> entries_;
};

}  // namespace db2graph

#endif  // DB2GRAPH_COMMON_QUERY_LOG_H_
