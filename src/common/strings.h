// Copyright (c) 2026 The db2graph-repro Authors.
//
// Small string helpers shared across modules, including the '::'-separated
// composite-id convention used by the graph overlay (Section 5).

#ifndef DB2GRAPH_COMMON_STRINGS_H_
#define DB2GRAPH_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace db2graph {

/// ASCII-lowercases a copy of `s`.
std::string ToLower(const std::string& s);

/// ASCII-uppercases a copy of `s`.
std::string ToUpper(const std::string& s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(const std::string& a, const std::string& b);

/// Splits on a multi-character delimiter; "a::b::c" -> {"a","b","c"}.
std::vector<std::string> Split(const std::string& s,
                               const std::string& delim);

/// Joins with a delimiter.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim);

/// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// True if `s` starts with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

/// Separator between components of composite vertex/edge ids, as in the
/// paper's "'patient'::patientID" id definitions.
inline const char kIdSeparator[] = "::";

/// Joins id components: {"patient", "1"} -> "patient::1".
std::string ComposeId(const std::vector<std::string>& parts);

/// Splits "patient::1" -> {"patient", "1"}.
std::vector<std::string> DecomposeId(const std::string& id);

}  // namespace db2graph

#endif  // DB2GRAPH_COMMON_STRINGS_H_
