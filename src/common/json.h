// Copyright (c) 2026 The db2graph-repro Authors.
//
// Minimal JSON document model + parser, sufficient for graph overlay
// configuration files (Section 5 of the paper). Objects preserve insertion
// order so serialized configs stay human-diffable.

#ifndef DB2GRAPH_COMMON_JSON_H_
#define DB2GRAPH_COMMON_JSON_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace db2graph {

/// A JSON value: null, bool, number, string, array, or object.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  static Json Bool(bool b);
  static Json Number(double n);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  int64_t as_int() const { return static_cast<int64_t>(number_); }
  const std::string& as_string() const { return string_; }

  const std::vector<Json>& items() const { return array_; }
  std::vector<Json>& items() { return array_; }
  void Append(Json v) { array_.push_back(std::move(v)); }

  /// Object field access; returns nullptr when absent.
  const Json* Find(const std::string& key) const;
  /// Object field access with defaults for the common config idioms.
  bool GetBool(const std::string& key, bool fallback) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback) const;
  void Set(const std::string& key, Json v);
  const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }

  /// Serializes with 2-space indentation.
  std::string Dump(int indent = 0) const;

  /// Parses a JSON document (single value). Rejects trailing garbage.
  static Result<Json> Parse(const std::string& text);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace db2graph

#endif  // DB2GRAPH_COMMON_JSON_H_
