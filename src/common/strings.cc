#include "common/strings.h"

#include <algorithm>
#include <cctype>

namespace db2graph {

std::string ToLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Split(const std::string& s,
                               const std::string& delim) {
  std::vector<std::string> out;
  if (delim.empty()) {
    out.push_back(s);
    return out;
  }
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + delim.size();
  }
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += delim;
    out += parts[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string ComposeId(const std::vector<std::string>& parts) {
  return Join(parts, kIdSeparator);
}

std::vector<std::string> DecomposeId(const std::string& id) {
  return Split(id, kIdSeparator);
}

}  // namespace db2graph
