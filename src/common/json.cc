#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace db2graph {

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double n) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = n;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

const Json* Json::Find(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

void Json::Set(const std::string& key, Json v) {
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

namespace {

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

void DumpTo(const Json& j, int depth, std::string* out) {
  const std::string pad(static_cast<size_t>(depth) * 2, ' ');
  const std::string pad_in(static_cast<size_t>(depth + 1) * 2, ' ');
  switch (j.type()) {
    case Json::Type::kNull:
      *out += "null";
      return;
    case Json::Type::kBool:
      *out += j.as_bool() ? "true" : "false";
      return;
    case Json::Type::kNumber: {
      double n = j.as_number();
      char buf[32];
      if (n == std::floor(n) && std::abs(n) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(n));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", n);
      }
      *out += buf;
      return;
    }
    case Json::Type::kString:
      EscapeTo(j.as_string(), out);
      return;
    case Json::Type::kArray: {
      if (j.items().empty()) {
        *out += "[]";
        return;
      }
      *out += "[\n";
      for (size_t i = 0; i < j.items().size(); ++i) {
        *out += pad_in;
        DumpTo(j.items()[i], depth + 1, out);
        if (i + 1 < j.items().size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "]";
      return;
    }
    case Json::Type::kObject: {
      if (j.members().empty()) {
        *out += "{}";
        return;
      }
      *out += "{\n";
      for (size_t i = 0; i < j.members().size(); ++i) {
        *out += pad_in;
        EscapeTo(j.members()[i].first, out);
        *out += ": ";
        DumpTo(j.members()[i].second, depth + 1, out);
        if (i + 1 < j.members().size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "}";
      return;
    }
  }
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<Json> ParseDocument() {
    SkipWs();
    Json value;
    Status st = ParseValue(&value);
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      std::string s;
      DB2G_RETURN_NOT_OK(ParseString(&s));
      *out = Json::Str(std::move(s));
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = Json::Bool(true);
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = Json::Bool(false);
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = Json();
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    char* end = nullptr;
    std::string num = text_.substr(start, pos_ - start);
    double d = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number '" + num + "'");
    *out = Json::Number(d);
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          default:
            return Error(std::string("unsupported escape '\\") + e + "'");
        }
      } else {
        out->push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(Json* out) {
    Consume('[');
    *out = Json::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      Json item;
      DB2G_RETURN_NOT_OK(ParseValue(&item));
      out->Append(std::move(item));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Json* out) {
    Consume('{');
    *out = Json::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      DB2G_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':' in object");
      Json value;
      DB2G_RETURN_NOT_OK(ParseValue(&value));
      out->Set(key, std::move(value));
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(*this, indent, &out);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  return JsonParser(text).ParseDocument();
}

}  // namespace db2graph
