#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace db2graph {

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double n) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = n;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

const Json* Json::Find(const std::string& key) const {
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool Json::GetBool(const std::string& key, bool fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

std::string Json::GetString(const std::string& key,
                            const std::string& fallback) const {
  const Json* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

void Json::Set(const std::string& key, Json v) {
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

namespace {

// Length (2..4) of the UTF-8 sequence starting at s[i], or 0 when the
// bytes there are not a well-formed sequence (bad lead byte, truncated,
// or continuation bytes missing).
size_t Utf8SequenceLength(const std::string& s, size_t i) {
  unsigned char c = static_cast<unsigned char>(s[i]);
  size_t len;
  if ((c & 0xE0) == 0xC0) {
    len = 2;
  } else if ((c & 0xF0) == 0xE0) {
    len = 3;
  } else if ((c & 0xF8) == 0xF0) {
    len = 4;
  } else {
    return 0;  // continuation byte or invalid lead (0x80..0xBF, 0xF8..)
  }
  if (i + len > s.size()) return 0;
  for (size_t k = 1; k < len; ++k) {
    if ((static_cast<unsigned char>(s[i + k]) & 0xC0) != 0x80) return 0;
  }
  return len;
}

void EscapeTo(const std::string& s, std::string* out) {
  out->push_back('"');
  for (size_t i = 0; i < s.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    switch (c) {
      case '"':
        *out += "\\\"";
        continue;
      case '\\':
        *out += "\\\\";
        continue;
      case '\n':
        *out += "\\n";
        continue;
      case '\t':
        *out += "\\t";
        continue;
      case '\r':
        *out += "\\r";
        continue;
      case '\b':
        *out += "\\b";
        continue;
      case '\f':
        *out += "\\f";
        continue;
      default:
        break;
    }
    if (c < 0x20) {
      // Remaining control characters have no shorthand escape.
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else if (c < 0x80) {
      out->push_back(static_cast<char>(c));
    } else {
      // Raw query scripts flow verbatim into trace/query-log JSON, so
      // arbitrary bytes reach here: pass well-formed UTF-8 through and
      // replace anything else with U+FFFD to keep the document valid.
      size_t len = Utf8SequenceLength(s, i);
      if (len == 0) {
        *out += "\\ufffd";
      } else {
        out->append(s, i, len);
        i += len - 1;
      }
    }
  }
  out->push_back('"');
}

void DumpTo(const Json& j, int depth, std::string* out) {
  const std::string pad(static_cast<size_t>(depth) * 2, ' ');
  const std::string pad_in(static_cast<size_t>(depth + 1) * 2, ' ');
  switch (j.type()) {
    case Json::Type::kNull:
      *out += "null";
      return;
    case Json::Type::kBool:
      *out += j.as_bool() ? "true" : "false";
      return;
    case Json::Type::kNumber: {
      double n = j.as_number();
      char buf[32];
      if (n == std::floor(n) && std::abs(n) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(n));
      } else {
        std::snprintf(buf, sizeof(buf), "%.17g", n);
      }
      *out += buf;
      return;
    }
    case Json::Type::kString:
      EscapeTo(j.as_string(), out);
      return;
    case Json::Type::kArray: {
      if (j.items().empty()) {
        *out += "[]";
        return;
      }
      *out += "[\n";
      for (size_t i = 0; i < j.items().size(); ++i) {
        *out += pad_in;
        DumpTo(j.items()[i], depth + 1, out);
        if (i + 1 < j.items().size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "]";
      return;
    }
    case Json::Type::kObject: {
      if (j.members().empty()) {
        *out += "{}";
        return;
      }
      *out += "{\n";
      for (size_t i = 0; i < j.members().size(); ++i) {
        *out += pad_in;
        EscapeTo(j.members()[i].first, out);
        *out += ": ";
        DumpTo(j.members()[i].second, depth + 1, out);
        if (i + 1 < j.members().size()) *out += ",";
        *out += "\n";
      }
      *out += pad + "}";
      return;
    }
  }
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<Json> ParseDocument() {
    SkipWs();
    Json value;
    Status st = ParseValue(&value);
    if (!st.ok()) return st;
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      std::string s;
      DB2G_RETURN_NOT_OK(ParseString(&s));
      *out = Json::Str(std::move(s));
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      *out = Json::Bool(true);
      return Status::OK();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      *out = Json::Bool(false);
      return Status::OK();
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      *out = Json();
      return Status::OK();
    }
    return ParseNumber(out);
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    char* end = nullptr;
    std::string num = text_.substr(start, pos_ - start);
    double d = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number '" + num + "'");
    *out = Json::Number(d);
    return Status::OK();
  }

  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t cp = 0;
    for (int k = 0; k < 4; ++k) {
      char h = text_[pos_++];
      cp <<= 4;
      if (h >= '0' && h <= '9') {
        cp |= static_cast<uint32_t>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        cp |= static_cast<uint32_t>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        cp |= static_cast<uint32_t>(h - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    *out = cp;
    return Status::OK();
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'u': {
            uint32_t cp = 0;
            DB2G_RETURN_NOT_OK(ParseHex4(&cp));
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: a low surrogate escape must follow.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Error("unpaired high surrogate in \\u escape");
              }
              pos_ += 2;
              uint32_t low = 0;
              DB2G_RETURN_NOT_OK(ParseHex4(&low));
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("invalid low surrogate in \\u escape");
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              return Error("unpaired low surrogate in \\u escape");
            }
            AppendUtf8(cp, out);
            break;
          }
          default:
            return Error(std::string("unsupported escape '\\") + e + "'");
        }
      } else {
        out->push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(Json* out) {
    Consume('[');
    *out = Json::Array();
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      Json item;
      DB2G_RETURN_NOT_OK(ParseValue(&item));
      out->Append(std::move(item));
      SkipWs();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseObject(Json* out) {
    Consume('{');
    *out = Json::Object();
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      std::string key;
      DB2G_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Error("expected ':' in object");
      Json value;
      DB2G_RETURN_NOT_OK(ParseValue(&value));
      out->Set(key, std::move(value));
      SkipWs();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(*this, indent, &out);
  return out;
}

Result<Json> Json::Parse(const std::string& text) {
  return JsonParser(text).ParseDocument();
}

}  // namespace db2graph
