// Copyright (c) 2026 The db2graph-repro Authors.
//
// Deterministic fault injection for the workload-governor tests: named
// failpoints compiled into the provider, the SQL executor, and the
// Gremlin service when the DB2GRAPH_FAULT_INJECTION CMake option is ON.
// A test enables a failpoint by name with a config (forced error, slow
// block, simulated allocation failure) and the next execution that
// crosses the site observes it — proving the cancellation / unwind paths
// without relying on timing.
//
// In normal builds the DB2G_FAILPOINT* macros expand to nothing, so the
// hot paths carry zero overhead and the registry is never consulted.

#ifndef DB2GRAPH_COMMON_FAULT_INJECTION_H_
#define DB2GRAPH_COMMON_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace db2graph::fault {

struct FailPointConfig {
  enum class Mode {
    kError,  // Hit() returns the configured status
    kSleep,  // Hit() sleeps sleep_ms, then returns OK (a slow block)
  };
  Mode mode = Mode::kError;
  StatusCode code = StatusCode::kInternal;
  std::string message = "injected fault";
  int64_t sleep_ms = 0;
  /// Fire at most this many times, then auto-disarm; -1 = every hit.
  int64_t hits_remaining = -1;
  /// Let the first `skip` crossings pass before firing.
  int64_t skip = 0;
};

/// Convenience constructors for the common shapes.
FailPointConfig ErrorFault(StatusCode code, std::string message);
FailPointConfig SleepFault(int64_t sleep_ms);
FailPointConfig AllocFailure(std::string message);

class FailPointRegistry {
 public:
  static FailPointRegistry& Global();

  void Enable(const std::string& name, FailPointConfig config);
  void Disable(const std::string& name);
  void DisableAll();

  /// Called by the DB2G_FAILPOINT macros at each crossing. Returns OK
  /// when the failpoint is not armed (or is skipping / exhausted).
  Status Hit(const std::string& name);

  /// Crossings of `name` since it was last Enable()d (armed ones only).
  uint64_t HitCount(const std::string& name) const;

 private:
  struct Armed {
    FailPointConfig config;
    uint64_t hits = 0;
  };
  mutable std::mutex mutex_;
  std::map<std::string, Armed> armed_;
};

}  // namespace db2graph::fault

// The site macros. DB2G_FAILPOINT returns a non-OK injected status out of
// the enclosing function; DB2G_FAILPOINT_STATUS assigns it to an lvalue
// for sites that unwind through a status variable instead of returning.
#if defined(DB2GRAPH_FAULT_INJECTION)
#define DB2G_FAILPOINT(name)                                            \
  do {                                                                  \
    ::db2graph::Status _fp_status =                                     \
        ::db2graph::fault::FailPointRegistry::Global().Hit(name);       \
    if (!_fp_status.ok()) return _fp_status;                            \
  } while (0)
#define DB2G_FAILPOINT_STATUS(name, status_lvalue)                      \
  do {                                                                  \
    ::db2graph::Status _fp_status =                                     \
        ::db2graph::fault::FailPointRegistry::Global().Hit(name);       \
    if (!_fp_status.ok()) (status_lvalue) = _fp_status;                 \
  } while (0)
#else
#define DB2G_FAILPOINT(name) \
  do {                       \
  } while (0)
#define DB2G_FAILPOINT_STATUS(name, status_lvalue) \
  do {                                             \
  } while (0)
#endif

#endif  // DB2GRAPH_COMMON_FAULT_INJECTION_H_
