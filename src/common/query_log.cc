#include "common/query_log.h"

namespace db2graph {

QueryLog::QueryLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

QueryLog& QueryLog::Global() {
  static QueryLog* instance = new QueryLog();
  return *instance;
}

size_t QueryLog::capacity() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return capacity_;
}

void QueryLog::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (entries_.size() > capacity_) entries_.pop_front();
}

void QueryLog::Record(Entry entry) {
  if (!enabled()) return;
  entry.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  while (entries_.size() >= capacity_) entries_.pop_front();
  entries_.push_back(std::move(entry));
}

std::vector<QueryLog::Entry> QueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {entries_.begin(), entries_.end()};
}

void QueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace db2graph
