// Copyright (c) 2026 The db2graph-repro Authors.
//
// Dynamically typed scalar value used across the relational engine, the
// graph overlay, and the Gremlin interpreter. Mirrors the SQL type lattice
// of the subset we implement: NULL, BOOLEAN, BIGINT, DOUBLE, VARCHAR.

#ifndef DB2GRAPH_COMMON_VALUE_H_
#define DB2GRAPH_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace db2graph {

/// Scalar type tags for Value.
enum class ValueType {
  kNull,
  kBool,
  kInt,
  kDouble,
  kString,
};

/// Returns the SQL-ish spelling of a type tag ("BIGINT", "VARCHAR", ...).
const char* ValueTypeName(ValueType type);

/// A dynamically typed scalar. Small, copyable, and totally ordered (NULLs
/// sort first; numeric types compare by value across int/double).
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  Value(bool v) : data_(v) {}                      // NOLINT(runtime/explicit)
  Value(int64_t v) : data_(v) {}                   // NOLINT(runtime/explicit)
  Value(int v) : data_(static_cast<int64_t>(v)) {} // NOLINT(runtime/explicit)
  Value(double v) : data_(v) {}                    // NOLINT(runtime/explicit)
  Value(std::string v) : data_(std::move(v)) {}    // NOLINT(runtime/explicit)
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)

  static Value Null() { return Value(); }

  ValueType type() const {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_bool() const { return type() == ValueType::kBool; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  bool as_bool() const { return std::get<bool>(data_); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric view: int promoted to double. Must be numeric.
  double NumericValue() const {
    return is_int() ? static_cast<double>(as_int()) : as_double();
  }

  /// Truthiness used by boolean expression evaluation: NULL and false are
  /// false, non-zero numerics and non-empty everything else are true.
  bool Truthy() const;

  /// Renders the value for display ("NULL", "42", "3.5", "abc").
  std::string ToString() const;

  /// Renders the value as a SQL literal ("NULL", "42", "'ab''c'").
  std::string ToSqlLiteral() const;

  /// Total order over values: NULL < BOOL < numerics < STRING, numerics
  /// compared by value regardless of int/double representation.
  /// Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& o) const { return Compare(o) == 0; }
  bool operator!=(const Value& o) const { return Compare(o) != 0; }
  bool operator<(const Value& o) const { return Compare(o) < 0; }
  bool operator<=(const Value& o) const { return Compare(o) <= 0; }
  bool operator>(const Value& o) const { return Compare(o) > 0; }
  bool operator>=(const Value& o) const { return Compare(o) >= 0; }

  /// Hash consistent with Compare()==0 (int/double with equal value hash
  /// identically).
  size_t Hash() const;

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

/// A row of values; the universal tuple currency of the engine.
using Row = std::vector<Value>;

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

struct RowHash {
  size_t operator()(const Row& row) const {
    size_t h = 1469598103934665603ull;
    for (const Value& v : row) {
      h ^= v.Hash();
      h *= 1099511628211ull;
    }
    return h;
  }
};

}  // namespace db2graph

#endif  // DB2GRAPH_COMMON_VALUE_H_
