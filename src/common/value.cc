#include "common/value.h"

#include <cmath>
#include <cstdio>

namespace db2graph {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return "BOOLEAN";
    case ValueType::kInt:
      return "BIGINT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "VARCHAR";
  }
  return "?";
}

bool Value::Truthy() const {
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kBool:
      return as_bool();
    case ValueType::kInt:
      return as_int() != 0;
    case ValueType::kDouble:
      return as_double() != 0.0;
    case ValueType::kString:
      return !as_string().empty();
  }
  return false;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBool:
      return as_bool() ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(as_int());
    case ValueType::kDouble: {
      double d = as_double();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1f", d);
        return buf;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", d);
      return buf;
    }
    case ValueType::kString:
      return as_string();
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  if (is_string()) {
    std::string out = "'";
    for (char c : as_string()) {
      if (c == '\'') out += '\'';  // double embedded quotes
      out += c;
    }
    out += "'";
    return out;
  }
  return ToString();
}

namespace {

// Rank used to order values of different type families.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;  // numerics compare cross-type by value
    case ValueType::kString:
      return 3;
  }
  return 4;
}

}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type());
  int rb = TypeRank(other.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool: {
      bool a = as_bool();
      bool b = other.as_bool();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kInt:
      if (other.is_int()) {
        int64_t a = as_int();
        int64_t b = other.as_int();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      [[fallthrough]];
    case ValueType::kDouble: {
      double a = NumericValue();
      double b = other.NumericValue();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kString:
      return as_string().compare(other.as_string());
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ull;
    case ValueType::kBool:
      return as_bool() ? 0x1234567 : 0x7654321;
    case ValueType::kInt: {
      // Ints that are exactly representable as doubles must hash like the
      // equal double (Compare treats them as equal).
      int64_t v = as_int();
      double d = static_cast<double>(v);
      if (static_cast<int64_t>(d) == v) return std::hash<double>()(d);
      return std::hash<int64_t>()(v);
    }
    case ValueType::kDouble:
      return std::hash<double>()(as_double());
    case ValueType::kString:
      return std::hash<std::string>()(as_string());
  }
  return 0;
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace db2graph
