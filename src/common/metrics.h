// Copyright (c) 2026 The db2graph-repro Authors.
//
// Process-wide metrics primitives: counters, gauges, and fixed-bucket
// latency histograms with percentile estimation, collected in a registry
// that renders to text and JSON. The Counter type deliberately mirrors the
// std::atomic<uint64_t> surface so the ad-hoc stat structs (sql::ExecStats,
// Db2GraphProvider::Stats) could be retyped without touching their dozens
// of fetch_add()/load() call sites.

#ifndef DB2GRAPH_COMMON_METRICS_H_
#define DB2GRAPH_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"

namespace db2graph::metrics {

/// Monotonically increasing counter with the std::atomic<uint64_t> API
/// subset the codebase uses (load / fetch_add / assignment).
class Counter {
 public:
  Counter() = default;
  explicit Counter(uint64_t v) : value_(v) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  uint64_t load(std::memory_order order = std::memory_order_relaxed) const {
    return value_.load(order);
  }
  uint64_t fetch_add(uint64_t n,
                     std::memory_order order = std::memory_order_relaxed) {
    return value_.fetch_add(n, order);
  }
  /// Assignment resets/seeds the counter (used by the Reset() methods).
  Counter& operator=(uint64_t v) {
    value_.store(v, std::memory_order_relaxed);
    return *this;
  }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (queue depths, cache sizes).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { value_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Latency histogram over fixed exponential buckets (powers of two, in
/// whatever unit the caller observes — the registry labels them micros).
/// Percentiles are estimated from bucket upper bounds, which is exact
/// enough for p50/p95/p99 dashboards and costs one fetch_add per sample.
class Histogram {
 public:
  /// Buckets: [0,1], (1,2], (2,4], ... (2^(kBuckets-2), inf).
  static constexpr int kBuckets = 22;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Upper bound of the bucket holding the q-quantile (q in [0,1]);
  /// 0 when the histogram is empty.
  uint64_t Percentile(double q) const;

  void Reset();

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Named metric registry. GetX() returns a stable pointer, creating the
/// metric on first use; the hot path then touches only that pointer's
/// atomics — the registry mutex is paid once per name.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide instance.
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// One metric per line: "counter <name> <value>", "gauge <name> <value>",
  /// "histogram <name> count=<n> sum=<s> p50=<..> p95=<..> p99=<..>".
  std::string RenderText() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
  Json RenderJson() const;
  /// Prometheus text exposition format (version 0.0.4): counters and
  /// gauges as single samples, histograms as summaries (quantile-labeled
  /// samples plus _count/_sum). Metric names are sanitized to the
  /// Prometheus charset ([a-zA-Z_:][a-zA-Z0-9_:]*) — every other byte
  /// (the registry uses dots, e.g. "plan_cache.hits") becomes '_'.
  std::string RenderPrometheus() const;

  /// Point-in-time copy of one metric, as surfaced by Snapshot() and the
  /// sysmon.metrics virtual table. For histograms `value` is the count.
  struct Sample {
    std::string name;
    std::string kind;  // "counter" | "gauge" | "histogram"
    int64_t value = 0;
    uint64_t sum = 0;  // histograms only
    uint64_t p50 = 0;
    uint64_t p95 = 0;
    uint64_t p99 = 0;
  };
  /// Every registered metric, name-ordered within each kind.
  std::vector<Sample> Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace db2graph::metrics

#endif  // DB2GRAPH_COMMON_METRICS_H_
