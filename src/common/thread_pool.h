// Copyright (c) 2026 The db2graph-repro Authors.
//
// A small fixed-size thread pool for intra-query fan-out. The unit of
// work is a *batch* of independent index-addressed tasks: RunBatch(n, fn)
// runs fn(0..n-1) and returns when all calls finished. The calling thread
// always participates in its own batch, so RunBatch never deadlocks even
// when every pool worker is busy (or when a task itself calls RunBatch):
// a waiting caller is also a worker for its batch.
//
// This is the execution engine behind the Graph Structure module's
// parallel multi-table fan-out (DESIGN.md "Concurrency & caching"): each
// per-table SQL of one graph lookup becomes one task.

#ifndef DB2GRAPH_COMMON_THREAD_POOL_H_
#define DB2GRAPH_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace db2graph {

class ThreadPool {
 public:
  /// Starts `workers` threads (clamped to at least 1).
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool shared by all graph providers. Sized from
  /// std::thread::hardware_concurrency(), overridable with the
  /// DB2G_POOL_WORKERS environment variable (read once).
  static ThreadPool& Shared();

  int worker_count() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(0), ..., fn(n-1), possibly in parallel, and returns when all
  /// calls have completed. The caller participates, so worst case (pool
  /// saturated) this degrades to a serial loop on the calling thread.
  /// `fn` must be safe to invoke concurrently from multiple threads.
  void RunBatch(size_t n, const std::function<void(size_t)>& fn);

 private:
  // One fan-out request. Workers and the submitting caller race to claim
  // task indexes from `next`; the last finisher signals `cv`.
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    size_t total = 0;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
  };

  static void DrainBatch(const std::shared_ptr<Batch>& batch);
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Batch>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace db2graph

#endif  // DB2GRAPH_COMMON_THREAD_POOL_H_
