#include "common/workload_governor.h"

#include <chrono>
#include <cstdlib>

#include "common/metrics.h"

namespace db2graph::governor {

namespace {

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

int64_t EnvInt64(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return 0;
  return std::strtoll(value, nullptr, 10);
}

std::atomic<uint64_t> g_next_query_id{1};

thread_local QueryContext* t_current_context = nullptr;

}  // namespace

// -- CancelToken --------------------------------------------------------

CancelToken CancelToken::Make() {
  CancelToken token;
  token.state_ = std::make_shared<State>();
  return token;
}

void CancelToken::Cancel(std::string reason) {
  if (state_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->reason.empty()) state_->reason = std::move(reason);
  }
  // Release: the reason is written before the flag readers act on.
  state_->cancelled.store(true, std::memory_order_release);
}

bool CancelToken::cancelled() const {
  return state_ != nullptr &&
         state_->cancelled.load(std::memory_order_acquire);
}

std::string CancelToken::reason() const {
  if (state_ == nullptr) return std::string();
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->reason;
}

// -- GovernorDefaults ---------------------------------------------------

GovernorDefaults::GovernorDefaults() {
  timeout_ms_.store(EnvInt64("DB2G_QUERY_TIMEOUT_MS"),
                    std::memory_order_relaxed);
  max_result_rows_.store(EnvInt64("DB2G_MAX_RESULT_ROWS"),
                         std::memory_order_relaxed);
  max_memory_bytes_.store(EnvInt64("DB2G_MAX_MEMORY_BYTES"),
                          std::memory_order_relaxed);
}

GovernorDefaults& GovernorDefaults::Global() {
  static GovernorDefaults* instance = new GovernorDefaults();
  return *instance;
}

GovernorLimits GovernorDefaults::Get() const {
  GovernorLimits limits;
  limits.timeout_ms = timeout_ms_.load(std::memory_order_relaxed);
  limits.max_result_rows = max_result_rows_.load(std::memory_order_relaxed);
  limits.max_memory_bytes =
      max_memory_bytes_.load(std::memory_order_relaxed);
  return limits;
}

void GovernorDefaults::SetTimeoutMs(int64_t ms) {
  timeout_ms_.store(ms, std::memory_order_relaxed);
}
void GovernorDefaults::SetMaxResultRows(int64_t rows) {
  max_result_rows_.store(rows, std::memory_order_relaxed);
}
void GovernorDefaults::SetMaxMemoryBytes(int64_t bytes) {
  max_memory_bytes_.store(bytes, std::memory_order_relaxed);
}

GovernorLimits ResolveLimits(int64_t timeout_ms, int64_t max_result_rows,
                             int64_t max_memory_bytes) {
  GovernorLimits defaults = GovernorDefaults::Global().Get();
  auto resolve = [](int64_t value, int64_t fallback) {
    if (value < 0) return int64_t{0};  // explicitly unlimited
    if (value == 0) return fallback < 0 ? int64_t{0} : fallback;
    return value;
  };
  GovernorLimits limits;
  limits.timeout_ms = resolve(timeout_ms, defaults.timeout_ms);
  limits.max_result_rows =
      resolve(max_result_rows, defaults.max_result_rows);
  limits.max_memory_bytes =
      resolve(max_memory_bytes, defaults.max_memory_bytes);
  return limits;
}

// -- QueryContext -------------------------------------------------------

QueryContext::QueryContext(std::string script, GovernorLimits limits,
                           CancelToken external)
    : id_(g_next_query_id.fetch_add(1, std::memory_order_relaxed)),
      script_(std::move(script)),
      limits_(limits),
      external_(std::move(external)),
      own_(CancelToken::Make()),
      start_micros_(NowMicros()),
      deadline_micros_(limits.timeout_ms > 0
                           ? start_micros_ +
                                 static_cast<uint64_t>(limits.timeout_ms) *
                                     1000
                           : 0) {}

uint64_t QueryContext::elapsed_micros() const {
  return NowMicros() - start_micros_;
}

Status QueryContext::Latch(StatusCode code, std::string message) {
  int expected = static_cast<int>(StatusCode::kOk);
  if (violation_.compare_exchange_strong(expected, static_cast<int>(code),
                                         std::memory_order_acq_rel)) {
    std::lock_guard<std::mutex> lock(mutex_);
    violation_message_ = std::move(message);
    return Status(code, violation_message_);
  }
  // Another thread latched first; report its violation.
  std::lock_guard<std::mutex> lock(mutex_);
  return Status(static_cast<StatusCode>(
                    violation_.load(std::memory_order_acquire)),
                violation_message_);
}

Status QueryContext::Check() {
  int code = violation_.load(std::memory_order_acquire);
  if (code != static_cast<int>(StatusCode::kOk)) {
    std::lock_guard<std::mutex> lock(mutex_);
    return Status(static_cast<StatusCode>(code), violation_message_);
  }
  if (own_.cancelled()) {
    return Latch(StatusCode::kCancelled, own_.reason());
  }
  if (external_.cancelled()) {
    std::string reason = external_.reason();
    return Latch(StatusCode::kCancelled,
                 reason.empty() ? "query cancelled" : std::move(reason));
  }
  if (deadline_micros_ != 0 && NowMicros() >= deadline_micros_) {
    return Latch(StatusCode::kTimeout,
                 "query exceeded deadline of " +
                     std::to_string(limits_.timeout_ms) + " ms");
  }
  return Status::OK();
}

void QueryContext::Cancel(std::string reason) {
  own_.Cancel(reason.empty() ? "query cancelled" : std::move(reason));
}

Status QueryContext::ChargeMemory(uint64_t bytes) {
  uint64_t now =
      memory_used_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  uint64_t peak = memory_peak_.load(std::memory_order_relaxed);
  while (now > peak && !memory_peak_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  if (limits_.max_memory_bytes > 0 &&
      now > static_cast<uint64_t>(limits_.max_memory_bytes)) {
    return Latch(StatusCode::kResourceExhausted,
                 "query exceeded memory budget of " +
                     std::to_string(limits_.max_memory_bytes) + " bytes (" +
                     std::to_string(now) + " charged)");
  }
  return Status::OK();
}

void QueryContext::ReleaseMemory(uint64_t bytes) {
  memory_used_.fetch_sub(bytes, std::memory_order_relaxed);
}

Status QueryContext::CheckResultRows(uint64_t rows) {
  if (limits_.max_result_rows > 0 &&
      rows > static_cast<uint64_t>(limits_.max_result_rows)) {
    return Latch(StatusCode::kResourceExhausted,
                 "query exceeded result-row budget of " +
                     std::to_string(limits_.max_result_rows) + " rows");
  }
  return Status::OK();
}

// -- thread-local installation ------------------------------------------

QueryContext* CurrentQueryContext() { return t_current_context; }

Status CheckCurrent() {
  QueryContext* ctx = t_current_context;
  if (ctx == nullptr) return Status::OK();
  return ctx->Check();
}

ScopedQueryContext::ScopedQueryContext(QueryContext* ctx)
    : previous_(t_current_context) {
  t_current_context = ctx;
}

ScopedQueryContext::~ScopedQueryContext() { t_current_context = previous_; }

// -- ActiveQueryRegistry ------------------------------------------------

ActiveQueryRegistry& ActiveQueryRegistry::Global() {
  static ActiveQueryRegistry* instance = new ActiveQueryRegistry();
  return *instance;
}

void ActiveQueryRegistry::Register(std::shared_ptr<QueryContext> ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  active_[ctx->id()] = std::move(ctx);
}

void ActiveQueryRegistry::Unregister(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  active_.erase(id);
}

bool ActiveQueryRegistry::Kill(uint64_t id, std::string reason) {
  std::shared_ptr<QueryContext> ctx;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = active_.find(id);
    if (it == active_.end()) return false;
    ctx = it->second;
  }
  // Cancel outside the lock: Check() callers latching concurrently take
  // the context mutex, never the registry one.
  ctx->Cancel(std::move(reason));
  return true;
}

std::vector<std::shared_ptr<QueryContext>> ActiveQueryRegistry::Snapshot()
    const {
  std::vector<std::shared_ptr<QueryContext>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  out.reserve(active_.size());
  for (const auto& [id, ctx] : active_) out.push_back(ctx);
  return out;
}

size_t ActiveQueryRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_.size();
}

ScopedActiveQuery::ScopedActiveQuery(std::shared_ptr<QueryContext> ctx)
    : ctx_(std::move(ctx)), scope_(ctx_.get()) {
  if (ctx_ != nullptr) ActiveQueryRegistry::Global().Register(ctx_);
}

ScopedActiveQuery::~ScopedActiveQuery() {
  if (ctx_ != nullptr) ActiveQueryRegistry::Global().Unregister(ctx_->id());
}

// -- termination bookkeeping --------------------------------------------

const char* TerminationReason(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kTimeout:
      return "timeout";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kOverloaded:
      return "overloaded";
    case StatusCode::kResourceExhausted:
      return "resource_exhausted";
    default:
      return "error";
  }
}

void CountTermination(const Status& status) {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  switch (status.code()) {
    case StatusCode::kTimeout:
      registry.GetCounter(kTimeoutsCounter)->fetch_add(1);
      break;
    case StatusCode::kCancelled:
      registry.GetCounter(kCancelsCounter)->fetch_add(1);
      break;
    case StatusCode::kResourceExhausted:
      registry.GetCounter(kResourceExhaustedCounter)->fetch_add(1);
      break;
    default:
      break;
  }
}

}  // namespace db2graph::governor
