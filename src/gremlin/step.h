// Copyright (c) 2026 The db2graph-repro Authors.
//
// Logical traversal plan: the Gremlin compiler (parser.h) produces a
// sequence of Steps, the Traversal Strategy module (core/strategies.h)
// mutates it, and the interpreter executes it against a GraphProvider.
//
// A Step is a tagged struct rather than a class hierarchy because the
// optimized traversal strategies of Section 6.2 are plan *rewrites*
// (folding, removing, and replacing steps); a flat representation keeps
// those rewrites simple and testable.

#ifndef DB2GRAPH_GREMLIN_STEP_H_
#define DB2GRAPH_GREMLIN_STEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "gremlin/graph_api.h"

namespace db2graph::gremlin {

enum class StepKind {
  kGraph,       // g.V(...) / g.E(...); a Graph-Structure-Accessing step
  kVertex,      // out/in/both/outE/inE/bothE; a GSA step
  kEdgeVertex,  // outV/inV/bothV; a GSA step
  kHas,         // has/hasLabel/hasId — pure filter
  kValues,      // values(keys...) — property projection
  kValueMap,    // valueMap(keys...) — rendered property map
  kId,          // id()
  kLabel,       // label()
  kAggregate,   // count/sum/mean/min/max — barrier
  kDedup,       // dedup() — stateful filter (global across loops)
  kLimit,       // limit(n)
  kRange,       // range(lo, hi)
  kOrder,       // order() [desc]
  kRepeat,      // repeat(body).times(n)[.emit()]
  kWhere,       // where(sub) / filter(sub) — keep when sub matches
  kNot,         // not(sub) — keep when sub does not match
  kStore,       // store(key) / aggregate(key) — side effect
  kCap,         // cap(key) — barrier emitting the stored list
  kUnion,       // union(subA, subB, ...) — per-traverser branch merge
  kCoalesce,    // coalesce(subA, subB, ...) — first branch with results
  kIs,          // is(P) — filter a value stream
  kPath,        // path() — emit each traverser's id/value history
  kSimplePath,  // simplePath() — drop traversers that revisit an element
  kTail,        // tail(n) — last n traversers
  kGroupCount,  // groupCount() — barrier: value -> multiplicity
  kMultiHop,    // optimizer-collapsed hop chain (N-way join); a GSA step
};

/// Returns a printable step name.
const char* StepKindName(StepKind kind);

/// An argument that is either a literal or a script-variable reference
/// (e.g. g.V(similar_diseases) in the paper's Section 4 query).
struct GremlinArg {
  Value literal;
  std::string var;  // non-empty = variable reference
  bool is_var() const { return !var.empty(); }
};

/// One step of a traversal plan. Only the fields relevant to `kind` are
/// meaningful; everything else stays default.
struct Step {
  StepKind kind = StepKind::kHas;

  // kGraph ------------------------------------------------------------
  bool graph_emits_edges = false;  // g.E(), or a mutated g.V().outE()
  std::vector<GremlinArg> start_ids;
  /// Pushdown spec (strategies fold labels / predicates / projections /
  /// aggregates / endpoint constraints in here). For kVertex steps the
  /// spec applies to the *emitted* elements.
  LookupSpec spec;
  /// Endpoint constraints produced by the GraphStep::VertexStep mutation
  /// (may hold variable refs, unlike spec.src_ids).
  std::vector<GremlinArg> src_id_args;
  std::vector<GremlinArg> dst_id_args;

  // kVertex / kEdgeVertex ----------------------------------------------
  Direction direction = Direction::kOut;
  bool to_vertex = false;  // out()/in()/both() vs outE()/inE()/bothE()
  std::vector<std::string> edge_labels;

  // kHas ---------------------------------------------------------------
  std::vector<PropPredicate> predicates;
  /// hasId arguments may reference variables.
  std::vector<GremlinArg> id_args;

  // kValues / kValueMap ------------------------------------------------
  std::vector<std::string> keys;

  // kAggregate ----------------------------------------------------------
  AggOp agg = AggOp::kNone;

  // kLimit / kRange -----------------------------------------------------
  int64_t low = 0;
  int64_t high = -1;

  // kOrder ---------------------------------------------------------------
  bool descending = false;

  // kRepeat / kWhere / kNot ----------------------------------------------
  std::vector<Step> body;
  int64_t times = 1;
  bool emit = false;

  // kUnion / kCoalesce ----------------------------------------------------
  std::vector<std::vector<Step>> branches;

  // kStore / kCap ----------------------------------------------------------
  std::string side_effect_key;

  // kMultiHop ---------------------------------------------------------------
  /// The collapsed hop chain. The replaced step-at-a-time steps live in
  /// `body` so the interpreter can fall back when the provider declines.
  std::shared_ptr<const MultiHopSpec> multi_hop;

  /// True for steps that access the graph structure API (the paper's GSA
  /// steps, Section 6.1): these are the steps that turn into SQL.
  bool IsGsa() const {
    return kind == StepKind::kGraph || kind == StepKind::kVertex ||
           kind == StepKind::kEdgeVertex || kind == StepKind::kMultiHop;
  }

  /// Human-readable rendering for plan diagnostics and strategy tests.
  std::string ToString() const;
};

/// A full traversal: g.<steps...>.
struct Traversal {
  std::vector<Step> steps;

  std::string ToString() const;
};

/// One script statement: an optional variable assignment of a traversal's
/// terminal result. `g.V()...` (iterate) or `x = g.V()....next()`.
struct ScriptStatement {
  std::string assign_to;  // empty = no assignment
  Traversal traversal;
  bool terminal_next = false;  // .next() — take the first result
  /// .profile() — execute traced and return the trace as the result (one
  /// traverser holding the JSON rendering).
  bool terminal_profile = false;
};

/// A parsed Gremlin script (';'-separated statements).
struct Script {
  std::vector<ScriptStatement> statements;
};

}  // namespace db2graph::gremlin

#endif  // DB2GRAPH_GREMLIN_STEP_H_
