#include "gremlin/parser.h"

#include <cctype>
#include <cstdlib>

#include "common/metrics.h"
#include "common/strings.h"

namespace db2graph::gremlin {

namespace {

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

enum class TokType { kIdent, kString, kNumber, kPunct, kEnd };

struct Tok {
  TokType type = TokType::kEnd;
  std::string text;
  Value value;
  size_t offset = 0;
};

Result<std::vector<Tok>> Lex(const std::string& text) {
  std::vector<Tok> out;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    Tok tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(text[i])) ||
                       text[i] == '_')) {
        ++i;
      }
      tok.type = TokType::kIdent;
      tok.text = text.substr(start, i - start);
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      size_t start = i;
      if (c == '-') ++i;
      bool is_double = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(text[i])) ||
                       text[i] == '.')) {
        if (text[i] == '.') {
          // Stop at a method-call dot: "1.hasLabel" (ids are ints).
          if (i + 1 < n &&
              !std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
            break;
          }
          is_double = true;
        }
        ++i;
      }
      std::string num = text.substr(start, i - start);
      tok.type = TokType::kNumber;
      tok.text = num;
      tok.value = is_double
                      ? Value(std::strtod(num.c_str(), nullptr))
                      : Value(static_cast<int64_t>(
                            std::strtoll(num.c_str(), nullptr, 10)));
      // Gremlin long suffix: 123L
      if (i < n && (text[i] == 'L' || text[i] == 'l')) ++i;
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'' || c == '"') {
      char quote = c;
      std::string s;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          char e = text[i + 1];
          if (e == quote || e == '\\') {
            s.push_back(e);
            i += 2;
            continue;
          }
          if (e == 'n') {
            s.push_back('\n');
            i += 2;
            continue;
          }
        }
        s.push_back(text[i++]);
      }
      if (i >= n) {
        return Status::InvalidArgument(
            "Gremlin: unterminated string at offset " +
            std::to_string(tok.offset));
      }
      ++i;
      tok.type = TokType::kString;
      tok.text = s;
      tok.value = Value(std::move(s));
      out.push_back(std::move(tok));
      continue;
    }
    static const std::string kPunct = ".(),;=";
    if (kPunct.find(c) != std::string::npos) {
      tok.type = TokType::kPunct;
      tok.text = std::string(1, c);
      ++i;
      out.push_back(std::move(tok));
      continue;
    }
    return Status::InvalidArgument(std::string("Gremlin: unexpected '") + c +
                                   "' at offset " + std::to_string(i));
  }
  Tok end;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

bool IsPredicateName(const std::string& name) {
  static const char* kNames[] = {"eq",  "neq",    "lt",     "lte", "gt",
                                 "gte", "within", "without"};
  for (const char* k : kNames) {
    if (name == k) return true;
  }
  return false;
}

PropPredicate::Op PredicateOp(const std::string& name) {
  if (name == "eq") return PropPredicate::Op::kEq;
  if (name == "neq") return PropPredicate::Op::kNeq;
  if (name == "lt") return PropPredicate::Op::kLt;
  if (name == "lte") return PropPredicate::Op::kLte;
  if (name == "gt") return PropPredicate::Op::kGt;
  if (name == "gte") return PropPredicate::Op::kGte;
  if (name == "within") return PropPredicate::Op::kWithin;
  return PropPredicate::Op::kWithout;
}

// A parsed step argument.
struct Arg {
  enum class Kind { kLiteral, kVar, kPredicate, kTraversal };
  Kind kind = Kind::kLiteral;
  Value literal;
  std::string var;
  PropPredicate::Op pred_op = PropPredicate::Op::kEq;
  std::vector<Value> pred_values;
  std::string pred_var;  // gt(threshold): bind placeholder, no literals
  std::vector<Step> traversal;
};

class GremlinParser {
 public:
  explicit GremlinParser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<Script> ParseScript() {
    Script script;
    while (Peek().type != TokType::kEnd) {
      ScriptStatement stmt;
      DB2G_RETURN_NOT_OK(ParseStatement(&stmt));
      script.statements.push_back(std::move(stmt));
      while (ConsumePunct(";")) {
      }
    }
    if (script.statements.empty()) {
      return Status::InvalidArgument("Gremlin: empty script");
    }
    return script;
  }

 private:
  const Tok& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Tok& Advance() { return toks_[pos_++]; }
  bool IsPunct(const char* p, size_t ahead = 0) const {
    const Tok& t = Peek(ahead);
    return t.type == TokType::kPunct && t.text == p;
  }
  bool ConsumePunct(const char* p) {
    if (IsPunct(p)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectPunct(const char* p) {
    if (!ConsumePunct(p)) {
      return Error(std::string("expected '") + p + "'");
    }
    return Status::OK();
  }
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        "Gremlin parse error near offset " + std::to_string(Peek().offset) +
        " (token '" + Peek().text + "'): " + what);
  }

  Status ParseStatement(ScriptStatement* out) {
    // ident '=' traversal | traversal
    if (Peek().type == TokType::kIdent && Peek().text != "g" &&
        IsPunct("=", 1)) {
      out->assign_to = Advance().text;
      Advance();  // '='
    }
    if (Peek().type != TokType::kIdent || Peek().text != "g") {
      return Error("expected a traversal starting with 'g'");
    }
    Advance();  // g
    return ParseChain(&out->traversal.steps, out);
  }

  // Parses ".step(...).step(...)" until the chain ends. `stmt` is the
  // enclosing statement for terminal flags, nullptr in sub-traversals
  // (where terminals are illegal).
  Status ParseChain(std::vector<Step>* steps, ScriptStatement* stmt) {
    while (ConsumePunct(".")) {
      if (Peek().type != TokType::kIdent) {
        return Error("expected a step name after '.'");
      }
      std::string name = Advance().text;
      std::vector<Arg> args;
      DB2G_RETURN_NOT_OK(ExpectPunct("("));
      if (!IsPunct(")")) {
        while (true) {
          Arg arg;
          DB2G_RETURN_NOT_OK(ParseArg(&arg));
          args.push_back(std::move(arg));
          if (!ConsumePunct(",")) break;
        }
      }
      DB2G_RETURN_NOT_OK(ExpectPunct(")"));
      // Terminals end the chain.
      if (name == "next") {
        if (stmt == nullptr) {
          return Error(".next() not allowed inside a sub-traversal");
        }
        stmt->terminal_next = true;
        break;
      }
      if (name == "profile") {
        if (stmt == nullptr) {
          return Error(".profile() not allowed inside a sub-traversal");
        }
        stmt->terminal_profile = true;
        break;
      }
      if (name == "toList" || name == "iterate") break;
      DB2G_RETURN_NOT_OK(AppendStep(name, std::move(args), steps));
    }
    return Status::OK();
  }

  Status ParseArg(Arg* out) {
    const Tok& t = Peek();
    if (t.type == TokType::kString || t.type == TokType::kNumber) {
      out->kind = Arg::Kind::kLiteral;
      out->literal = Advance().value;
      return Status::OK();
    }
    if (t.type == TokType::kIdent) {
      std::string name = t.text;
      if (name == "__") {
        Advance();
        out->kind = Arg::Kind::kTraversal;
        return ParseChain(&out->traversal, nullptr);
      }
      if (IsPunct("(", 1)) {
        if (IsPredicateName(name)) {
          Advance();
          Advance();  // '('
          out->kind = Arg::Kind::kPredicate;
          out->pred_op = PredicateOp(name);
          while (!IsPunct(")")) {
            const Tok& v = Peek();
            // A single bare identifier makes the whole predicate a bind
            // placeholder, resolved per execution: gt(threshold).
            if (v.type == TokType::kIdent && v.text != "true" &&
                v.text != "false") {
              if (!out->pred_values.empty() || !out->pred_var.empty()) {
                return Error(
                    "a predicate binds either literals or one variable");
              }
              out->pred_var = Advance().text;
              if (ConsumePunct(",")) {
                return Error(
                    "a predicate binds either literals or one variable");
              }
              break;
            }
            if (v.type != TokType::kString && v.type != TokType::kNumber) {
              return Error("predicate arguments must be literals");
            }
            if (!out->pred_var.empty()) {
              return Error(
                  "a predicate binds either literals or one variable");
            }
            out->pred_values.push_back(Advance().value);
            if (!ConsumePunct(",")) break;
          }
          return ExpectPunct(")");
        }
        // Anonymous traversal starting directly with a step name:
        // where(inV().hasId(...)).
        out->kind = Arg::Kind::kTraversal;
        // Re-parse as a chain: synthesize the leading '.' by handling the
        // first call inline.
        Advance();  // step name consumed above copy; re-do properly:
        std::vector<Arg> args;
        DB2G_RETURN_NOT_OK(ExpectPunct("("));
        if (!IsPunct(")")) {
          while (true) {
            Arg arg;
            DB2G_RETURN_NOT_OK(ParseArg(&arg));
            args.push_back(std::move(arg));
            if (!ConsumePunct(",")) break;
          }
        }
        DB2G_RETURN_NOT_OK(ExpectPunct(")"));
        DB2G_RETURN_NOT_OK(AppendStep(name, std::move(args), &out->traversal));
        return ParseChain(&out->traversal, nullptr);
      }
      // Bare identifier: a script variable.
      Advance();
      if (name == "true" || name == "false") {
        out->kind = Arg::Kind::kLiteral;
        out->literal = Value(name == "true");
        return Status::OK();
      }
      out->kind = Arg::Kind::kVar;
      out->var = name;
      return Status::OK();
    }
    return Error("expected a step argument");
  }

  // ---- step construction ---------------------------------------------
  static Status NeedStrings(const std::string& name,
                            const std::vector<Arg>& args,
                            std::vector<std::string>* out) {
    for (const Arg& arg : args) {
      if (arg.kind != Arg::Kind::kLiteral || !arg.literal.is_string()) {
        return Status::InvalidArgument("Gremlin: " + name +
                                       "() expects string arguments");
      }
      out->push_back(arg.literal.as_string());
    }
    return Status::OK();
  }

  static Status ArgsToIds(const std::vector<Arg>& args,
                          std::vector<GremlinArg>* out) {
    for (const Arg& arg : args) {
      GremlinArg id;
      if (arg.kind == Arg::Kind::kLiteral) {
        id.literal = arg.literal;
      } else if (arg.kind == Arg::Kind::kVar) {
        id.var = arg.var;
      } else {
        return Status::InvalidArgument(
            "Gremlin: ids must be literals or variables");
      }
      out->push_back(std::move(id));
    }
    return Status::OK();
  }

  Status AppendStep(const std::string& name, std::vector<Arg> args,
                    std::vector<Step>* steps) {
    Step step;
    if (name == "V" || name == "E") {
      step.kind = StepKind::kGraph;
      step.graph_emits_edges = (name == "E");
      DB2G_RETURN_NOT_OK(ArgsToIds(args, &step.start_ids));
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "out" || name == "in" || name == "both" || name == "outE" ||
        name == "inE" || name == "bothE") {
      step.kind = StepKind::kVertex;
      step.to_vertex = (name == "out" || name == "in" || name == "both");
      step.direction = (name == "out" || name == "outE")
                           ? Direction::kOut
                           : (name == "in" || name == "inE")
                                 ? Direction::kIn
                                 : Direction::kBoth;
      DB2G_RETURN_NOT_OK(NeedStrings(name, args, &step.edge_labels));
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "outV" || name == "inV" || name == "bothV") {
      step.kind = StepKind::kEdgeVertex;
      step.direction = name == "outV"
                           ? Direction::kOut
                           : name == "inV" ? Direction::kIn : Direction::kBoth;
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "hasLabel") {
      step.kind = StepKind::kHas;
      PropPredicate pred;
      pred.key = kLabelKey;
      pred.op = PropPredicate::Op::kWithin;
      for (const Arg& arg : args) {
        if (arg.kind != Arg::Kind::kLiteral) {
          return Status::InvalidArgument("hasLabel() expects literals");
        }
        pred.values.push_back(arg.literal);
      }
      step.predicates.push_back(std::move(pred));
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "hasId") {
      step.kind = StepKind::kHas;
      DB2G_RETURN_NOT_OK(ArgsToIds(args, &step.id_args));
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "has") {
      step.kind = StepKind::kHas;
      PropPredicate pred;
      if (args.empty() || args[0].kind != Arg::Kind::kLiteral ||
          !args[0].literal.is_string()) {
        return Status::InvalidArgument(
            "has() expects a property key as first argument");
      }
      pred.key = args[0].literal.as_string();
      if (args.size() == 1) {
        pred.op = PropPredicate::Op::kExists;
      } else if (args.size() == 2) {
        if (args[1].kind == Arg::Kind::kLiteral) {
          pred.op = PropPredicate::Op::kEq;
          pred.values.push_back(args[1].literal);
        } else if (args[1].kind == Arg::Kind::kVar) {
          // has(key, var): equality against a per-execution binding.
          pred.op = PropPredicate::Op::kEq;
          pred.var = args[1].var;
        } else if (args[1].kind == Arg::Kind::kPredicate) {
          pred.op = args[1].pred_op;
          pred.values = args[1].pred_values;
          pred.var = args[1].pred_var;
        } else {
          return Status::InvalidArgument(
              "has() expects a literal or a P predicate");
        }
      } else {
        return Status::InvalidArgument("has() takes 1 or 2 arguments");
      }
      step.predicates.push_back(std::move(pred));
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "values" || name == "valueMap") {
      step.kind = name == "values" ? StepKind::kValues : StepKind::kValueMap;
      DB2G_RETURN_NOT_OK(NeedStrings(name, args, &step.keys));
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "id" || name == "label") {
      step.kind = name == "id" ? StepKind::kId : StepKind::kLabel;
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "count" || name == "sum" || name == "mean" ||
        name == "min" || name == "max") {
      step.kind = StepKind::kAggregate;
      step.agg = name == "count"
                     ? AggOp::kCount
                     : name == "sum" ? AggOp::kSum
                                     : name == "mean" ? AggOp::kMean
                                                      : name == "min"
                                                            ? AggOp::kMin
                                                            : AggOp::kMax;
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "dedup") {
      step.kind = StepKind::kDedup;
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "limit") {
      step.kind = StepKind::kLimit;
      if (args.size() != 1 || args[0].kind != Arg::Kind::kLiteral ||
          !args[0].literal.is_int()) {
        return Status::InvalidArgument("limit() expects an integer");
      }
      step.high = args[0].literal.as_int();
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "range") {
      step.kind = StepKind::kRange;
      if (args.size() != 2) {
        return Status::InvalidArgument("range() expects (low, high)");
      }
      step.low = args[0].literal.as_int();
      step.high = args[1].literal.as_int();
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "order") {
      step.kind = StepKind::kOrder;
      if (!args.empty() && args[0].kind == Arg::Kind::kLiteral &&
          args[0].literal.is_string()) {
        step.descending = EqualsIgnoreCase(args[0].literal.as_string(),
                                           "desc");
      }
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "by") {
      // Modulator: attaches an ordering key (and optional 'desc') to the
      // preceding order() step.
      if (steps->empty() || steps->back().kind != StepKind::kOrder) {
        return Status::InvalidArgument("by() must follow order()");
      }
      for (const Arg& arg : args) {
        if (arg.kind != Arg::Kind::kLiteral || !arg.literal.is_string()) {
          return Status::InvalidArgument("by() expects string arguments");
        }
        const std::string& text = arg.literal.as_string();
        if (EqualsIgnoreCase(text, "desc")) {
          steps->back().descending = true;
        } else if (EqualsIgnoreCase(text, "asc")) {
          steps->back().descending = false;
        } else {
          steps->back().keys.push_back(text);
        }
      }
      return Status::OK();
    }
    if (name == "repeat") {
      step.kind = StepKind::kRepeat;
      if (args.size() != 1 || args[0].kind != Arg::Kind::kTraversal) {
        return Status::InvalidArgument("repeat() expects a sub-traversal");
      }
      step.body = std::move(args[0].traversal);
      step.times = 1;
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "times") {
      if (steps->empty() || steps->back().kind != StepKind::kRepeat) {
        return Status::InvalidArgument("times() must follow repeat()");
      }
      if (args.size() != 1 || args[0].kind != Arg::Kind::kLiteral ||
          !args[0].literal.is_int()) {
        return Status::InvalidArgument("times() expects an integer");
      }
      steps->back().times = args[0].literal.as_int();
      return Status::OK();
    }
    if (name == "emit") {
      if (steps->empty() || steps->back().kind != StepKind::kRepeat) {
        return Status::InvalidArgument("emit() must follow repeat()");
      }
      steps->back().emit = true;
      return Status::OK();
    }
    if (name == "where" || name == "filter" || name == "not") {
      step.kind = name == "not" ? StepKind::kNot : StepKind::kWhere;
      if (args.size() != 1 || args[0].kind != Arg::Kind::kTraversal) {
        return Status::InvalidArgument(name + "() expects a sub-traversal");
      }
      step.body = std::move(args[0].traversal);
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "union" || name == "coalesce") {
      step.kind = name == "union" ? StepKind::kUnion : StepKind::kCoalesce;
      if (args.empty()) {
        return Status::InvalidArgument(name +
                                       "() expects sub-traversals");
      }
      for (Arg& arg : args) {
        if (arg.kind != Arg::Kind::kTraversal) {
          return Status::InvalidArgument(
              name + "() arguments must be sub-traversals");
        }
        step.branches.push_back(std::move(arg.traversal));
      }
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "is") {
      step.kind = StepKind::kIs;
      PropPredicate pred;
      pred.key = "";  // applies to the traverser's value, not a property
      if (args.size() != 1) {
        return Status::InvalidArgument("is() takes one argument");
      }
      if (args[0].kind == Arg::Kind::kLiteral) {
        pred.op = PropPredicate::Op::kEq;
        pred.values.push_back(args[0].literal);
      } else if (args[0].kind == Arg::Kind::kPredicate) {
        pred.op = args[0].pred_op;
        pred.values = args[0].pred_values;
      } else {
        return Status::InvalidArgument(
            "is() expects a literal or a P predicate");
      }
      step.predicates.push_back(std::move(pred));
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "path") {
      step.kind = StepKind::kPath;
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "simplePath") {
      step.kind = StepKind::kSimplePath;
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "tail") {
      step.kind = StepKind::kTail;
      if (args.size() != 1 || args[0].kind != Arg::Kind::kLiteral ||
          !args[0].literal.is_int()) {
        return Status::InvalidArgument("tail() expects an integer");
      }
      step.high = args[0].literal.as_int();
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "groupCount") {
      step.kind = StepKind::kGroupCount;
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "store" || name == "aggregate") {
      step.kind = StepKind::kStore;
      if (args.size() != 1 || args[0].kind != Arg::Kind::kLiteral ||
          !args[0].literal.is_string()) {
        return Status::InvalidArgument(name + "() expects a string key");
      }
      step.side_effect_key = args[0].literal.as_string();
      steps->push_back(std::move(step));
      return Status::OK();
    }
    if (name == "cap") {
      step.kind = StepKind::kCap;
      if (args.size() != 1 || args[0].kind != Arg::Kind::kLiteral ||
          !args[0].literal.is_string()) {
        return Status::InvalidArgument("cap() expects a string key");
      }
      step.side_effect_key = args[0].literal.as_string();
      steps->push_back(std::move(step));
      return Status::OK();
    }
    return Status::Unsupported("Gremlin: unsupported step '" + name + "'");
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<Script> ParseGremlin(const std::string& text) {
  // Registry counter proving the plan cache's compile-once contract: a
  // cached execution must not move it (tests and the prepared-query bench
  // assert a zero delta).
  static metrics::Counter* parse_calls =
      metrics::MetricsRegistry::Global().GetCounter(kParseCallsCounter);
  parse_calls->fetch_add(1);
  Result<std::vector<Tok>> toks = Lex(text);
  if (!toks.ok()) return toks.status();
  return GremlinParser(std::move(*toks)).ParseScript();
}

Result<Traversal> ParseTraversal(const std::string& text) {
  Result<Script> script = ParseGremlin(text);
  if (!script.ok()) return script.status();
  if (script->statements.size() != 1) {
    return Status::InvalidArgument("expected exactly one traversal");
  }
  return std::move(script->statements[0].traversal);
}

}  // namespace db2graph::gremlin
