// Copyright (c) 2026 The db2graph-repro Authors.
//
// Gremlin script parser. Supports the traversal subset used throughout the
// paper: V/E starts, adjacency steps, has-filters with P predicates,
// values/valueMap projections, aggregates, dedup/limit/range/order,
// repeat().times().emit(), where()/filter()/not() sub-traversals,
// store()/aggregate() + cap() side effects, variable assignment between
// statements, and .next()/.toList()/.iterate() terminals.

#ifndef DB2GRAPH_GREMLIN_PARSER_H_
#define DB2GRAPH_GREMLIN_PARSER_H_

#include <string>

#include "common/status.h"
#include "gremlin/step.h"

namespace db2graph::gremlin {

/// Registry counter name bumped by every ParseGremlin() call. The plan
/// cache's compile-once contract is asserted against it: executing a
/// cached plan performs zero parses.
inline constexpr const char kParseCallsCounter[] = "gremlin.parse_calls";

/// Parses a full script (';'-separated statements).
Result<Script> ParseGremlin(const std::string& text);

/// Parses a single traversal ("g.V()..." without assignment).
Result<Traversal> ParseTraversal(const std::string& text);

}  // namespace db2graph::gremlin

#endif  // DB2GRAPH_GREMLIN_PARSER_H_
