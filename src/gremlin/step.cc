#include "gremlin/step.h"

#include <sstream>

namespace db2graph::gremlin {

const char* StepKindName(StepKind kind) {
  switch (kind) {
    case StepKind::kGraph:
      return "GraphStep";
    case StepKind::kVertex:
      return "VertexStep";
    case StepKind::kEdgeVertex:
      return "EdgeVertexStep";
    case StepKind::kHas:
      return "HasStep";
    case StepKind::kValues:
      return "PropertiesStep";
    case StepKind::kValueMap:
      return "PropertyMapStep";
    case StepKind::kId:
      return "IdStep";
    case StepKind::kLabel:
      return "LabelStep";
    case StepKind::kAggregate:
      return "AggregateStep";
    case StepKind::kDedup:
      return "DedupStep";
    case StepKind::kLimit:
      return "LimitStep";
    case StepKind::kRange:
      return "RangeStep";
    case StepKind::kOrder:
      return "OrderStep";
    case StepKind::kRepeat:
      return "RepeatStep";
    case StepKind::kWhere:
      return "WhereStep";
    case StepKind::kNot:
      return "NotStep";
    case StepKind::kStore:
      return "StoreStep";
    case StepKind::kCap:
      return "CapStep";
    case StepKind::kUnion:
      return "UnionStep";
    case StepKind::kCoalesce:
      return "CoalesceStep";
    case StepKind::kIs:
      return "IsStep";
    case StepKind::kPath:
      return "PathStep";
    case StepKind::kSimplePath:
      return "SimplePathStep";
    case StepKind::kTail:
      return "TailStep";
    case StepKind::kGroupCount:
      return "GroupCountStep";
    case StepKind::kMultiHop:
      return "MultiHopStep";
  }
  return "?";
}

namespace {

const char* AggName(AggOp agg) {
  switch (agg) {
    case AggOp::kNone:
      return "none";
    case AggOp::kCount:
      return "count";
    case AggOp::kSum:
      return "sum";
    case AggOp::kMean:
      return "mean";
    case AggOp::kMin:
      return "min";
    case AggOp::kMax:
      return "max";
  }
  return "?";
}

void AppendValueList(const std::vector<Value>& values, std::ostream& os) {
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) os << ",";
    os << values[i];
  }
}

}  // namespace

std::string Step::ToString() const {
  std::ostringstream os;
  os << StepKindName(kind);
  switch (kind) {
    case StepKind::kGraph: {
      os << "(" << (graph_emits_edges ? "E" : "V");
      if (!start_ids.empty()) {
        os << " ids=[";
        for (size_t i = 0; i < start_ids.size(); ++i) {
          if (i > 0) os << ",";
          os << (start_ids[i].is_var() ? "$" + start_ids[i].var
                                       : start_ids[i].literal.ToString());
        }
        os << "]";
      }
      if (!spec.labels.empty()) {
        os << " labels=[";
        for (size_t i = 0; i < spec.labels.size(); ++i) {
          if (i > 0) os << ",";
          os << spec.labels[i];
        }
        os << "]";
      }
      if (!spec.predicates.empty()) os << " preds=" << spec.predicates.size();
      if (!src_id_args.empty() || !spec.src_ids.empty()) os << " by-src";
      if (!dst_id_args.empty() || !spec.dst_ids.empty()) os << " by-dst";
      if (spec.has_projection) os << " proj=" << spec.projection.size();
      if (spec.agg != AggOp::kNone) os << " agg=" << AggName(spec.agg);
      if (spec.limit >= 0) os << " limit=" << spec.limit;
      os << ")";
      break;
    }
    case StepKind::kVertex: {
      os << "(";
      os << (direction == Direction::kOut
                 ? (to_vertex ? "out" : "outE")
                 : direction == Direction::kIn ? (to_vertex ? "in" : "inE")
                                               : (to_vertex ? "both" : "bothE"));
      for (const std::string& l : edge_labels) os << " " << l;
      if (!spec.predicates.empty()) os << " preds=" << spec.predicates.size();
      if (spec.has_projection) os << " proj=" << spec.projection.size();
      if (spec.agg != AggOp::kNone) os << " agg=" << AggName(spec.agg);
      os << ")";
      break;
    }
    case StepKind::kEdgeVertex:
      os << "("
         << (direction == Direction::kOut
                 ? "outV"
                 : direction == Direction::kIn ? "inV" : "bothV");
      if (!spec.predicates.empty()) os << " preds=" << spec.predicates.size();
      if (spec.has_projection) os << " proj=" << spec.projection.size();
      os << ")";
      break;
    case StepKind::kHas: {
      os << "(";
      for (size_t i = 0; i < predicates.size(); ++i) {
        if (i > 0) os << ",";
        os << predicates[i].key << ":";
        if (!predicates[i].var.empty()) {
          os << "$" << predicates[i].var;
        } else {
          AppendValueList(predicates[i].values, os);
        }
      }
      os << ")";
      break;
    }
    case StepKind::kValues:
    case StepKind::kValueMap: {
      os << "(";
      for (size_t i = 0; i < keys.size(); ++i) {
        if (i > 0) os << ",";
        os << keys[i];
      }
      os << ")";
      break;
    }
    case StepKind::kAggregate:
      os << "(" << AggName(agg) << ")";
      break;
    case StepKind::kLimit:
      os << "(" << high << ")";
      break;
    case StepKind::kRange:
      os << "(" << low << "," << high << ")";
      break;
    case StepKind::kRepeat: {
      os << "(times=" << times << (emit ? " emit" : "") << " body=[";
      for (size_t i = 0; i < body.size(); ++i) {
        if (i > 0) os << ".";
        os << body[i].ToString();
      }
      os << "])";
      break;
    }
    case StepKind::kWhere:
    case StepKind::kNot: {
      os << "([";
      for (size_t i = 0; i < body.size(); ++i) {
        if (i > 0) os << ".";
        os << body[i].ToString();
      }
      os << "])";
      break;
    }
    case StepKind::kStore:
    case StepKind::kCap:
      os << "(" << side_effect_key << ")";
      break;
    case StepKind::kMultiHop: {
      os << "(hops=" << (multi_hop ? multi_hop->hops.size() : 0);
      if (multi_hop && !multi_hop->join_order.empty()) {
        os << " join=" << multi_hop->join_order;
      }
      if (multi_hop) os << " est=" << multi_hop->est_rows;
      os << " body=[";
      for (size_t i = 0; i < body.size(); ++i) {
        if (i > 0) os << ".";
        os << body[i].ToString();
      }
      os << "])";
      break;
    }
    default:
      break;
  }
  return os.str();
}

std::string Traversal::ToString() const {
  std::string out = "g";
  for (const Step& step : steps) {
    out += ".";
    out += step.ToString();
  }
  return out;
}

}  // namespace db2graph::gremlin
