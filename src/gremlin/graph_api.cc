#include "gremlin/graph_api.h"

#include <algorithm>
#include <unordered_set>

namespace db2graph::gremlin {

bool PropPredicate::Matches(const Value& v) const {
  switch (op) {
    case Op::kEq:
      return !values.empty() && v == values[0];
    case Op::kNeq:
      return !values.empty() && v != values[0];
    case Op::kLt:
      return !values.empty() && v < values[0];
    case Op::kLte:
      return !values.empty() && v <= values[0];
    case Op::kGt:
      return !values.empty() && v > values[0];
    case Op::kGte:
      return !values.empty() && v >= values[0];
    case Op::kWithin:
      return std::find(values.begin(), values.end(), v) != values.end();
    case Op::kWithout:
      return std::find(values.begin(), values.end(), v) == values.end();
    case Op::kExists:
      return true;  // presence is checked in the element overload
  }
  return false;
}

bool PropPredicate::Matches(const Element& element) const {
  if (key == kIdKey) return Matches(element.id);
  if (key == kLabelKey) return Matches(Value(element.label));
  const Value* v = element.FindProperty(key);
  if (op == Op::kExists) return v != nullptr;
  return v != nullptr && Matches(*v);
}

bool MatchesSpec(const Element& element, const LookupSpec& spec) {
  if (!spec.ids.empty() &&
      std::find(spec.ids.begin(), spec.ids.end(), element.id) ==
          spec.ids.end()) {
    return false;
  }
  if (!spec.labels.empty() &&
      std::find(spec.labels.begin(), spec.labels.end(), element.label) ==
          spec.labels.end()) {
    return false;
  }
  for (const PropPredicate& pred : spec.predicates) {
    if (!pred.Matches(element)) return false;
  }
  return true;
}

Status GraphProvider::AdjacentEdges(const std::vector<VertexPtr>& from,
                                    Direction dir, const LookupSpec& spec,
                                    std::vector<EdgePtr>* out) {
  LookupSpec edge_spec = spec;
  std::vector<Value> ids;
  ids.reserve(from.size());
  for (const VertexPtr& v : from) ids.push_back(v->id);
  switch (dir) {
    case Direction::kOut:
      edge_spec.src_ids = ids;
      return Edges(edge_spec, out);
    case Direction::kIn:
      edge_spec.dst_ids = ids;
      return Edges(edge_spec, out);
    case Direction::kBoth: {
      edge_spec.src_ids = ids;
      DB2G_RETURN_NOT_OK(Edges(edge_spec, out));
      edge_spec.src_ids.clear();
      edge_spec.dst_ids = ids;
      std::vector<EdgePtr> in_edges;
      DB2G_RETURN_NOT_OK(Edges(edge_spec, &in_edges));
      // Self-loops appear in both lists; keep one copy per endpoint role.
      for (EdgePtr& e : in_edges) {
        if (!(e->src_id == e->dst_id)) out->push_back(std::move(e));
      }
      return Status::OK();
    }
  }
  return Status::Internal("bad direction");
}

Status GraphProvider::EdgeEndpoints(const std::vector<EdgePtr>& edges,
                                    Direction endpoint,
                                    const LookupSpec& spec,
                                    std::vector<VertexPtr>* out) {
  LookupSpec vertex_spec = spec;
  std::unordered_set<Value, ValueHash> unique;
  for (const EdgePtr& e : edges) {
    if (endpoint == Direction::kOut || endpoint == Direction::kBoth) {
      unique.insert(e->src_id);
    }
    if (endpoint == Direction::kIn || endpoint == Direction::kBoth) {
      unique.insert(e->dst_id);
    }
  }
  vertex_spec.ids.assign(unique.begin(), unique.end());
  if (vertex_spec.ids.empty()) return Status::OK();
  return Vertices(vertex_spec, out);
}

namespace {

// Materialize-and-chunk adapter behind the default streaming lookups:
// serves a pre-fetched element vector block by block.
template <typename Ptr, typename Base>
class ChunkedStream : public Base {
 public:
  explicit ChunkedStream(std::vector<Ptr> items) : items_(std::move(items)) {}

  bool Next(std::vector<Ptr>* out, size_t max) override {
    out->clear();
    if (closed_ || pos_ >= items_.size()) return false;
    size_t n = std::min(std::max<size_t>(max, 1), items_.size() - pos_);
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(items_[pos_ + i]));
    }
    pos_ += n;
    return true;
  }

  void Close() override {
    closed_ = true;
    items_.clear();
  }

  const Status& status() const override { return status_; }

 private:
  std::vector<Ptr> items_;
  size_t pos_ = 0;
  bool closed_ = false;
  Status status_ = Status::OK();
};

}  // namespace

Result<std::unique_ptr<VertexStream>> GraphProvider::VerticesStreaming(
    const LookupSpec& spec) {
  std::vector<VertexPtr> all;
  Status s = Vertices(spec, &all);
  if (!s.ok()) return s;
  return std::unique_ptr<VertexStream>(
      new ChunkedStream<VertexPtr, VertexStream>(std::move(all)));
}

Result<std::unique_ptr<EdgeStream>> GraphProvider::EdgesStreaming(
    const LookupSpec& spec) {
  std::vector<EdgePtr> all;
  Status s = Edges(spec, &all);
  if (!s.ok()) return s;
  return std::unique_ptr<EdgeStream>(
      new ChunkedStream<EdgePtr, EdgeStream>(std::move(all)));
}

Result<Value> GraphProvider::AggregateVertices(const LookupSpec&) {
  return Status::Unsupported("no aggregate pushdown");
}

Result<Value> GraphProvider::AggregateEdges(const LookupSpec&) {
  return Status::Unsupported("no aggregate pushdown");
}

Status GraphProvider::MultiHopTraverse(const std::vector<VertexPtr>&,
                                       const MultiHopSpec&, MultiHopBuckets*) {
  return Status::Unsupported("no multi-hop pushdown");
}

}  // namespace db2graph::gremlin
