#include "gremlin/interpreter.h"

#include <algorithm>
#include <map>

#include "common/trace.h"

namespace db2graph::gremlin {

Traverser Traverser::OfVertex(VertexPtr v) {
  Traverser t;
  t.kind = Kind::kVertex;
  t.vertex = std::move(v);
  return t;
}

Traverser Traverser::OfEdge(EdgePtr e) {
  Traverser t;
  t.kind = Kind::kEdge;
  t.edge = std::move(e);
  return t;
}

Traverser Traverser::OfValue(Value v) {
  Traverser t;
  t.kind = Kind::kValue;
  t.value = std::move(v);
  return t;
}

Traverser Traverser::OfList(std::vector<Value> values) {
  Traverser t;
  t.kind = Kind::kList;
  t.list = std::move(values);
  return t;
}

namespace {

// Derived-traverser constructor preserving and extending the path.
Traverser Derive(const Traverser& parent, Traverser child,
                 const Value& step_value) {
  child.path = parent.path;
  child.path.push_back(step_value);
  return child;
}

}  // namespace

const Element* Traverser::element() const {
  if (kind == Kind::kVertex) return vertex.get();
  if (kind == Kind::kEdge) return edge.get();
  return nullptr;
}

Value Traverser::DedupKey() const {
  if (const Element* e = element()) return e->id;
  if (kind == Kind::kList) {
    std::string joined;
    for (const Value& v : list) {
      joined += v.ToString();
      joined += '\x1f';
    }
    return Value(joined);
  }
  return value;
}

std::string Traverser::ToString() const {
  switch (kind) {
    case Kind::kVertex:
      return "v[" + vertex->id.ToString() + "]";
    case Kind::kEdge:
      return "e[" + edge->id.ToString() + "][" + edge->src_id.ToString() +
             "-" + edge->label + "->" + edge->dst_id.ToString() + "]";
    case Kind::kValue:
      return value.ToString();
    case Kind::kList: {
      std::string out = "[";
      for (size_t i = 0; i < list.size(); ++i) {
        if (i > 0) out += ", ";
        out += list[i].ToString();
      }
      return out + "]";
    }
  }
  return "?";
}

// ---------------------------------------------------------------------

Result<std::vector<Value>> Interpreter::ResolveIds(
    const std::vector<GremlinArg>& args, const ExecState& state) const {
  std::vector<Value> out;
  for (const GremlinArg& arg : args) {
    if (!arg.is_var()) {
      out.push_back(arg.literal);
      continue;
    }
    auto it = state.env->find(arg.var);
    if (it == state.env->end()) {
      return Status::NotFound("Gremlin: unbound variable '" + arg.var + "'");
    }
    for (const Value& v : it->second) out.push_back(v);
  }
  return out;
}

Result<std::vector<Traverser>> Interpreter::Run(const Traversal& traversal,
                                                const Environment& env) {
  ExecState state;
  state.env = &env;
  std::vector<Traverser> seed;
  seed.emplace_back();  // a single dummy traverser seeds the GraphStep
  std::vector<Traverser> out;
  Status st = Execute(traversal.steps, std::move(seed), &state, &out);
  if (!st.ok()) return st;
  return out;
}

Result<std::vector<Traverser>> Interpreter::RunScript(const Script& script,
                                                      Environment* env) {
  Environment local;
  Environment* bindings = env != nullptr ? env : &local;
  std::vector<Traverser> last;
  for (const ScriptStatement& stmt : script.statements) {
    Result<std::vector<Traverser>> result = Run(stmt.traversal, *bindings);
    if (!result.ok()) return result.status();
    last = std::move(*result);
    if (stmt.terminal_next && last.size() > 1) {
      last.resize(1);
    }
    if (!stmt.assign_to.empty()) {
      std::vector<Value> values;
      for (const Traverser& t : last) {
        if (const Element* e = t.element()) {
          values.push_back(e->id);
        } else if (t.kind == Traverser::Kind::kList) {
          for (const Value& v : t.list) values.push_back(v);
        } else {
          values.push_back(t.value);
        }
      }
      (*bindings)[stmt.assign_to] = std::move(values);
    }
  }
  return last;
}

Status Interpreter::Execute(const std::vector<Step>& steps,
                            std::vector<Traverser> input, ExecState* state,
                            std::vector<Traverser>* out) {
  std::vector<Traverser> stream = std::move(input);
  QueryTrace* trace = CurrentTrace();
  for (const Step& step : steps) {
    std::vector<Traverser> next;
    if (trace != nullptr) {
      int span = trace->BeginStep(StepKindName(step.kind), step.ToString(),
                                  stream.size());
      Status st = ApplyStep(step, std::move(stream), state, &next);
      trace->EndStep(span, next.size());
      DB2G_RETURN_NOT_OK(st);
    } else {
      DB2G_RETURN_NOT_OK(ApplyStep(step, std::move(stream), state, &next));
    }
    stream = std::move(next);
  }
  *out = std::move(stream);
  return Status::OK();
}

namespace {

// Client-side aggregation over a traverser stream.
Value AggregateStream(const std::vector<Traverser>& stream, AggOp op) {
  if (op == AggOp::kCount) {
    return Value(static_cast<int64_t>(stream.size()));
  }
  int64_t count = 0;
  double sum = 0;
  bool all_int = true;
  int64_t isum = 0;
  Value min_v;
  Value max_v;
  for (const Traverser& t : stream) {
    Value v = t.kind == Traverser::Kind::kValue ? t.value : t.DedupKey();
    if (v.is_null()) continue;
    ++count;
    if (v.is_numeric()) {
      sum += v.NumericValue();
      if (v.is_int()) {
        isum += v.as_int();
      } else {
        all_int = false;
      }
    } else {
      all_int = false;
    }
    if (min_v.is_null() || v < min_v) min_v = v;
    if (max_v.is_null() || v > max_v) max_v = v;
  }
  switch (op) {
    case AggOp::kSum:
      return count == 0 ? Value::Null()
                        : (all_int ? Value(isum) : Value(sum));
    case AggOp::kMean:
      return count == 0 ? Value::Null()
                        : Value(sum / static_cast<double>(count));
    case AggOp::kMin:
      return min_v;
    case AggOp::kMax:
      return max_v;
    default:
      return Value::Null();
  }
}

}  // namespace

Status Interpreter::ApplyGraphStep(const Step& step,
                                   std::vector<Traverser> input,
                                   ExecState* state,
                                   std::vector<Traverser>* out) {
  (void)input;  // GraphStep restarts the stream
  LookupSpec spec = step.spec;
  Result<std::vector<Value>> ids = ResolveIds(step.start_ids, *state);
  if (!ids.ok()) return ids.status();
  for (Value& v : *ids) spec.ids.push_back(std::move(v));
  Result<std::vector<Value>> src_ids = ResolveIds(step.src_id_args, *state);
  if (!src_ids.ok()) return src_ids.status();
  for (Value& v : *src_ids) spec.src_ids.push_back(std::move(v));
  Result<std::vector<Value>> dst_ids = ResolveIds(step.dst_id_args, *state);
  if (!dst_ids.ok()) return dst_ids.status();
  for (Value& v : *dst_ids) spec.dst_ids.push_back(std::move(v));
  // Id lists carry set semantics (Db2 Graph turns them into SQL IN lists;
  // duplicates would otherwise duplicate traversers on other providers).
  auto dedupe = [](std::vector<Value>* values) {
    std::unordered_set<Value, ValueHash> seen;
    std::vector<Value> unique;
    for (Value& v : *values) {
      if (seen.insert(v).second) unique.push_back(std::move(v));
    }
    *values = std::move(unique);
  };
  dedupe(&spec.ids);
  dedupe(&spec.src_ids);
  dedupe(&spec.dst_ids);

  // Aggregate pushdown: ask the provider first; fall back to client-side.
  if (spec.agg != AggOp::kNone) {
    Result<Value> agg = step.graph_emits_edges
                            ? provider_->AggregateEdges(spec)
                            : provider_->AggregateVertices(spec);
    if (agg.ok()) {
      out->push_back(Traverser::OfValue(*agg));
      return Status::OK();
    }
    if (agg.status().code() != StatusCode::kUnsupported) {
      return agg.status();
    }
    spec.agg = AggOp::kNone;  // fetch elements, aggregate below
    std::vector<Traverser> fetched;
    if (step.graph_emits_edges) {
      std::vector<EdgePtr> edges;
      DB2G_RETURN_NOT_OK(provider_->Edges(spec, &edges));
      for (EdgePtr& e : edges) fetched.push_back(Traverser::OfEdge(e));
    } else {
      std::vector<VertexPtr> vertices;
      DB2G_RETURN_NOT_OK(provider_->Vertices(spec, &vertices));
      for (VertexPtr& v : vertices) {
        fetched.push_back(Traverser::OfVertex(v));
      }
    }
    // When the aggregate was folded over values(key), aggregate the
    // property values, not the elements.
    if (!step.spec.agg_key.empty()) {
      std::vector<Traverser> values;
      for (const Traverser& t : fetched) {
        const Element* e = t.element();
        if (e == nullptr) continue;
        if (const Value* v = e->FindProperty(step.spec.agg_key)) {
          values.push_back(Traverser::OfValue(*v));
        }
      }
      fetched = std::move(values);
    }
    out->push_back(Traverser::OfValue(AggregateStream(fetched, step.spec.agg)));
    return Status::OK();
  }

  // A pushdown provider fully applies the spec; otherwise re-filter here
  // (a non-pushdown provider's plan carries no folded predicates, but the
  // recheck keeps correctness independent of provider quality).
  const bool recheck = !provider_->SupportsPushdown();
  if (step.graph_emits_edges) {
    std::vector<EdgePtr> edges;
    DB2G_RETURN_NOT_OK(provider_->Edges(spec, &edges));
    for (EdgePtr& e : edges) {
      if (recheck && !MatchesSpec(*e, spec)) continue;
      Traverser t = Traverser::OfEdge(std::move(e));
      t.path.push_back(t.edge->id);
      out->push_back(std::move(t));
    }
  } else {
    std::vector<VertexPtr> vertices;
    DB2G_RETURN_NOT_OK(provider_->Vertices(spec, &vertices));
    for (VertexPtr& v : vertices) {
      if (recheck && !MatchesSpec(*v, spec)) continue;
      Traverser t = Traverser::OfVertex(std::move(v));
      t.path.push_back(t.vertex->id);
      out->push_back(std::move(t));
    }
  }
  return Status::OK();
}

Status Interpreter::ApplyVertexStep(const Step& step,
                                    std::vector<Traverser> input,
                                    std::vector<Traverser>* out) {
  // Gather the distinct source vertices.
  std::vector<VertexPtr> sources;
  std::unordered_set<Value, ValueHash> seen;
  for (const Traverser& t : input) {
    if (t.kind != Traverser::Kind::kVertex) {
      return Status::InvalidArgument(
          "Gremlin: adjacency step applied to a non-vertex");
    }
    if (seen.insert(t.vertex->id).second) sources.push_back(t.vertex);
  }
  if (sources.empty()) {
    // A folded aggregate still produces its value over the empty stream
    // (count() of nothing is 0).
    if (!step.to_vertex && step.spec.agg != AggOp::kNone) {
      out->push_back(Traverser::OfValue(AggregateStream({}, step.spec.agg)));
    }
    return Status::OK();
  }

  // Fetch incident edges (labels + any pushed-down *edge* predicates).
  LookupSpec edge_spec;
  edge_spec.labels = step.edge_labels;
  if (!step.to_vertex) {
    edge_spec.predicates = step.spec.predicates;
    edge_spec.projection = step.spec.projection;
    edge_spec.has_projection = step.spec.has_projection;
    edge_spec.agg = step.spec.agg;
    edge_spec.agg_key = step.spec.agg_key;
  }

  // Aggregate pushdown for the common v.outE(lbl).count() shape, only
  // correct when each traverser is a distinct vertex (the barrier sums
  // over all input anyway).
  if (!step.to_vertex && edge_spec.agg == AggOp::kCount &&
      sources.size() == input.size()) {
    LookupSpec spec = edge_spec;
    std::vector<Value> ids;
    for (const VertexPtr& v : sources) ids.push_back(v->id);
    if (step.direction == Direction::kOut) {
      spec.src_ids = ids;
    } else if (step.direction == Direction::kIn) {
      spec.dst_ids = ids;
    }
    if (step.direction != Direction::kBoth) {
      Result<Value> agg = provider_->AggregateEdges(spec);
      if (agg.ok()) {
        out->push_back(Traverser::OfValue(*agg));
        return Status::OK();
      }
    }
  }
  edge_spec.agg = AggOp::kNone;

  std::vector<EdgePtr> edges;
  DB2G_RETURN_NOT_OK(provider_->AdjacentEdges(sources, step.direction,
                                              edge_spec, &edges));
  // Group edges by the endpoint on the source side. Shared EdgePtrs go
  // straight into the buckets, so emission below needs no second
  // lookup-by-id map.
  const bool recheck = !provider_->SupportsPushdown();
  std::unordered_map<Value, std::vector<EdgePtr>, ValueHash> by_source;
  for (const EdgePtr& e : edges) {
    if (recheck && !MatchesSpec(*e, edge_spec)) continue;
    if (step.direction == Direction::kOut) {
      by_source[e->src_id].push_back(e);
    } else if (step.direction == Direction::kIn) {
      by_source[e->dst_id].push_back(e);
    } else {
      by_source[e->src_id].push_back(e);
      if (!(e->dst_id == e->src_id)) by_source[e->dst_id].push_back(e);
    }
  }

  if (!step.to_vertex) {
    // outE/inE/bothE: emit the edges per traverser.
    std::vector<Traverser> emitted;
    for (const Traverser& t : input) {
      auto it = by_source.find(t.vertex->id);
      if (it == by_source.end()) continue;
      for (const EdgePtr& e : it->second) {
        emitted.push_back(Derive(t, Traverser::OfEdge(e), e->id));
      }
    }
    // An aggregate folded into this step that was not pushed down to the
    // provider (unsupported, kBoth, duplicate anchors) collapses here.
    if (step.spec.agg != AggOp::kNone) {
      std::vector<Traverser> basis;
      if (!step.spec.agg_key.empty()) {
        for (const Traverser& t : emitted) {
          if (const Value* v = t.edge->FindProperty(step.spec.agg_key)) {
            basis.push_back(Traverser::OfValue(*v));
          }
        }
      } else {
        basis = std::move(emitted);
      }
      out->push_back(Traverser::OfValue(AggregateStream(basis, step.spec.agg)));
      return Status::OK();
    }
    for (Traverser& t : emitted) out->push_back(std::move(t));
    return Status::OK();
  }

  // out/in/both: resolve the far endpoint vertices, with the step's vertex
  // pushdown spec applied.
  LookupSpec vertex_spec = step.spec;
  std::vector<EdgePtr> edge_vec(edges.begin(), edges.end());
  Direction endpoint = step.direction == Direction::kOut
                           ? Direction::kIn
                           : step.direction == Direction::kIn
                                 ? Direction::kOut
                                 : Direction::kBoth;
  std::vector<VertexPtr> endpoints;
  DB2G_RETURN_NOT_OK(provider_->EdgeEndpoints(edge_vec, endpoint, vertex_spec,
                                              &endpoints));
  std::unordered_map<Value, VertexPtr, ValueHash> vertex_by_id;
  for (const VertexPtr& v : endpoints) vertex_by_id[v->id] = v;

  for (const Traverser& t : input) {
    auto it = by_source.find(t.vertex->id);
    if (it == by_source.end()) continue;
    for (const EdgePtr& e : it->second) {
      // The far endpoint relative to this traverser's vertex.
      const Value& far = step.direction == Direction::kOut
                             ? e->dst_id
                             : step.direction == Direction::kIn
                                   ? e->src_id
                                   : (e->src_id == t.vertex->id ? e->dst_id
                                                                : e->src_id);
      auto vit = vertex_by_id.find(far);
      if (vit == vertex_by_id.end()) continue;  // filtered or dangling
      if (recheck && !MatchesSpec(*vit->second, vertex_spec)) continue;
      out->push_back(Derive(t, Traverser::OfVertex(vit->second), far));
    }
  }
  return Status::OK();
}

Status Interpreter::ApplyEdgeVertexStep(const Step& step,
                                        std::vector<Traverser> input,
                                        std::vector<Traverser>* out) {
  std::vector<EdgePtr> edges;
  for (const Traverser& t : input) {
    if (t.kind != Traverser::Kind::kEdge) {
      return Status::InvalidArgument(
          "Gremlin: outV/inV applied to a non-edge");
    }
    edges.push_back(t.edge);
  }
  if (edges.empty()) return Status::OK();
  std::vector<VertexPtr> vertices;
  DB2G_RETURN_NOT_OK(
      provider_->EdgeEndpoints(edges, step.direction, step.spec, &vertices));
  std::unordered_map<Value, VertexPtr, ValueHash> by_id;
  for (const VertexPtr& v : vertices) by_id[v->id] = v;
  for (const Traverser& t : input) {
    auto emit = [&](const Value& id) {
      auto it = by_id.find(id);
      if (it == by_id.end()) return;
      if (!provider_->SupportsPushdown() &&
          !MatchesSpec(*it->second, step.spec)) {
        return;
      }
      out->push_back(Derive(t, Traverser::OfVertex(it->second), id));
    };
    if (step.direction == Direction::kOut ||
        step.direction == Direction::kBoth) {
      emit(t.edge->src_id);
    }
    if (step.direction == Direction::kIn ||
        step.direction == Direction::kBoth) {
      emit(t.edge->dst_id);
    }
  }
  return Status::OK();
}

Status Interpreter::ApplyStep(const Step& step, std::vector<Traverser> input,
                              ExecState* state,
                              std::vector<Traverser>* out) {
  switch (step.kind) {
    case StepKind::kGraph:
      return ApplyGraphStep(step, std::move(input), state, out);
    case StepKind::kVertex:
      return ApplyVertexStep(step, std::move(input), out);
    case StepKind::kEdgeVertex:
      return ApplyEdgeVertexStep(step, std::move(input), out);

    case StepKind::kHas: {
      std::vector<Value> ids;
      if (!step.id_args.empty()) {
        Result<std::vector<Value>> resolved = ResolveIds(step.id_args, *state);
        if (!resolved.ok()) return resolved.status();
        ids = std::move(*resolved);
      }
      // Resolve bind-placeholder predicates (has(key, gt(var))) from the
      // environment; scalar comparisons need exactly one bound value.
      std::vector<PropPredicate> resolved_preds;
      const std::vector<PropPredicate>* preds = &step.predicates;
      bool any_var = false;
      for (const PropPredicate& pred : step.predicates) {
        any_var |= !pred.var.empty();
      }
      if (any_var) {
        resolved_preds = step.predicates;
        for (PropPredicate& pred : resolved_preds) {
          if (pred.var.empty()) continue;
          auto it = state->env->find(pred.var);
          if (it == state->env->end()) {
            return Status::NotFound("Gremlin: unbound variable '" + pred.var +
                                    "'");
          }
          bool scalar = pred.op != PropPredicate::Op::kWithin &&
                        pred.op != PropPredicate::Op::kWithout;
          if (scalar && it->second.size() != 1) {
            return Status::InvalidArgument(
                "Gremlin: bind variable '" + pred.var + "' supplies " +
                std::to_string(it->second.size()) +
                " values; a scalar comparison needs exactly one");
          }
          pred.values = it->second;
        }
        preds = &resolved_preds;
      }
      for (Traverser& t : input) {
        const Element* e = t.element();
        if (e == nullptr) continue;  // has() on values drops nothing? drop:
        bool keep = true;
        if (!ids.empty() &&
            std::find(ids.begin(), ids.end(), e->id) == ids.end()) {
          keep = false;
        }
        for (const PropPredicate& pred : *preds) {
          if (!pred.Matches(*e)) {
            keep = false;
            break;
          }
        }
        if (keep) out->push_back(std::move(t));
      }
      return Status::OK();
    }

    case StepKind::kValues: {
      for (const Traverser& t : input) {
        const Element* e = t.element();
        if (e == nullptr) continue;
        if (step.keys.empty()) {
          for (const auto& [k, v] : e->properties) {
            (void)k;
            out->push_back(Derive(t, Traverser::OfValue(v), v));
          }
        } else {
          for (const std::string& key : step.keys) {
            if (const Value* v = e->FindProperty(key)) {
              out->push_back(Derive(t, Traverser::OfValue(*v), *v));
            }
          }
        }
      }
      return Status::OK();
    }

    case StepKind::kValueMap: {
      for (const Traverser& t : input) {
        const Element* e = t.element();
        if (e == nullptr) continue;
        std::string repr = "{";
        bool first = true;
        for (const auto& [k, v] : e->properties) {
          if (!step.keys.empty() &&
              std::find(step.keys.begin(), step.keys.end(), k) ==
                  step.keys.end()) {
            continue;
          }
          if (!first) repr += ", ";
          first = false;
          repr += k + ": " + v.ToString();
        }
        repr += "}";
        out->push_back(Traverser::OfValue(Value(std::move(repr))));
      }
      return Status::OK();
    }

    case StepKind::kId: {
      for (const Traverser& t : input) {
        if (const Element* e = t.element()) {
          out->push_back(Derive(t, Traverser::OfValue(e->id), e->id));
        }
      }
      return Status::OK();
    }

    case StepKind::kLabel: {
      for (const Traverser& t : input) {
        if (const Element* e = t.element()) {
          out->push_back(
              Derive(t, Traverser::OfValue(Value(e->label)), Value(e->label)));
        }
      }
      return Status::OK();
    }

    case StepKind::kAggregate:
      out->push_back(Traverser::OfValue(AggregateStream(input, step.agg)));
      return Status::OK();

    case StepKind::kDedup: {
      auto& seen = state->dedup_seen[&step];
      for (Traverser& t : input) {
        if (seen.insert(t.DedupKey()).second) {
          out->push_back(std::move(t));
        }
      }
      return Status::OK();
    }

    case StepKind::kLimit: {
      for (Traverser& t : input) {
        if (static_cast<int64_t>(out->size()) >= step.high) break;
        out->push_back(std::move(t));
      }
      return Status::OK();
    }

    case StepKind::kRange: {
      for (int64_t i = step.low;
           i < static_cast<int64_t>(input.size()) && i < step.high; ++i) {
        out->push_back(std::move(input[i]));
      }
      return Status::OK();
    }

    case StepKind::kOrder: {
      auto sort_key = [&](const Traverser& t) -> Value {
        if (!step.keys.empty()) {
          if (const Element* e = t.element()) {
            for (const std::string& key : step.keys) {
              if (const Value* v = e->FindProperty(key)) return *v;
            }
            return Value::Null();  // missing property sorts first
          }
        }
        return t.DedupKey();
      };
      std::stable_sort(input.begin(), input.end(),
                       [&](const Traverser& a, const Traverser& b) {
                         int c = sort_key(a).Compare(sort_key(b));
                         return step.descending ? c > 0 : c < 0;
                       });
      *out = std::move(input);
      return Status::OK();
    }

    case StepKind::kRepeat: {
      std::vector<Traverser> stream = std::move(input);
      for (int64_t i = 0; i < step.times; ++i) {
        std::vector<Traverser> next;
        DB2G_RETURN_NOT_OK(Execute(step.body, std::move(stream), state,
                                   &next));
        stream = std::move(next);
        if (step.emit) {
          for (const Traverser& t : stream) out->push_back(t);
        }
      }
      if (!step.emit) *out = std::move(stream);
      return Status::OK();
    }

    case StepKind::kWhere:
    case StepKind::kNot: {
      for (Traverser& t : input) {
        std::vector<Traverser> sub_out;
        std::vector<Traverser> seed;
        seed.push_back(t);
        DB2G_RETURN_NOT_OK(Execute(step.body, std::move(seed), state,
                                   &sub_out));
        bool matched = !sub_out.empty();
        // A sub-traversal ending in an aggregate always yields one value;
        // treat count()==0 as no match.
        if (matched && sub_out.size() == 1 &&
            sub_out[0].kind == Traverser::Kind::kValue &&
            sub_out[0].value.is_int() && !step.body.empty() &&
            step.body.back().kind == StepKind::kAggregate) {
          matched = sub_out[0].value.as_int() != 0;
        }
        if (matched == (step.kind == StepKind::kWhere)) {
          out->push_back(std::move(t));
        }
      }
      return Status::OK();
    }

    case StepKind::kStore: {
      auto& store = state->stores[step.side_effect_key];
      for (Traverser& t : input) {
        if (const Element* e = t.element()) {
          store.push_back(e->id);
        } else if (t.kind == Traverser::Kind::kList) {
          for (const Value& v : t.list) store.push_back(v);
        } else {
          store.push_back(t.value);
        }
        out->push_back(std::move(t));
      }
      return Status::OK();
    }

    case StepKind::kCap: {
      auto it = state->stores.find(step.side_effect_key);
      std::vector<Value> values =
          it != state->stores.end() ? it->second : std::vector<Value>{};
      out->push_back(Traverser::OfList(std::move(values)));
      return Status::OK();
    }

    case StepKind::kUnion: {
      for (Traverser& t : input) {
        for (const auto& branch : step.branches) {
          std::vector<Traverser> branch_out;
          std::vector<Traverser> seed;
          seed.push_back(t);
          DB2G_RETURN_NOT_OK(Execute(branch, std::move(seed), state,
                                     &branch_out));
          for (Traverser& r : branch_out) out->push_back(std::move(r));
        }
      }
      return Status::OK();
    }

    case StepKind::kCoalesce: {
      for (Traverser& t : input) {
        for (const auto& branch : step.branches) {
          std::vector<Traverser> branch_out;
          std::vector<Traverser> seed;
          seed.push_back(t);
          DB2G_RETURN_NOT_OK(Execute(branch, std::move(seed), state,
                                     &branch_out));
          if (!branch_out.empty()) {
            for (Traverser& r : branch_out) out->push_back(std::move(r));
            break;
          }
        }
      }
      return Status::OK();
    }

    case StepKind::kIs: {
      for (Traverser& t : input) {
        if (t.kind != Traverser::Kind::kValue) continue;
        bool keep = true;
        for (const PropPredicate& pred : step.predicates) {
          if (!pred.Matches(t.value)) {
            keep = false;
            break;
          }
        }
        if (keep) out->push_back(std::move(t));
      }
      return Status::OK();
    }

    case StepKind::kPath: {
      for (Traverser& t : input) {
        Traverser p = Traverser::OfList(t.path);
        p.path = t.path;
        out->push_back(std::move(p));
      }
      return Status::OK();
    }

    case StepKind::kSimplePath: {
      for (Traverser& t : input) {
        std::unordered_set<Value, ValueHash> seen;
        bool simple = true;
        for (const Value& v : t.path) {
          if (!seen.insert(v).second) {
            simple = false;
            break;
          }
        }
        if (simple) out->push_back(std::move(t));
      }
      return Status::OK();
    }

    case StepKind::kTail: {
      int64_t n = step.high;
      size_t start = input.size() > static_cast<size_t>(n)
                         ? input.size() - static_cast<size_t>(n)
                         : 0;
      for (size_t i = start; i < input.size(); ++i) {
        out->push_back(std::move(input[i]));
      }
      return Status::OK();
    }

    case StepKind::kGroupCount: {
      // Barrier: multiplicity per value/element id, emitted as one list of
      // alternating [key, count, key, count, ...] sorted by key.
      std::map<Value, int64_t> counts;
      for (const Traverser& t : input) {
        ++counts[t.DedupKey()];
      }
      std::vector<Value> flattened;
      flattened.reserve(counts.size() * 2);
      for (const auto& [key, count] : counts) {
        flattened.push_back(key);
        flattened.push_back(Value(count));
      }
      out->push_back(Traverser::OfList(std::move(flattened)));
      return Status::OK();
    }
  }
  return Status::Internal("unknown step kind");
}

Result<std::vector<Row>> TraversersToRows(const std::vector<Traverser>& ts,
                                          size_t arity) {
  std::vector<Value> flat;
  for (const Traverser& t : ts) {
    if (const Element* e = t.element()) {
      flat.push_back(e->id);
    } else if (t.kind == Traverser::Kind::kList) {
      for (const Value& v : t.list) flat.push_back(v);
    } else {
      flat.push_back(t.value);
    }
  }
  if (arity == 0) {
    return Status::InvalidArgument("row arity must be positive");
  }
  if (flat.size() % arity != 0) {
    return Status::InvalidArgument(
        "graph query produced " + std::to_string(flat.size()) +
        " values, not a multiple of the declared column count " +
        std::to_string(arity));
  }
  std::vector<Row> rows;
  rows.reserve(flat.size() / arity);
  for (size_t i = 0; i < flat.size(); i += arity) {
    Row row(flat.begin() + i, flat.begin() + i + arity);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace db2graph::gremlin
