#include "gremlin/interpreter.h"

#include <algorithm>
#include <map>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "common/workload_governor.h"

namespace db2graph::gremlin {

namespace {

// Tracks the workload-governor memory charge for one traverser stream:
// Update() re-charges to the stream's current size (and enforces the
// result-row budget), the destructor releases whatever is still charged.
// A no-op when the execution is ungoverned.
class StreamMemoryCharge {
 public:
  StreamMemoryCharge() : qc_(governor::CurrentQueryContext()) {}
  ~StreamMemoryCharge() {
    if (qc_ != nullptr && charged_ > 0) qc_->ReleaseMemory(charged_);
  }
  StreamMemoryCharge(const StreamMemoryCharge&) = delete;
  StreamMemoryCharge& operator=(const StreamMemoryCharge&) = delete;

  Status Update(size_t traversers) {
    if (qc_ == nullptr) return Status::OK();
    DB2G_RETURN_NOT_OK(qc_->CheckResultRows(traversers));
    uint64_t bytes = traversers * governor::kApproxTraverserBytes;
    if (bytes > charged_) {
      Status st = qc_->ChargeMemory(bytes - charged_);
      charged_ = bytes;
      return st;
    }
    qc_->ReleaseMemory(charged_ - bytes);
    charged_ = bytes;
    return Status::OK();
  }

 private:
  governor::QueryContext* qc_;
  uint64_t charged_ = 0;
};

}  // namespace

Traverser Traverser::OfVertex(VertexPtr v) {
  Traverser t;
  t.kind = Kind::kVertex;
  t.vertex = std::move(v);
  return t;
}

Traverser Traverser::OfEdge(EdgePtr e) {
  Traverser t;
  t.kind = Kind::kEdge;
  t.edge = std::move(e);
  return t;
}

Traverser Traverser::OfValue(Value v) {
  Traverser t;
  t.kind = Kind::kValue;
  t.value = std::move(v);
  return t;
}

Traverser Traverser::OfList(std::vector<Value> values) {
  Traverser t;
  t.kind = Kind::kList;
  t.list = std::move(values);
  return t;
}

namespace {

// Derived-traverser constructor preserving and extending the path.
Traverser Derive(const Traverser& parent, Traverser child,
                 const Value& step_value) {
  child.path = parent.path;
  child.path.push_back(step_value);
  return child;
}

// True for steps a streaming segment can apply one block at a time with
// results identical to a materialized pass: per-traverser transforms and
// filters, plus the cumulative-counter steps (limit/range, handled inline
// by the segment runner) and the steps whose cross-block state already
// lives in ExecState (dedup's seen-set, store's side-effect list).
bool IsStreamableStep(const Step& step) {
  switch (step.kind) {
    case StepKind::kVertex:
      // Adjacency with a folded aggregate collapses the whole stream to
      // one value — a barrier. both()/bothE() is also a barrier: the
      // provider reports an edge once per endpoint present in the *call's*
      // source set, so splitting the sources across blocks would change
      // the multiplicity an all-sources call produces. out()/in() key
      // each edge by the queried endpoint alone and stream safely.
      return step.spec.agg == AggOp::kNone &&
             step.direction != Direction::kBoth;
    case StepKind::kMultiHop:
      // Same shape as streamable kVertex: per-block distinct sources, one
      // provider call, per-traverser emission (the collapsed hops never
      // carry an aggregate or a kBoth direction — the optimizer bails).
      return true;
    case StepKind::kEdgeVertex:
    case StepKind::kHas:
    case StepKind::kValues:
    case StepKind::kValueMap:
    case StepKind::kId:
    case StepKind::kLabel:
    case StepKind::kIs:
    case StepKind::kWhere:
    case StepKind::kNot:
    case StepKind::kDedup:
    case StepKind::kLimit:
    case StepKind::kRange:
    case StepKind::kStore:
    case StepKind::kPath:
    case StepKind::kSimplePath:
    case StepKind::kUnion:
    case StepKind::kCoalesce:
      return true;
    default:
      // kGraph restarts the stream (it is a segment *source*, never a
      // chain member); kOrder, kTail, kGroupCount, kCap, kRepeat and
      // kAggregate are barriers that need the whole input at once.
      return false;
  }
}

// True when the step (or a sub-traversal inside it) mutates state that
// outlives this pass over the stream: store() appends to a side-effect
// list and dedup() keeps its seen-set across repeat() iterations. A
// saturated limit may only cancel the upstream pull when no such step
// sits between the source and the limit — otherwise traversers that were
// never pulled would silently vanish from those side effects, diverging
// from materialized execution.
bool HasCrossPassEffects(const Step& step) {
  if (step.kind == StepKind::kStore || step.kind == StepKind::kDedup) {
    return true;
  }
  for (const Step& s : step.body) {
    if (HasCrossPassEffects(s)) return true;
  }
  for (const auto& branch : step.branches) {
    for (const Step& s : branch) {
      if (HasCrossPassEffects(s)) return true;
    }
  }
  return false;
}

// Pull source feeding a streaming segment one traverser block at a time.
class TraverserBlockSource {
 public:
  virtual ~TraverserBlockSource() = default;
  /// Fills `out` (cleared first) with up to `max` traversers. Returns
  /// false when exhausted or failed (see status()); true with an empty
  /// block means "pulled a block, nothing survived the recheck — keep
  /// pulling".
  virtual bool Next(std::vector<Traverser>* out, size_t max) = 0;
  /// Stops the source early; cancels provider work not yet started.
  virtual void Close() {}
  virtual Status status() const { return Status::OK(); }
};

// Chunks an already-materialized traverser stream (the carried output of
// the previous segment or barrier step).
class VectorBlockSource : public TraverserBlockSource {
 public:
  explicit VectorBlockSource(std::vector<Traverser> input)
      : input_(std::move(input)) {}

  bool Next(std::vector<Traverser>* out, size_t max) override {
    out->clear();
    if (pos_ >= input_.size()) return false;
    size_t n = std::min(max, input_.size() - pos_);
    out->reserve(n);
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(input_[pos_ + i]));
    }
    pos_ += n;
    return true;
  }

 private:
  std::vector<Traverser> input_;
  size_t pos_ = 0;
};

// Adapts a provider VertexStream: applies the non-pushdown recheck and
// seeds each traverser's path with the element id — the block-at-a-time
// equivalent of ApplyGraphStep's emission loop.
class VertexStreamSource : public TraverserBlockSource {
 public:
  VertexStreamSource(std::unique_ptr<VertexStream> stream, LookupSpec spec,
                     bool recheck)
      : stream_(std::move(stream)),
        spec_(std::move(spec)),
        recheck_(recheck) {}

  bool Next(std::vector<Traverser>* out, size_t max) override {
    out->clear();
    if (!stream_->Next(&buffer_, max)) return false;
    for (VertexPtr& v : buffer_) {
      if (recheck_ && !MatchesSpec(*v, spec_)) continue;
      Traverser t = Traverser::OfVertex(std::move(v));
      t.path.push_back(t.vertex->id);
      out->push_back(std::move(t));
    }
    return true;
  }
  void Close() override { stream_->Close(); }
  Status status() const override { return stream_->status(); }

 private:
  std::unique_ptr<VertexStream> stream_;
  LookupSpec spec_;
  bool recheck_;
  std::vector<VertexPtr> buffer_;
};

// Same for edges (g.E() and the strategy-mutated g.V(ids).outE() shape).
class EdgeStreamSource : public TraverserBlockSource {
 public:
  EdgeStreamSource(std::unique_ptr<EdgeStream> stream, LookupSpec spec,
                   bool recheck)
      : stream_(std::move(stream)),
        spec_(std::move(spec)),
        recheck_(recheck) {}

  bool Next(std::vector<Traverser>* out, size_t max) override {
    out->clear();
    if (!stream_->Next(&buffer_, max)) return false;
    for (EdgePtr& e : buffer_) {
      if (recheck_ && !MatchesSpec(*e, spec_)) continue;
      Traverser t = Traverser::OfEdge(std::move(e));
      t.path.push_back(t.edge->id);
      out->push_back(std::move(t));
    }
    return true;
  }
  void Close() override { stream_->Close(); }
  Status status() const override { return stream_->status(); }

 private:
  std::unique_ptr<EdgeStream> stream_;
  LookupSpec spec_;
  bool recheck_;
  std::vector<EdgePtr> buffer_;
};

}  // namespace

const Element* Traverser::element() const {
  if (kind == Kind::kVertex) return vertex.get();
  if (kind == Kind::kEdge) return edge.get();
  return nullptr;
}

Value Traverser::DedupKey() const {
  if (const Element* e = element()) return e->id;
  if (kind == Kind::kList) {
    std::string joined;
    for (const Value& v : list) {
      joined += v.ToString();
      joined += '\x1f';
    }
    return Value(joined);
  }
  return value;
}

std::string Traverser::ToString() const {
  switch (kind) {
    case Kind::kVertex:
      return "v[" + vertex->id.ToString() + "]";
    case Kind::kEdge:
      return "e[" + edge->id.ToString() + "][" + edge->src_id.ToString() +
             "-" + edge->label + "->" + edge->dst_id.ToString() + "]";
    case Kind::kValue:
      return value.ToString();
    case Kind::kList: {
      std::string out = "[";
      for (size_t i = 0; i < list.size(); ++i) {
        if (i > 0) out += ", ";
        out += list[i].ToString();
      }
      return out + "]";
    }
  }
  return "?";
}

// ---------------------------------------------------------------------

Result<std::vector<Value>> Interpreter::ResolveIds(
    const std::vector<GremlinArg>& args, const ExecState& state) const {
  std::vector<Value> out;
  for (const GremlinArg& arg : args) {
    if (!arg.is_var()) {
      out.push_back(arg.literal);
      continue;
    }
    auto it = state.env->find(arg.var);
    if (it == state.env->end()) {
      return Status::NotFound("Gremlin: unbound variable '" + arg.var + "'");
    }
    for (const Value& v : it->second) out.push_back(v);
  }
  return out;
}

Result<std::vector<Traverser>> Interpreter::Run(const Traversal& traversal,
                                                const Environment& env) {
  ExecState state;
  state.env = &env;
  std::vector<Traverser> seed;
  seed.emplace_back();  // a single dummy traverser seeds the GraphStep
  std::vector<Traverser> out;
  Status st = Execute(traversal.steps, std::move(seed), &state, &out);
  if (!st.ok()) return st;
  return out;
}

Result<std::vector<Traverser>> Interpreter::RunScript(const Script& script,
                                                      Environment* env) {
  Environment local;
  Environment* bindings = env != nullptr ? env : &local;
  std::vector<Traverser> last;
  for (const ScriptStatement& stmt : script.statements) {
    Result<std::vector<Traverser>> result = Run(stmt.traversal, *bindings);
    if (!result.ok()) return result.status();
    last = std::move(*result);
    if (stmt.terminal_next && last.size() > 1) {
      last.resize(1);
    }
    if (!stmt.assign_to.empty()) {
      std::vector<Value> values;
      for (const Traverser& t : last) {
        if (const Element* e = t.element()) {
          values.push_back(e->id);
        } else if (t.kind == Traverser::Kind::kList) {
          for (const Value& v : t.list) values.push_back(v);
        } else {
          values.push_back(t.value);
        }
      }
      (*bindings)[stmt.assign_to] = std::move(values);
    }
  }
  return last;
}

Status Interpreter::Execute(const std::vector<Step>& steps,
                            std::vector<Traverser> input, ExecState* state,
                            std::vector<Traverser>* out) {
  if (!options_.streaming) {
    return ExecuteMaterialized(steps, std::move(input), state, out);
  }
  // Carve the plan into maximal streaming segments: a GraphStep (no folded
  // aggregate) opens a provider element stream; any run of streamable
  // steps pulls from it — or from the previous barrier's materialized
  // output — one block at a time. Barrier steps run as a materialized
  // pass in between.
  QueryTrace* trace = CurrentTrace();
  StreamMemoryCharge charge;
  std::vector<Traverser> stream = std::move(input);
  size_t pos = 0;
  while (pos < steps.size()) {
    const Step& step = steps[pos];
    const bool graph_source =
        step.kind == StepKind::kGraph && step.spec.agg == AggOp::kNone;
    if (graph_source || IsStreamableStep(step)) {
      size_t end = graph_source ? pos + 1 : pos;
      while (end < steps.size() && IsStreamableStep(steps[end])) ++end;
      std::vector<Traverser> next;
      DB2G_RETURN_NOT_OK(RunSegment(steps, pos, end, graph_source,
                                    std::move(stream), state, &next));
      stream = std::move(next);
      DB2G_RETURN_NOT_OK(charge.Update(stream.size()));
      pos = end;
      continue;
    }
    // Barrier (or aggregate GraphStep): one materialized pass. The
    // governor check runs before the drain so a query already past its
    // deadline never starts one.
    DB2G_RETURN_NOT_OK(governor::CheckCurrent());
    std::vector<Traverser> next;
    if (trace != nullptr) {
      int span = trace->BeginStep(StepKindName(step.kind), step.ToString(),
                                  stream.size());
      Status st = ApplyStep(step, std::move(stream), state, &next);
      trace->EndStep(span, next.size());
      DB2G_RETURN_NOT_OK(st);
    } else {
      DB2G_RETURN_NOT_OK(ApplyStep(step, std::move(stream), state, &next));
    }
    stream = std::move(next);
    DB2G_RETURN_NOT_OK(charge.Update(stream.size()));
    ++pos;
  }
  *out = std::move(stream);
  return Status::OK();
}

Status Interpreter::ExecuteMaterialized(const std::vector<Step>& steps,
                                        std::vector<Traverser> input,
                                        ExecState* state,
                                        std::vector<Traverser>* out) {
  std::vector<Traverser> stream = std::move(input);
  QueryTrace* trace = CurrentTrace();
  StreamMemoryCharge charge;
  for (const Step& step : steps) {
    // Cooperative boundary between materialized steps: a deadline or
    // cancellation observed here stops the plan before the next pass.
    DB2G_RETURN_NOT_OK(governor::CheckCurrent());
    std::vector<Traverser> next;
    if (trace != nullptr) {
      int span = trace->BeginStep(StepKindName(step.kind), step.ToString(),
                                  stream.size());
      Status st = ApplyStep(step, std::move(stream), state, &next);
      trace->EndStep(span, next.size());
      DB2G_RETURN_NOT_OK(st);
    } else {
      DB2G_RETURN_NOT_OK(ApplyStep(step, std::move(stream), state, &next));
    }
    stream = std::move(next);
    DB2G_RETURN_NOT_OK(charge.Update(stream.size()));
  }
  *out = std::move(stream);
  return Status::OK();
}

Status Interpreter::RunSegment(const std::vector<Step>& steps, size_t begin,
                               size_t end, bool graph_source,
                               std::vector<Traverser> carried,
                               ExecState* state,
                               std::vector<Traverser>* out) {
  QueryTrace* trace = CurrentTrace();
  const size_t chain_begin = graph_source ? begin + 1 : begin;

  // Open the source: a provider element stream for a GraphStep, the
  // carried stream chunked into blocks otherwise. The GraphStep gets a
  // trace span like any other step; it stays open across the provider
  // call so table-consulted/pruned records attach to it, then pauses
  // between blocks.
  std::unique_ptr<TraverserBlockSource> source;
  int source_span = -1;
  if (graph_source) {
    const Step& g = steps[begin];
    if (trace != nullptr) {
      source_span = trace->BeginStep(StepKindName(g.kind), g.ToString(),
                                     carried.size());
    }
    Result<LookupSpec> spec = BuildGraphSpec(g, *state);
    Status open_status = spec.ok() ? Status::OK() : spec.status();
    if (open_status.ok()) {
      const bool recheck = !provider_->SupportsPushdown();
      if (g.graph_emits_edges) {
        Result<std::unique_ptr<EdgeStream>> stream =
            provider_->EdgesStreaming(*spec);
        if (stream.ok()) {
          source = std::make_unique<EdgeStreamSource>(
              std::move(*stream), std::move(*spec), recheck);
        } else {
          open_status = stream.status();
        }
      } else {
        Result<std::unique_ptr<VertexStream>> stream =
            provider_->VerticesStreaming(*spec);
        if (stream.ok()) {
          source = std::make_unique<VertexStreamSource>(
              std::move(*stream), std::move(*spec), recheck);
        } else {
          open_status = stream.status();
        }
      }
    }
    if (!open_status.ok()) {
      if (trace != nullptr) trace->EndStep(source_span, 0);
      return open_status;
    }
    if (trace != nullptr) trace->PauseStep(source_span);
  } else {
    source = std::make_unique<VectorBlockSource>(std::move(carried));
  }

  // Per-chain-step runtime state. Spans open up front (in step order, so
  // the trace reads like the plan) and start paused; each step's clock
  // only runs while one of its blocks is being processed.
  struct ChainStep {
    const Step* step = nullptr;
    int span = -1;
    int64_t seen = 0;     // traversers that reached this step
    int64_t emitted = 0;  // traversers it let through
    bool may_cancel_pull = false;
  };
  std::vector<ChainStep> chain;
  chain.reserve(end - chain_begin);
  bool clean_upstream = true;
  for (size_t j = chain_begin; j < end; ++j) {
    ChainStep cs;
    cs.step = &steps[j];
    if (trace != nullptr) {
      cs.span = trace->BeginStep(StepKindName(cs.step->kind),
                                 cs.step->ToString(), 0);
      trace->PauseStep(cs.span);
    }
    if (cs.step->kind == StepKind::kLimit ||
        cs.step->kind == StepKind::kRange) {
      cs.may_cancel_pull = clean_upstream;
    }
    if (HasCrossPassEffects(*cs.step)) clean_upstream = false;
    chain.push_back(cs);
  }

  // A saturated limit()/range() stops the pull — the whole point of the
  // streaming pipeline — unless a store()/dedup() upstream still needs to
  // observe the rest of the stream.
  auto saturated = [&chain]() {
    for (const ChainStep& cs : chain) {
      if (!cs.may_cancel_pull) continue;
      if (cs.step->kind == StepKind::kLimit && cs.emitted >= cs.step->high) {
        return true;
      }
      if (cs.step->kind == StepKind::kRange && cs.seen >= cs.step->high) {
        return true;
      }
    }
    return false;
  };

  uint64_t source_rows = 0;
  Status status;
  std::vector<Traverser> block;
  // The segment's pull cursor is the interpreter's block boundary: one
  // governor check per block keeps a governed full scan interruptible
  // within a block's worth of work. `out` accumulation is charged against
  // the memory budget here (and released on exit — the caller re-charges
  // for whatever stream it keeps) so a no-barrier full drain cannot grow
  // past the budget unnoticed.
  governor::QueryContext* governor_ctx = governor::CurrentQueryContext();
  uint64_t governor_charged = 0;
  while (!saturated()) {
    if (governor_ctx != nullptr) {
      Status gst = governor_ctx->Check();
      if (!gst.ok()) {
        status = std::move(gst);
        break;
      }
    }
    // Ask the source for no more than the leading limit/range still
    // accepts: with the usual strategy-rewritten shape (filters folded
    // into the GraphStep spec, limit directly after it) the final pull
    // fetches exactly the rows the query needs. A filter in between
    // decouples input from output counts, so the hint stops there —
    // under-pulling would stay correct but cost extra round trips.
    size_t pull = options_.block_size > 0 ? options_.block_size : size_t{1};
    for (const ChainStep& cs : chain) {
      if (cs.step->kind == StepKind::kLimit) {
        int64_t left = std::max<int64_t>(cs.step->high - cs.emitted, 0);
        pull = std::min(pull, static_cast<size_t>(left));
      } else if (cs.step->kind == StepKind::kRange) {
        int64_t left = std::max<int64_t>(cs.step->high - cs.seen, 0);
        pull = std::min(pull, static_cast<size_t>(left));
      } else {
        break;
      }
    }
    if (pull == 0) pull = 1;  // unreachable once saturated() gates the loop

    if (trace != nullptr && source_span >= 0) trace->ResumeStep(source_span);
    bool got = source->Next(&block, pull);
    if (trace != nullptr && source_span >= 0) {
      if (got) trace->AddBlocks(1);
      trace->PauseStep(source_span);
    }
    if (!got) {
      status = source->status();
      break;
    }
    source_rows += block.size();

    for (ChainStep& cs : chain) {
      if (block.empty()) break;  // nothing survived; pull the next block
      cs.seen += static_cast<int64_t>(block.size());
      if (trace != nullptr && cs.span >= 0) {
        trace->ResumeStep(cs.span);
        trace->AddStepInput(cs.span, block.size());
        trace->AddBlocks(1);
      }
      std::vector<Traverser> next;
      Status st;
      if (cs.step->kind == StepKind::kLimit) {
        // Cumulative across blocks — ApplyStep's per-call counter would
        // restart at every block.
        int64_t left = std::max<int64_t>(cs.step->high - cs.emitted, 0);
        size_t take = std::min(static_cast<size_t>(left), block.size());
        next.reserve(take);
        for (size_t i = 0; i < take; ++i) {
          next.push_back(std::move(block[i]));
        }
      } else if (cs.step->kind == StepKind::kRange) {
        // Each traverser's position in the whole stream, not the block.
        int64_t first = cs.seen - static_cast<int64_t>(block.size());
        for (size_t i = 0; i < block.size(); ++i) {
          int64_t idx = first + static_cast<int64_t>(i);
          if (idx >= cs.step->low && idx < cs.step->high) {
            next.push_back(std::move(block[i]));
          }
        }
      } else {
        st = ApplyStep(*cs.step, std::move(block), state, &next);
      }
      cs.emitted += static_cast<int64_t>(next.size());
      if (trace != nullptr && cs.span >= 0) trace->PauseStep(cs.span);
      if (!st.ok()) {
        status = st;
        break;
      }
      block = std::move(next);
    }
    if (!status.ok()) break;
    if (governor_ctx != nullptr && !block.empty()) {
      governor_ctx->AddRowsProduced(block.size());
      Status gst = governor_ctx->CheckResultRows(out->size() + block.size());
      if (gst.ok()) {
        uint64_t bytes = block.size() * governor::kApproxTraverserBytes;
        governor_charged += bytes;
        gst = governor_ctx->ChargeMemory(bytes);
      }
      if (!gst.ok()) {
        status = std::move(gst);
        break;
      }
    }
    for (Traverser& t : block) out->push_back(std::move(t));
  }
  if (governor_ctx != nullptr && governor_charged > 0) {
    governor_ctx->ReleaseMemory(governor_charged);
  }

  // Close before the spans end so early-termination cancellation is
  // attributed to the segment. Idempotent when the source ran dry.
  source->Close();
  if (trace != nullptr) {
    if (source_span >= 0) trace->EndStep(source_span, source_rows);
    for (const ChainStep& cs : chain) {
      if (cs.span >= 0) {
        trace->EndStep(cs.span, static_cast<uint64_t>(cs.emitted));
      }
    }
  }
  return status;
}

namespace {

// Client-side aggregation over a traverser stream.
Value AggregateStream(const std::vector<Traverser>& stream, AggOp op) {
  if (op == AggOp::kCount) {
    return Value(static_cast<int64_t>(stream.size()));
  }
  int64_t count = 0;
  double sum = 0;
  bool all_int = true;
  int64_t isum = 0;
  Value min_v;
  Value max_v;
  for (const Traverser& t : stream) {
    Value v = t.kind == Traverser::Kind::kValue ? t.value : t.DedupKey();
    if (v.is_null()) continue;
    ++count;
    if (v.is_numeric()) {
      sum += v.NumericValue();
      if (v.is_int()) {
        isum += v.as_int();
      } else {
        all_int = false;
      }
    } else {
      all_int = false;
    }
    if (min_v.is_null() || v < min_v) min_v = v;
    if (max_v.is_null() || v > max_v) max_v = v;
  }
  switch (op) {
    case AggOp::kSum:
      return count == 0 ? Value::Null()
                        : (all_int ? Value(isum) : Value(sum));
    case AggOp::kMean:
      return count == 0 ? Value::Null()
                        : Value(sum / static_cast<double>(count));
    case AggOp::kMin:
      return min_v;
    case AggOp::kMax:
      return max_v;
    default:
      return Value::Null();
  }
}

}  // namespace

Result<LookupSpec> Interpreter::BuildGraphSpec(const Step& step,
                                               const ExecState& state) const {
  LookupSpec spec = step.spec;
  Result<std::vector<Value>> ids = ResolveIds(step.start_ids, state);
  if (!ids.ok()) return ids.status();
  for (Value& v : *ids) spec.ids.push_back(std::move(v));
  Result<std::vector<Value>> src_ids = ResolveIds(step.src_id_args, state);
  if (!src_ids.ok()) return src_ids.status();
  for (Value& v : *src_ids) spec.src_ids.push_back(std::move(v));
  Result<std::vector<Value>> dst_ids = ResolveIds(step.dst_id_args, state);
  if (!dst_ids.ok()) return dst_ids.status();
  for (Value& v : *dst_ids) spec.dst_ids.push_back(std::move(v));
  // Id lists carry set semantics (Db2 Graph turns them into SQL IN lists;
  // duplicates would otherwise duplicate traversers on other providers).
  auto dedupe = [](std::vector<Value>* values) {
    std::unordered_set<Value, ValueHash> seen;
    std::vector<Value> unique;
    for (Value& v : *values) {
      if (seen.insert(v).second) unique.push_back(std::move(v));
    }
    *values = std::move(unique);
  };
  dedupe(&spec.ids);
  dedupe(&spec.src_ids);
  dedupe(&spec.dst_ids);
  return spec;
}

Status Interpreter::ApplyGraphStep(const Step& step,
                                   std::vector<Traverser> input,
                                   ExecState* state,
                                   std::vector<Traverser>* out) {
  (void)input;  // GraphStep restarts the stream
  Result<LookupSpec> built = BuildGraphSpec(step, *state);
  if (!built.ok()) return built.status();
  LookupSpec spec = std::move(*built);

  // Aggregate pushdown: ask the provider first; fall back to client-side.
  if (spec.agg != AggOp::kNone) {
    Result<Value> agg = step.graph_emits_edges
                            ? provider_->AggregateEdges(spec)
                            : provider_->AggregateVertices(spec);
    if (agg.ok()) {
      out->push_back(Traverser::OfValue(*agg));
      return Status::OK();
    }
    if (agg.status().code() != StatusCode::kUnsupported) {
      return agg.status();
    }
    spec.agg = AggOp::kNone;  // fetch elements, aggregate below
    std::vector<Traverser> fetched;
    if (step.graph_emits_edges) {
      std::vector<EdgePtr> edges;
      DB2G_RETURN_NOT_OK(provider_->Edges(spec, &edges));
      for (EdgePtr& e : edges) fetched.push_back(Traverser::OfEdge(e));
    } else {
      std::vector<VertexPtr> vertices;
      DB2G_RETURN_NOT_OK(provider_->Vertices(spec, &vertices));
      for (VertexPtr& v : vertices) {
        fetched.push_back(Traverser::OfVertex(v));
      }
    }
    // When the aggregate was folded over values(key), aggregate the
    // property values, not the elements.
    if (!step.spec.agg_key.empty()) {
      std::vector<Traverser> values;
      for (const Traverser& t : fetched) {
        const Element* e = t.element();
        if (e == nullptr) continue;
        if (const Value* v = e->FindProperty(step.spec.agg_key)) {
          values.push_back(Traverser::OfValue(*v));
        }
      }
      fetched = std::move(values);
    }
    out->push_back(Traverser::OfValue(AggregateStream(fetched, step.spec.agg)));
    return Status::OK();
  }

  // A pushdown provider fully applies the spec; otherwise re-filter here
  // (a non-pushdown provider's plan carries no folded predicates, but the
  // recheck keeps correctness independent of provider quality).
  const bool recheck = !provider_->SupportsPushdown();
  if (step.graph_emits_edges) {
    std::vector<EdgePtr> edges;
    DB2G_RETURN_NOT_OK(provider_->Edges(spec, &edges));
    for (EdgePtr& e : edges) {
      if (recheck && !MatchesSpec(*e, spec)) continue;
      Traverser t = Traverser::OfEdge(std::move(e));
      t.path.push_back(t.edge->id);
      out->push_back(std::move(t));
    }
  } else {
    std::vector<VertexPtr> vertices;
    DB2G_RETURN_NOT_OK(provider_->Vertices(spec, &vertices));
    for (VertexPtr& v : vertices) {
      if (recheck && !MatchesSpec(*v, spec)) continue;
      Traverser t = Traverser::OfVertex(std::move(v));
      t.path.push_back(t.vertex->id);
      out->push_back(std::move(t));
    }
  }
  return Status::OK();
}

Status Interpreter::ApplyVertexStep(const Step& step,
                                    std::vector<Traverser> input,
                                    std::vector<Traverser>* out) {
  // Gather the distinct source vertices.
  std::vector<VertexPtr> sources;
  std::unordered_set<Value, ValueHash> seen;
  for (const Traverser& t : input) {
    if (t.kind != Traverser::Kind::kVertex) {
      return Status::InvalidArgument(
          "Gremlin: adjacency step applied to a non-vertex");
    }
    if (seen.insert(t.vertex->id).second) sources.push_back(t.vertex);
  }
  if (sources.empty()) {
    // A folded aggregate still produces its value over the empty stream
    // (count() of nothing is 0).
    if (!step.to_vertex && step.spec.agg != AggOp::kNone) {
      out->push_back(Traverser::OfValue(AggregateStream({}, step.spec.agg)));
    }
    return Status::OK();
  }

  // Fetch incident edges (labels + any pushed-down *edge* predicates).
  LookupSpec edge_spec;
  edge_spec.labels = step.edge_labels;
  if (!step.to_vertex) {
    edge_spec.predicates = step.spec.predicates;
    edge_spec.projection = step.spec.projection;
    edge_spec.has_projection = step.spec.has_projection;
    edge_spec.agg = step.spec.agg;
    edge_spec.agg_key = step.spec.agg_key;
  }

  // Aggregate pushdown for the common v.outE(lbl).count() shape, only
  // correct when each traverser is a distinct vertex (the barrier sums
  // over all input anyway).
  if (!step.to_vertex && edge_spec.agg == AggOp::kCount &&
      sources.size() == input.size()) {
    LookupSpec spec = edge_spec;
    std::vector<Value> ids;
    for (const VertexPtr& v : sources) ids.push_back(v->id);
    if (step.direction == Direction::kOut) {
      spec.src_ids = ids;
    } else if (step.direction == Direction::kIn) {
      spec.dst_ids = ids;
    }
    if (step.direction != Direction::kBoth) {
      Result<Value> agg = provider_->AggregateEdges(spec);
      if (agg.ok()) {
        out->push_back(Traverser::OfValue(*agg));
        return Status::OK();
      }
    }
  }
  edge_spec.agg = AggOp::kNone;

  std::vector<EdgePtr> edges;
  DB2G_RETURN_NOT_OK(provider_->AdjacentEdges(sources, step.direction,
                                              edge_spec, &edges));
  // Group edges by the endpoint on the source side. Shared EdgePtrs go
  // straight into the buckets, so emission below needs no second
  // lookup-by-id map.
  const bool recheck = !provider_->SupportsPushdown();
  std::unordered_map<Value, std::vector<EdgePtr>, ValueHash> by_source;
  for (const EdgePtr& e : edges) {
    if (recheck && !MatchesSpec(*e, edge_spec)) continue;
    if (step.direction == Direction::kOut) {
      by_source[e->src_id].push_back(e);
    } else if (step.direction == Direction::kIn) {
      by_source[e->dst_id].push_back(e);
    } else {
      by_source[e->src_id].push_back(e);
      if (!(e->dst_id == e->src_id)) by_source[e->dst_id].push_back(e);
    }
  }

  if (!step.to_vertex) {
    // outE/inE/bothE: emit the edges per traverser.
    std::vector<Traverser> emitted;
    for (const Traverser& t : input) {
      auto it = by_source.find(t.vertex->id);
      if (it == by_source.end()) continue;
      for (const EdgePtr& e : it->second) {
        emitted.push_back(Derive(t, Traverser::OfEdge(e), e->id));
      }
    }
    // An aggregate folded into this step that was not pushed down to the
    // provider (unsupported, kBoth, duplicate anchors) collapses here.
    if (step.spec.agg != AggOp::kNone) {
      std::vector<Traverser> basis;
      if (!step.spec.agg_key.empty()) {
        for (const Traverser& t : emitted) {
          if (const Value* v = t.edge->FindProperty(step.spec.agg_key)) {
            basis.push_back(Traverser::OfValue(*v));
          }
        }
      } else {
        basis = std::move(emitted);
      }
      out->push_back(Traverser::OfValue(AggregateStream(basis, step.spec.agg)));
      return Status::OK();
    }
    for (Traverser& t : emitted) out->push_back(std::move(t));
    return Status::OK();
  }

  // out/in/both: resolve the far endpoint vertices, with the step's vertex
  // pushdown spec applied.
  LookupSpec vertex_spec = step.spec;
  std::vector<EdgePtr> edge_vec(edges.begin(), edges.end());
  Direction endpoint = step.direction == Direction::kOut
                           ? Direction::kIn
                           : step.direction == Direction::kIn
                                 ? Direction::kOut
                                 : Direction::kBoth;
  std::vector<VertexPtr> endpoints;
  DB2G_RETURN_NOT_OK(provider_->EdgeEndpoints(edge_vec, endpoint, vertex_spec,
                                              &endpoints));
  std::unordered_map<Value, VertexPtr, ValueHash> vertex_by_id;
  for (const VertexPtr& v : endpoints) vertex_by_id[v->id] = v;

  for (const Traverser& t : input) {
    auto it = by_source.find(t.vertex->id);
    if (it == by_source.end()) continue;
    for (const EdgePtr& e : it->second) {
      // The far endpoint relative to this traverser's vertex.
      const Value& far = step.direction == Direction::kOut
                             ? e->dst_id
                             : step.direction == Direction::kIn
                                   ? e->src_id
                                   : (e->src_id == t.vertex->id ? e->dst_id
                                                                : e->src_id);
      auto vit = vertex_by_id.find(far);
      if (vit == vertex_by_id.end()) continue;  // filtered or dangling
      if (recheck && !MatchesSpec(*vit->second, vertex_spec)) continue;
      out->push_back(Derive(t, Traverser::OfVertex(vit->second), far));
    }
  }
  return Status::OK();
}

Status Interpreter::ApplyMultiHopStep(const Step& step,
                                      std::vector<Traverser> input,
                                      ExecState* state,
                                      std::vector<Traverser>* out) {
  std::vector<VertexPtr> sources;
  std::unordered_set<Value, ValueHash> seen;
  for (const Traverser& t : input) {
    if (t.kind != Traverser::Kind::kVertex) {
      return Status::InvalidArgument(
          "Gremlin: multi-hop step applied to a non-vertex");
    }
    if (seen.insert(t.vertex->id).second) sources.push_back(t.vertex);
  }
  if (sources.empty()) return Status::OK();

  if (step.multi_hop) {
    MultiHopBuckets buckets;
    Status st = provider_->MultiHopTraverse(sources, *step.multi_hop, &buckets);
    if (st.ok()) {
      for (const Traverser& t : input) {
        auto it = buckets.find(t.vertex->id);
        if (it == buckets.end()) continue;
        for (const MultiHopEmission& e : it->second) {
          Traverser child = Traverser::OfVertex(e.vertex);
          child.path = t.path;
          child.path.insert(child.path.end(), e.path_ids.begin(),
                            e.path_ids.end());
          out->push_back(std::move(child));
        }
      }
      return st;
    }
    if (st.code() != StatusCode::kUnsupported) return st;
  }
  // The provider declined: run the preserved step-at-a-time plan. The
  // collapsed steps are all block-safe transforms with no cross-pass
  // state, so a per-block materialized pass matches exactly.
  return ExecuteMaterialized(step.body, std::move(input), state, out);
}

Status Interpreter::ApplyEdgeVertexStep(const Step& step,
                                        std::vector<Traverser> input,
                                        std::vector<Traverser>* out) {
  std::vector<EdgePtr> edges;
  for (const Traverser& t : input) {
    if (t.kind != Traverser::Kind::kEdge) {
      return Status::InvalidArgument(
          "Gremlin: outV/inV applied to a non-edge");
    }
    edges.push_back(t.edge);
  }
  if (edges.empty()) return Status::OK();
  std::vector<VertexPtr> vertices;
  DB2G_RETURN_NOT_OK(
      provider_->EdgeEndpoints(edges, step.direction, step.spec, &vertices));
  std::unordered_map<Value, VertexPtr, ValueHash> by_id;
  for (const VertexPtr& v : vertices) by_id[v->id] = v;
  for (const Traverser& t : input) {
    auto emit = [&](const Value& id) {
      auto it = by_id.find(id);
      if (it == by_id.end()) return;
      if (!provider_->SupportsPushdown() &&
          !MatchesSpec(*it->second, step.spec)) {
        return;
      }
      out->push_back(Derive(t, Traverser::OfVertex(it->second), id));
    };
    if (step.direction == Direction::kOut ||
        step.direction == Direction::kBoth) {
      emit(t.edge->src_id);
    }
    if (step.direction == Direction::kIn ||
        step.direction == Direction::kBoth) {
      emit(t.edge->dst_id);
    }
  }
  return Status::OK();
}

Status Interpreter::ApplyStep(const Step& step, std::vector<Traverser> input,
                              ExecState* state,
                              std::vector<Traverser>* out) {
  switch (step.kind) {
    case StepKind::kGraph:
      return ApplyGraphStep(step, std::move(input), state, out);
    case StepKind::kVertex:
      return ApplyVertexStep(step, std::move(input), out);
    case StepKind::kEdgeVertex:
      return ApplyEdgeVertexStep(step, std::move(input), out);
    case StepKind::kMultiHop:
      return ApplyMultiHopStep(step, std::move(input), state, out);

    case StepKind::kHas: {
      std::vector<Value> ids;
      if (!step.id_args.empty()) {
        Result<std::vector<Value>> resolved = ResolveIds(step.id_args, *state);
        if (!resolved.ok()) return resolved.status();
        ids = std::move(*resolved);
      }
      // Resolve bind-placeholder predicates (has(key, gt(var))) from the
      // environment; scalar comparisons need exactly one bound value.
      std::vector<PropPredicate> resolved_preds;
      const std::vector<PropPredicate>* preds = &step.predicates;
      bool any_var = false;
      for (const PropPredicate& pred : step.predicates) {
        any_var |= !pred.var.empty();
      }
      if (any_var) {
        resolved_preds = step.predicates;
        for (PropPredicate& pred : resolved_preds) {
          if (pred.var.empty()) continue;
          auto it = state->env->find(pred.var);
          if (it == state->env->end()) {
            return Status::NotFound("Gremlin: unbound variable '" + pred.var +
                                    "'");
          }
          bool scalar = pred.op != PropPredicate::Op::kWithin &&
                        pred.op != PropPredicate::Op::kWithout;
          if (scalar && it->second.size() != 1) {
            return Status::InvalidArgument(
                "Gremlin: bind variable '" + pred.var + "' supplies " +
                std::to_string(it->second.size()) +
                " values; a scalar comparison needs exactly one");
          }
          pred.values = it->second;
        }
        preds = &resolved_preds;
      }
      for (Traverser& t : input) {
        const Element* e = t.element();
        if (e == nullptr) continue;  // has() on values drops nothing? drop:
        bool keep = true;
        if (!ids.empty() &&
            std::find(ids.begin(), ids.end(), e->id) == ids.end()) {
          keep = false;
        }
        for (const PropPredicate& pred : *preds) {
          if (!pred.Matches(*e)) {
            keep = false;
            break;
          }
        }
        if (keep) out->push_back(std::move(t));
      }
      return Status::OK();
    }

    case StepKind::kValues: {
      for (const Traverser& t : input) {
        const Element* e = t.element();
        if (e == nullptr) continue;
        if (step.keys.empty()) {
          for (const auto& [k, v] : e->properties) {
            (void)k;
            out->push_back(Derive(t, Traverser::OfValue(v), v));
          }
        } else {
          for (const std::string& key : step.keys) {
            if (const Value* v = e->FindProperty(key)) {
              out->push_back(Derive(t, Traverser::OfValue(*v), *v));
            }
          }
        }
      }
      return Status::OK();
    }

    case StepKind::kValueMap: {
      for (const Traverser& t : input) {
        const Element* e = t.element();
        if (e == nullptr) continue;
        std::string repr = "{";
        bool first = true;
        for (const auto& [k, v] : e->properties) {
          if (!step.keys.empty() &&
              std::find(step.keys.begin(), step.keys.end(), k) ==
                  step.keys.end()) {
            continue;
          }
          if (!first) repr += ", ";
          first = false;
          repr += k + ": " + v.ToString();
        }
        repr += "}";
        out->push_back(Traverser::OfValue(Value(std::move(repr))));
      }
      return Status::OK();
    }

    case StepKind::kId: {
      for (const Traverser& t : input) {
        if (const Element* e = t.element()) {
          out->push_back(Derive(t, Traverser::OfValue(e->id), e->id));
        }
      }
      return Status::OK();
    }

    case StepKind::kLabel: {
      for (const Traverser& t : input) {
        if (const Element* e = t.element()) {
          out->push_back(
              Derive(t, Traverser::OfValue(Value(e->label)), Value(e->label)));
        }
      }
      return Status::OK();
    }

    case StepKind::kAggregate:
      out->push_back(Traverser::OfValue(AggregateStream(input, step.agg)));
      return Status::OK();

    case StepKind::kDedup: {
      auto& seen = state->dedup_seen[&step];
      for (Traverser& t : input) {
        if (seen.insert(t.DedupKey()).second) {
          out->push_back(std::move(t));
        }
      }
      return Status::OK();
    }

    case StepKind::kLimit: {
      for (Traverser& t : input) {
        if (static_cast<int64_t>(out->size()) >= step.high) break;
        out->push_back(std::move(t));
      }
      return Status::OK();
    }

    case StepKind::kRange: {
      for (int64_t i = step.low;
           i < static_cast<int64_t>(input.size()) && i < step.high; ++i) {
        out->push_back(std::move(input[i]));
      }
      return Status::OK();
    }

    case StepKind::kOrder: {
      auto sort_key = [&](const Traverser& t) -> Value {
        if (!step.keys.empty()) {
          if (const Element* e = t.element()) {
            for (const std::string& key : step.keys) {
              if (const Value* v = e->FindProperty(key)) return *v;
            }
            return Value::Null();  // missing property sorts first
          }
        }
        return t.DedupKey();
      };
      auto less = [&](const Traverser& a, const Traverser& b) {
        int c = sort_key(a).Compare(sort_key(b));
        return step.descending ? c > 0 : c < 0;
      };
      size_t chunks = BarrierChunks(input.size());
      if (chunks < 2) {
        std::stable_sort(input.begin(), input.end(), less);
      } else {
        // Parallel barrier drain: stable-sort contiguous chunks on pool
        // workers, then stable-merge adjacent chunks left to right — the
        // result is elementwise identical to one global stable_sort.
        const size_t per = (input.size() + chunks - 1) / chunks;
        std::vector<size_t> bounds;
        for (size_t c = 0; c < chunks; ++c) {
          bounds.push_back(std::min(input.size(), c * per));
        }
        bounds.push_back(input.size());
        governor::QueryContext* qc = governor::CurrentQueryContext();
        ThreadPool::Shared().RunBatch(chunks, [&](size_t c) {
          governor::ScopedQueryContext governed(qc);
          std::stable_sort(input.begin() + bounds[c],
                           input.begin() + bounds[c + 1], less);
        });
        for (size_t c = 1; c < chunks; ++c) {
          std::inplace_merge(input.begin(), input.begin() + bounds[c],
                             input.begin() + bounds[c + 1], less);
        }
      }
      *out = std::move(input);
      return Status::OK();
    }

    case StepKind::kRepeat: {
      std::vector<Traverser> stream = std::move(input);
      for (int64_t i = 0; i < step.times; ++i) {
        std::vector<Traverser> next;
        DB2G_RETURN_NOT_OK(Execute(step.body, std::move(stream), state,
                                   &next));
        stream = std::move(next);
        if (step.emit) {
          for (const Traverser& t : stream) out->push_back(t);
        }
      }
      if (!step.emit) *out = std::move(stream);
      return Status::OK();
    }

    case StepKind::kWhere:
    case StepKind::kNot: {
      for (Traverser& t : input) {
        std::vector<Traverser> sub_out;
        std::vector<Traverser> seed;
        seed.push_back(t);
        DB2G_RETURN_NOT_OK(Execute(step.body, std::move(seed), state,
                                   &sub_out));
        bool matched = !sub_out.empty();
        // A sub-traversal ending in an aggregate always yields one value;
        // treat count()==0 as no match.
        if (matched && sub_out.size() == 1 &&
            sub_out[0].kind == Traverser::Kind::kValue &&
            sub_out[0].value.is_int() && !step.body.empty() &&
            step.body.back().kind == StepKind::kAggregate) {
          matched = sub_out[0].value.as_int() != 0;
        }
        if (matched == (step.kind == StepKind::kWhere)) {
          out->push_back(std::move(t));
        }
      }
      return Status::OK();
    }

    case StepKind::kStore: {
      auto& store = state->stores[step.side_effect_key];
      for (Traverser& t : input) {
        if (const Element* e = t.element()) {
          store.push_back(e->id);
        } else if (t.kind == Traverser::Kind::kList) {
          for (const Value& v : t.list) store.push_back(v);
        } else {
          store.push_back(t.value);
        }
        out->push_back(std::move(t));
      }
      return Status::OK();
    }

    case StepKind::kCap: {
      auto it = state->stores.find(step.side_effect_key);
      std::vector<Value> values =
          it != state->stores.end() ? it->second : std::vector<Value>{};
      out->push_back(Traverser::OfList(std::move(values)));
      return Status::OK();
    }

    case StepKind::kUnion: {
      for (Traverser& t : input) {
        for (const auto& branch : step.branches) {
          std::vector<Traverser> branch_out;
          std::vector<Traverser> seed;
          seed.push_back(t);
          DB2G_RETURN_NOT_OK(Execute(branch, std::move(seed), state,
                                     &branch_out));
          for (Traverser& r : branch_out) out->push_back(std::move(r));
        }
      }
      return Status::OK();
    }

    case StepKind::kCoalesce: {
      for (Traverser& t : input) {
        for (const auto& branch : step.branches) {
          std::vector<Traverser> branch_out;
          std::vector<Traverser> seed;
          seed.push_back(t);
          DB2G_RETURN_NOT_OK(Execute(branch, std::move(seed), state,
                                     &branch_out));
          if (!branch_out.empty()) {
            for (Traverser& r : branch_out) out->push_back(std::move(r));
            break;
          }
        }
      }
      return Status::OK();
    }

    case StepKind::kIs: {
      for (Traverser& t : input) {
        if (t.kind != Traverser::Kind::kValue) continue;
        bool keep = true;
        for (const PropPredicate& pred : step.predicates) {
          if (!pred.Matches(t.value)) {
            keep = false;
            break;
          }
        }
        if (keep) out->push_back(std::move(t));
      }
      return Status::OK();
    }

    case StepKind::kPath: {
      for (Traverser& t : input) {
        Traverser p = Traverser::OfList(t.path);
        p.path = t.path;
        out->push_back(std::move(p));
      }
      return Status::OK();
    }

    case StepKind::kSimplePath: {
      for (Traverser& t : input) {
        std::unordered_set<Value, ValueHash> seen;
        bool simple = true;
        for (const Value& v : t.path) {
          if (!seen.insert(v).second) {
            simple = false;
            break;
          }
        }
        if (simple) out->push_back(std::move(t));
      }
      return Status::OK();
    }

    case StepKind::kTail: {
      int64_t n = step.high;
      size_t start = input.size() > static_cast<size_t>(n)
                         ? input.size() - static_cast<size_t>(n)
                         : 0;
      for (size_t i = start; i < input.size(); ++i) {
        out->push_back(std::move(input[i]));
      }
      return Status::OK();
    }

    case StepKind::kGroupCount: {
      // Barrier: multiplicity per value/element id, emitted as one list of
      // alternating [key, count, key, count, ...] sorted by key.
      std::map<Value, int64_t> counts;
      size_t chunks = BarrierChunks(input.size());
      if (chunks < 2) {
        for (const Traverser& t : input) {
          ++counts[t.DedupKey()];
        }
      } else {
        // Parallel barrier drain: per-worker partial maps over contiguous
        // chunks, merged in chunk order. Counts are additive and the
        // output map is key-sorted, so the result is identical to serial.
        std::vector<std::map<Value, int64_t>> partials(chunks);
        const size_t per = (input.size() + chunks - 1) / chunks;
        governor::QueryContext* qc = governor::CurrentQueryContext();
        ThreadPool::Shared().RunBatch(chunks, [&](size_t c) {
          governor::ScopedQueryContext governed(qc);
          size_t lo = c * per;
          size_t hi = std::min(input.size(), lo + per);
          std::map<Value, int64_t>& local = partials[c];
          for (size_t i = lo; i < hi; ++i) {
            ++local[input[i].DedupKey()];
          }
        });
        for (std::map<Value, int64_t>& partial : partials) {
          for (auto& [key, count] : partial) counts[key] += count;
        }
      }
      std::vector<Value> flattened;
      flattened.reserve(counts.size() * 2);
      for (const auto& [key, count] : counts) {
        flattened.push_back(key);
        flattened.push_back(Value(count));
      }
      out->push_back(Traverser::OfList(std::move(flattened)));
      return Status::OK();
    }
  }
  return Status::Internal("unknown step kind");
}

Result<std::vector<Row>> TraversersToRows(const std::vector<Traverser>& ts,
                                          size_t arity) {
  std::vector<Value> flat;
  for (const Traverser& t : ts) {
    if (const Element* e = t.element()) {
      flat.push_back(e->id);
    } else if (t.kind == Traverser::Kind::kList) {
      for (const Value& v : t.list) flat.push_back(v);
    } else {
      flat.push_back(t.value);
    }
  }
  if (arity == 0) {
    return Status::InvalidArgument("row arity must be positive");
  }
  if (flat.size() % arity != 0) {
    return Status::InvalidArgument(
        "graph query produced " + std::to_string(flat.size()) +
        " values, not a multiple of the declared column count " +
        std::to_string(arity));
  }
  std::vector<Row> rows;
  rows.reserve(flat.size() / arity);
  for (size_t i = 0; i < flat.size(); i += arity) {
    Row row(flat.begin() + i, flat.begin() + i + arity);
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace db2graph::gremlin
