// Copyright (c) 2026 The db2graph-repro Authors.
//
// The TinkerPop-style "core API" seam (paper Section 3): property-graph
// element types plus the abstract GraphProvider interface that graph
// back ends implement. Db2 Graph's Graph Structure module, the native
// GDB-X simulator, and the JanusGraph-like baseline all plug in here, so
// the Gremlin interpreter runs identical queries against all three.
//
// The LookupSpec carries the *extended* structure-API pushdown information
// of Section 6: ids, labels, property predicates, endpoint constraints,
// projections, and aggregates. Providers are free to ignore any hint
// (except ids/endpoints, which are semantic); the interpreter re-applies
// filters client-side, so pushdown only ever reduces transferred data.

#ifndef DB2GRAPH_GREMLIN_GRAPH_API_H_
#define DB2GRAPH_GREMLIN_GRAPH_API_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace db2graph::gremlin {

/// Base of vertices and edges: id, label, properties, and provenance.
struct Element {
  Value id;
  std::string label;
  std::vector<std::pair<std::string, Value>> properties;

  /// The overlay/storage table this element came from ("" when the back
  /// end has no table notion). Drives the paper's Section 6.3
  /// data-dependent optimizations.
  std::string source_table;

  /// Provider-private provenance payload (e.g. the originating row and
  /// overlay-table index in Db2 Graph, enabling the "vertex table is also
  /// an edge table" shortcut). Opaque to the interpreter.
  std::shared_ptr<const void> provenance;

  /// Property value by key; nullptr when absent.
  const Value* FindProperty(const std::string& key) const {
    for (const auto& [k, v] : properties) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

struct Vertex : Element {};

struct Edge : Element {
  Value src_id;
  Value dst_id;
};

using VertexPtr = std::shared_ptr<const Vertex>;
using EdgePtr = std::shared_ptr<const Edge>;

/// Traversal direction relative to a vertex.
enum class Direction { kOut, kIn, kBoth };

/// Comparison predicate on one property, pushed down to providers
/// (Gremlin P.eq/neq/lt/lte/gt/gte/within).
struct PropPredicate {
  enum class Op {
    kEq,
    kNeq,
    kLt,
    kLte,
    kGt,
    kGte,
    kWithin,
    kWithout,
    kExists,  // has(key): the property merely needs to be present
  };
  std::string key;
  Op op = Op::kEq;
  std::vector<Value> values;  // 1 value for scalar ops, n for within/without
  /// Bind placeholder: when non-empty, `values` is unset at compile time
  /// and the interpreter resolves the variable from the execution
  /// environment (has('age', gt(threshold))). Predicates with a pending
  /// variable are never pushed down to providers.
  std::string var;

  bool Matches(const Value& v) const;
  /// Evaluates against an element ("~id" and "~label" address the id and
  /// label fields; anything else is a property key — absent property fails).
  bool Matches(const Element& element) const;
};

/// Reserved predicate keys addressing required fields.
inline const char kIdKey[] = "~id";
inline const char kLabelKey[] = "~label";

/// Client-side-computable aggregate, also pushed down when supported.
enum class AggOp { kNone, kCount, kSum, kMean, kMin, kMax };

/// What to retrieve, with every pushdown hint the optimized traversal
/// strategies may fold in.
struct LookupSpec {
  std::vector<Value> ids;       // empty = unconstrained
  std::vector<std::string> labels;
  std::vector<PropPredicate> predicates;

  // Edge lookups only: constrain endpoints ("SELECT ... WHERE src_v IN").
  std::vector<Value> src_ids;
  std::vector<Value> dst_ids;

  // Projection pushdown: property names the traversal will consume
  // (empty = all properties). Ids/labels are always retrieved.
  std::vector<std::string> projection;
  bool has_projection = false;

  // Aggregate pushdown: when set, a supporting provider returns the
  // aggregate instead of the elements.
  AggOp agg = AggOp::kNone;
  std::string agg_key;  // property for sum/mean/min/max

  // Limit pushdown: when >= 0, the traversal consumes at most this many
  // elements from *each* consulted table (a trailing limit(n)/range(lo,hi)
  // with no row-dropping step in between). Providers may render it as a
  // SQL LIMIT so the per-table scan short-circuits; it is a budget, not a
  // semantic bound — the interpreter keeps enforcing the exact cross-table
  // limit client-side.
  int64_t limit = -1;

  bool HasIdConstraint() const { return !ids.empty(); }
};

/// One collapsed hop of a multi-hop traversal: the adjacency direction,
/// the pushdown hints for the hop's edges, and the lookup hints for the
/// far-endpoint vertices. When emit_edge_id is set (an outE().inV()
/// step pair), the traverser path records the edge id before the far
/// vertex id; a plain out()/in() hop records only the vertex id.
struct MultiHopHop {
  Direction direction = Direction::kOut;
  std::vector<std::string> edge_labels;
  LookupSpec edge_spec;
  LookupSpec vertex_spec;
  bool emit_edge_id = false;
};

/// A chain of hops the cost-based optimizer collapsed into one provider
/// call; the Db2 Graph provider renders it as a single N-way join per
/// eligible table chain instead of one statement per hop.
struct MultiHopSpec {
  std::vector<MultiHopHop> hops;
  uint64_t est_rows = 0;   // optimizer's output-cardinality estimate
  std::string join_order;  // human-readable join order for Explain
  /// Provider-private compiled join plan (table chains, layouts, shape
  /// keys), attached by the optimizer and opaque to the interpreter.
  std::shared_ptr<const void> provider_plan;
};

/// One multi-hop result from one source: the final vertex plus the ids
/// the traverser path accumulates along the way, in hop order (the edge
/// id first for emit_edge_id hops, then the hop's vertex id).
struct MultiHopEmission {
  VertexPtr vertex;
  std::vector<Value> path_ids;
};

/// Multi-hop results bucketed by source-vertex id; the per-bucket order
/// must equal the order step-at-a-time execution would emit for that
/// source, so collapsed plans stay byte-identical with the fallback.
using MultiHopBuckets =
    std::unordered_map<Value, std::vector<MultiHopEmission>, ValueHash>;

/// Pull cursor over a vertex lookup: the streaming counterpart of
/// GraphProvider::Vertices. Blocks arrive in the same deterministic order
/// the materialized call would produce, so a consumer that stops pulling
/// early sees a prefix of the materialized result.
class VertexStream {
 public:
  virtual ~VertexStream() = default;

  /// Clears `out` and appends up to `max` vertices (at least 1 when any
  /// remain). Returns true iff vertices were delivered; false means the
  /// stream is exhausted — or failed, which status() distinguishes.
  virtual bool Next(std::vector<VertexPtr>* out, size_t max) = 0;

  /// Stops the stream and releases its resources (idempotent; also run by
  /// the destructor). A provider backed by parallel per-table fetches
  /// cancels work that has not started yet.
  virtual void Close() = 0;

  virtual const Status& status() const = 0;
};

/// Pull cursor over an edge lookup (streaming Edges()); same contract as
/// VertexStream.
class EdgeStream {
 public:
  virtual ~EdgeStream() = default;
  virtual bool Next(std::vector<EdgePtr>* out, size_t max) = 0;
  virtual void Close() = 0;
  virtual const Status& status() const = 0;
};

/// Abstract graph back end. All methods are thread-safe for concurrent
/// readers.
class GraphProvider {
 public:
  virtual ~GraphProvider() = default;

  virtual std::string name() const = 0;

  /// Vertices matching `spec` (ids/labels/predicates conjunctive).
  virtual Status Vertices(const LookupSpec& spec,
                          std::vector<VertexPtr>* out) = 0;

  /// Edges matching `spec`, including src/dst endpoint constraints.
  virtual Status Edges(const LookupSpec& spec,
                       std::vector<EdgePtr>* out) = 0;

  /// Edges incident to `from` in direction `dir`, also matching `spec`
  /// (labels/predicates). Default: delegates to Edges() with endpoint
  /// constraints; providers with provenance-aware pruning override.
  virtual Status AdjacentEdges(const std::vector<VertexPtr>& from,
                               Direction dir, const LookupSpec& spec,
                               std::vector<EdgePtr>* out);

  /// Endpoint vertices of `edges` (kOut = source, kIn = destination),
  /// matching `spec`. Default: delegates to Vertices() by id; providers
  /// can use per-edge table provenance to do better.
  virtual Status EdgeEndpoints(const std::vector<EdgePtr>& edges,
                               Direction endpoint, const LookupSpec& spec,
                               std::vector<VertexPtr>* out);

  /// Streaming variants: same element set and order as the materialized
  /// calls, delivered block-at-a-time so a downstream limit can stop the
  /// lookup before every table is drained. Defaults materialize through
  /// Vertices()/Edges() and chunk the result — correct for any provider;
  /// ones that can stream natively override.
  virtual Result<std::unique_ptr<VertexStream>> VerticesStreaming(
      const LookupSpec& spec);
  virtual Result<std::unique_ptr<EdgeStream>> EdgesStreaming(
      const LookupSpec& spec);

  /// Aggregate pushdown. Providers that can compute spec.agg natively
  /// (e.g. SELECT COUNT(*)) return the value; default is Unsupported and
  /// the interpreter aggregates client-side.
  virtual Result<Value> AggregateVertices(const LookupSpec& spec);
  virtual Result<Value> AggregateEdges(const LookupSpec& spec);

  /// Collapsed multi-hop traversal: all hops of `spec` from each source
  /// in one call (one N-way join statement per table chain in Db2 Graph).
  /// Default is Unsupported — the interpreter then falls back to the
  /// step-at-a-time plan kept alongside the MultiHopStep.
  virtual Status MultiHopTraverse(const std::vector<VertexPtr>& sources,
                                  const MultiHopSpec& spec,
                                  MultiHopBuckets* out);

  /// Whether the provider benefits from the Db2 Graph provider strategies
  /// (predicate/projection/aggregate pushdown and step mutations).
  virtual bool SupportsPushdown() const { return false; }
};

/// Applies labels + predicates of `spec` to an element, client-side.
bool MatchesSpec(const Element& element, const LookupSpec& spec);

}  // namespace db2graph::gremlin

#endif  // DB2GRAPH_GREMLIN_GRAPH_API_H_
