// Copyright (c) 2026 The db2graph-repro Authors.
//
// The traversal machine: executes a (possibly strategy-mutated) step plan
// against any GraphProvider. Filters that were not pushed down are applied
// client-side here, so providers may ignore pushdown hints without
// affecting correctness — only performance.

#ifndef DB2GRAPH_GREMLIN_INTERPRETER_H_
#define DB2GRAPH_GREMLIN_INTERPRETER_H_

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "gremlin/graph_api.h"
#include "gremlin/step.h"

namespace db2graph::gremlin {

/// One unit flowing through the traversal: a vertex, an edge, a scalar
/// value, or a list of values (the result of cap()).
struct Traverser {
  enum class Kind { kVertex, kEdge, kValue, kList };
  Kind kind = Kind::kValue;
  VertexPtr vertex;
  EdgePtr edge;
  Value value;
  std::vector<Value> list;

  /// Id/value history of the traversal that produced this traverser,
  /// including the current element (supports path() / simplePath()).
  std::vector<Value> path;

  static Traverser OfVertex(VertexPtr v);
  static Traverser OfEdge(EdgePtr e);
  static Traverser OfValue(Value v);
  static Traverser OfList(std::vector<Value> values);

  /// The element payload (vertex or edge); nullptr for values/lists.
  const Element* element() const;

  /// Identity used by dedup(): element id, or the value itself.
  Value DedupKey() const;

  /// Display rendering (console / examples).
  std::string ToString() const;
};

/// Script variable bindings: each variable holds a list of values (ids or
/// scalars) produced by a terminated traversal.
using Environment = std::unordered_map<std::string, std::vector<Value>>;

/// Executes traversals and scripts against a provider.
class Interpreter {
 public:
  explicit Interpreter(GraphProvider* provider) : provider_(provider) {}

  /// Runs one traversal with variable bindings.
  Result<std::vector<Traverser>> Run(const Traversal& traversal,
                                     const Environment& env = {});

  /// Runs a full script; returns the final statement's output stream.
  /// Assignments bind intermediate results into the environment.
  Result<std::vector<Traverser>> RunScript(const Script& script,
                                           Environment* env = nullptr);

 private:
  struct ExecState {
    const Environment* env;
    std::map<std::string, std::vector<Value>> stores;  // store()/cap()
    // dedup() keeps its seen-set across repeat() iterations, keyed by the
    // identity of the step within this execution.
    std::unordered_map<const Step*, std::unordered_set<Value, ValueHash>>
        dedup_seen;
  };

  Status Execute(const std::vector<Step>& steps,
                 std::vector<Traverser> input, ExecState* state,
                 std::vector<Traverser>* out);
  Status ApplyStep(const Step& step, std::vector<Traverser> input,
                   ExecState* state, std::vector<Traverser>* out);

  Status ApplyGraphStep(const Step& step, std::vector<Traverser> input,
                        ExecState* state, std::vector<Traverser>* out);
  Status ApplyVertexStep(const Step& step, std::vector<Traverser> input,
                         std::vector<Traverser>* out);
  Status ApplyEdgeVertexStep(const Step& step, std::vector<Traverser> input,
                             std::vector<Traverser>* out);

  Result<std::vector<Value>> ResolveIds(const std::vector<GremlinArg>& args,
                                        const ExecState& state) const;

  GraphProvider* provider_;
};

/// Converts a final traverser stream into value rows of width `arity`
/// (consecutive values grouped) — the conversion the paper's graphQuery
/// table function performs (Section 4, footnote 1). Elements contribute
/// their id; lists are flattened.
Result<std::vector<Row>> TraversersToRows(const std::vector<Traverser>& ts,
                                          size_t arity);

}  // namespace db2graph::gremlin

#endif  // DB2GRAPH_GREMLIN_INTERPRETER_H_
