// Copyright (c) 2026 The db2graph-repro Authors.
//
// The traversal machine: executes a (possibly strategy-mutated) step plan
// against any GraphProvider. Filters that were not pushed down are applied
// client-side here, so providers may ignore pushdown hints without
// affecting correctness — only performance.

#ifndef DB2GRAPH_GREMLIN_INTERPRETER_H_
#define DB2GRAPH_GREMLIN_INTERPRETER_H_

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "gremlin/graph_api.h"
#include "gremlin/step.h"

namespace db2graph::gremlin {

/// One unit flowing through the traversal: a vertex, an edge, a scalar
/// value, or a list of values (the result of cap()).
struct Traverser {
  enum class Kind { kVertex, kEdge, kValue, kList };
  Kind kind = Kind::kValue;
  VertexPtr vertex;
  EdgePtr edge;
  Value value;
  std::vector<Value> list;

  /// Id/value history of the traversal that produced this traverser,
  /// including the current element (supports path() / simplePath()).
  std::vector<Value> path;

  static Traverser OfVertex(VertexPtr v);
  static Traverser OfEdge(EdgePtr e);
  static Traverser OfValue(Value v);
  static Traverser OfList(std::vector<Value> values);

  /// The element payload (vertex or edge); nullptr for values/lists.
  const Element* element() const;

  /// Identity used by dedup(): element id, or the value itself.
  Value DedupKey() const;

  /// Display rendering (console / examples).
  std::string ToString() const;
};

/// Script variable bindings: each variable holds a list of values (ids or
/// scalars) produced by a terminated traversal.
using Environment = std::unordered_map<std::string, std::vector<Value>>;

/// Executes traversals and scripts against a provider.
class Interpreter {
 public:
  /// Execution tuning. With streaming on, linear step chains run one
  /// traverser block at a time under a pull cursor: a downstream limit()
  /// or range() that saturates stops pulling, so upstream graph lookups
  /// stop issuing SQL. Barrier steps — order(), tail(), groupCount(),
  /// cap(), repeat(), fold-style aggregates — drain their input first.
  /// Results and ordering are identical in both modes; only the access
  /// pattern (and the per-step trace block counts) differ.
  struct Options {
    bool streaming = true;
    /// Traversers per block in streaming segments; also the block size
    /// requested from provider element streams.
    size_t block_size = 256;
    /// Degree of intra-query parallelism for barrier drains: order() and
    /// groupCount() over large inputs split into per-worker chunks whose
    /// partial states merge in chunk order (deterministic, identical
    /// results). 1 = serial. Resolved from ExecConfig by the graph layer.
    int parallelism = 1;
  };

  explicit Interpreter(GraphProvider* provider) : provider_(provider) {}
  Interpreter(GraphProvider* provider, Options options)
      : provider_(provider), options_(options) {}

  const Options& options() const { return options_; }

  /// Runs one traversal with variable bindings.
  Result<std::vector<Traverser>> Run(const Traversal& traversal,
                                     const Environment& env = {});

  /// Runs a full script; returns the final statement's output stream.
  /// Assignments bind intermediate results into the environment.
  Result<std::vector<Traverser>> RunScript(const Script& script,
                                           Environment* env = nullptr);

 private:
  struct ExecState {
    const Environment* env;
    std::map<std::string, std::vector<Value>> stores;  // store()/cap()
    // dedup() keeps its seen-set across repeat() iterations, keyed by the
    // identity of the step within this execution.
    std::unordered_map<const Step*, std::unordered_set<Value, ValueHash>>
        dedup_seen;
  };

  Status Execute(const std::vector<Step>& steps,
                 std::vector<Traverser> input, ExecState* state,
                 std::vector<Traverser>* out);
  /// The pre-streaming execution model: one fully-materialized pass per
  /// step. Used when options_.streaming is off, and by the streaming path
  /// for barrier steps.
  Status ExecuteMaterialized(const std::vector<Step>& steps,
                             std::vector<Traverser> input, ExecState* state,
                             std::vector<Traverser>* out);
  /// Streaming execution of one segment: steps [begin, end) applied block
  /// by block over either a provider element stream (graph_source — the
  /// step at `begin` is the GraphStep source) or the carried materialized
  /// stream chunked into blocks. Appends the segment's output to `out`.
  Status RunSegment(const std::vector<Step>& steps, size_t begin, size_t end,
                    bool graph_source, std::vector<Traverser> carried,
                    ExecState* state, std::vector<Traverser>* out);
  Status ApplyStep(const Step& step, std::vector<Traverser> input,
                   ExecState* state, std::vector<Traverser>* out);

  Status ApplyGraphStep(const Step& step, std::vector<Traverser> input,
                        ExecState* state, std::vector<Traverser>* out);
  Status ApplyVertexStep(const Step& step, std::vector<Traverser> input,
                         std::vector<Traverser>* out);
  Status ApplyEdgeVertexStep(const Step& step, std::vector<Traverser> input,
                             std::vector<Traverser>* out);
  /// Optimizer-collapsed hop chain: one MultiHopTraverse provider call for
  /// the whole chain; falls back to the preserved step-at-a-time plan in
  /// step.body when the provider returns Unsupported.
  Status ApplyMultiHopStep(const Step& step, std::vector<Traverser> input,
                           ExecState* state, std::vector<Traverser>* out);

  /// Number of chunks a barrier drain over n traversers splits into: 1
  /// (serial) unless options_.parallelism > 1 and the input is large
  /// enough that chunking beats the pool dispatch overhead; each chunk
  /// keeps at least kParallelBarrierMinInput/2 traversers.
  size_t BarrierChunks(size_t n) const {
    if (options_.parallelism <= 1 || n < kParallelBarrierMinInput) return 1;
    size_t max_chunks = n / (kParallelBarrierMinInput / 2);
    return std::min<size_t>(static_cast<size_t>(options_.parallelism),
                            max_chunks);
  }
  static constexpr size_t kParallelBarrierMinInput = 256;

  Result<std::vector<Value>> ResolveIds(const std::vector<GremlinArg>& args,
                                        const ExecState& state) const;
  /// The GraphStep's effective lookup spec: step.spec with start/src/dst
  /// id arguments resolved against the environment and deduplicated.
  Result<LookupSpec> BuildGraphSpec(const Step& step,
                                    const ExecState& state) const;

  GraphProvider* provider_;
  Options options_;
};

/// Converts a final traverser stream into value rows of width `arity`
/// (consecutive values grouped) — the conversion the paper's graphQuery
/// table function performs (Section 4, footnote 1). Elements contribute
/// their id; lists are flattened.
Result<std::vector<Row>> TraversersToRows(const std::vector<Traverser>& ts,
                                          size_t arity);

}  // namespace db2graph::gremlin

#endif  // DB2GRAPH_GREMLIN_INTERPRETER_H_
