#include "overlay/auto_overlay.h"

#include <algorithm>

#include "common/strings.h"

namespace db2graph::overlay {

namespace {

// combine(t.uniqueID, columns): the table name as constant identifier
// followed by the key columns (paper Algorithm 2).
FieldDef PrefixedField(const std::string& table_identifier,
                       const std::vector<std::string>& columns) {
  FieldDef def;
  def.parts.push_back({true, table_identifier});
  for (const std::string& c : columns) {
    def.parts.push_back({false, c});
  }
  return def;
}

std::vector<std::string> RemainingColumns(
    const sql::TableSchema& schema,
    const std::vector<std::vector<std::string>>& used_sets) {
  std::vector<std::string> out;
  for (const sql::ColumnDef& col : schema.columns) {
    bool used = false;
    for (const auto& set : used_sets) {
      for (const std::string& u : set) {
        if (EqualsIgnoreCase(u, col.name)) {
          used = true;
          break;
        }
      }
      if (used) break;
    }
    if (!used) out.push_back(col.name);
  }
  return out;
}

}  // namespace

Result<OverlayConfig> AutoOverlay(const sql::Database& db,
                                  const std::vector<std::string>& tables) {
  // Step 1: gather metadata for the selected tables.
  std::vector<std::string> selected =
      tables.empty() ? db.TableNames() : tables;
  std::vector<const sql::TableSchema*> schemas;
  for (const std::string& name : selected) {
    const sql::TableSchema* schema = db.GetSchema(name);
    if (schema == nullptr) {
      return Status::NotFound("AutoOverlay: no table named " + name);
    }
    schemas.push_back(schema);
  }
  auto is_selected = [&](const std::string& name) {
    for (const sql::TableSchema* s : schemas) {
      if (EqualsIgnoreCase(s->name, name)) return true;
    }
    return false;
  };

  // Step 2 (Algorithm 1): classify vertex and edge tables.
  std::vector<const sql::TableSchema*> vertex_tables;
  std::vector<const sql::TableSchema*> edge_tables;
  for (const sql::TableSchema* schema : schemas) {
    if (schema->has_primary_key()) {
      vertex_tables.push_back(schema);
      if (!schema->foreign_keys.empty()) edge_tables.push_back(schema);
    } else if (schema->foreign_keys.size() >= 2) {
      edge_tables.push_back(schema);
    }
  }
  if (vertex_tables.empty()) {
    return Status::InvalidArgument(
        "AutoOverlay: no table with a primary key; cannot infer a vertex "
        "set (specify the overlay manually)");
  }

  // Step 3 (Algorithm 2): generate the configuration.
  OverlayConfig config;
  for (const sql::TableSchema* schema : vertex_tables) {
    VertexTableConf conf;
    conf.table_name = schema->name;
    conf.prefixed_id = true;
    conf.id = PrefixedField(schema->name, schema->primary_key);
    conf.label.fixed = true;
    conf.label.value = schema->name;
    conf.properties = RemainingColumns(*schema, {schema->primary_key});
    conf.properties_specified = true;
    config.v_tables.push_back(std::move(conf));
  }

  for (const sql::TableSchema* schema : edge_tables) {
    // Every FK endpoint must map onto a selected vertex table.
    for (const sql::ForeignKey& fk : schema->foreign_keys) {
      if (!is_selected(fk.ref_table)) {
        return Status::NotFound(
            "AutoOverlay: " + schema->name + " references table " +
            fk.ref_table + " which is not among the selected tables");
      }
    }
    if (schema->has_primary_key()) {
      // One edge table per foreign key: this-row -> referenced-row.
      for (const sql::ForeignKey& fk : schema->foreign_keys) {
        EdgeTableConf conf;
        conf.table_name = schema->name;
        conf.implicit_edge_id = true;
        conf.src_v_table = schema->name;
        conf.src_v = PrefixedField(schema->name, schema->primary_key);
        conf.dst_v_table = fk.ref_table;
        const sql::TableSchema* ref = db.GetSchema(fk.ref_table);
        if (ref == nullptr || !ref->has_primary_key()) {
          return Status::InvalidArgument(
              "AutoOverlay: FK of " + schema->name + " references " +
              fk.ref_table + " which has no primary key");
        }
        conf.dst_v = PrefixedField(fk.ref_table, fk.columns);
        conf.label.fixed = true;
        conf.label.value = schema->name + "_" + fk.ref_table;
        conf.properties = RemainingColumns(
            *schema, {schema->primary_key, fk.columns});
        conf.properties_specified = true;
        config.e_tables.push_back(std::move(conf));
      }
    } else {
      // One edge table per pair of foreign keys (many-to-many).
      const auto& fks = schema->foreign_keys;
      for (size_t i = 0; i < fks.size(); ++i) {
        for (size_t j = i + 1; j < fks.size(); ++j) {
          EdgeTableConf conf;
          conf.table_name = schema->name;
          conf.implicit_edge_id = true;
          conf.src_v_table = fks[i].ref_table;
          conf.src_v = PrefixedField(fks[i].ref_table, fks[i].columns);
          conf.dst_v_table = fks[j].ref_table;
          conf.dst_v = PrefixedField(fks[j].ref_table, fks[j].columns);
          conf.label.fixed = true;
          conf.label.value = fks[i].ref_table + "_" + schema->name + "_" +
                             fks[j].ref_table;
          conf.properties =
              RemainingColumns(*schema, {fks[i].columns, fks[j].columns});
          conf.properties_specified = true;
          config.e_tables.push_back(std::move(conf));
        }
      }
    }
  }
  return config;
}

}  // namespace db2graph::overlay
