// Copyright (c) 2026 The db2graph-repro Authors.
//
// Graph overlay configuration (paper Section 5): the JSON document that
// maps a property graph's vertex set and edge set onto relational tables
// or views, with prefixed ids, fixed labels, implicit edge ids, and
// explicit property lists.

#ifndef DB2GRAPH_OVERLAY_CONFIG_H_
#define DB2GRAPH_OVERLAY_CONFIG_H_

#include <string>
#include <vector>

#include "common/json.h"
#include "common/status.h"

namespace db2graph::overlay {

/// An id / src_v / dst_v definition: a '::'-joined sequence of parts, each
/// a quoted string constant ('patient') or a table column (patientID),
/// e.g. "'patient'::patientID" or "'ontology'::sourceID::targetID".
struct FieldDef {
  struct Part {
    bool is_constant = false;
    std::string text;  // constant value or column name

    bool operator==(const Part& o) const {
      return is_constant == o.is_constant && text == o.text;
    }
  };
  std::vector<Part> parts;

  bool empty() const { return parts.empty(); }
  /// Column names referenced (non-constant parts, in order).
  std::vector<std::string> Columns() const;
  /// The leading constant, when the definition is prefixed ("" otherwise).
  std::string Prefix() const;
  bool SingleColumn() const {
    return parts.size() == 1 && !parts[0].is_constant;
  }

  /// Parses "'patient'::patientID" syntax.
  static Result<FieldDef> Parse(const std::string& text);
  std::string ToString() const;

  bool operator==(const FieldDef& o) const { return parts == o.parts; }
};

/// Label definition: a constant (fix_label) or a column.
struct LabelDef {
  bool fixed = false;
  std::string value;  // constant value, or column name
};

struct VertexTableConf {
  std::string table_name;
  bool prefixed_id = false;
  FieldDef id;
  LabelDef label;
  /// Property columns. When `properties_specified` is false, all columns
  /// not used by required fields become properties (paper Section 5).
  std::vector<std::string> properties;
  bool properties_specified = false;
};

struct EdgeTableConf {
  std::string table_name;
  std::string src_v_table;  // optional: the one vertex table sources live in
  std::string dst_v_table;
  FieldDef src_v;
  FieldDef dst_v;
  /// Edge id: explicit (possibly prefixed) or the implicit
  /// src_v::label::dst_v combination.
  bool implicit_edge_id = false;
  bool prefixed_edge_id = false;
  FieldDef id;
  LabelDef label;
  std::vector<std::string> properties;
  bool properties_specified = false;
};

/// A full overlay: the vertex-set and edge-set mappings.
struct OverlayConfig {
  std::vector<VertexTableConf> v_tables;
  std::vector<EdgeTableConf> e_tables;

  static Result<OverlayConfig> FromJson(const Json& json);
  static Result<OverlayConfig> Parse(const std::string& json_text);
  Json ToJson() const;
  std::string ToJsonText() const { return ToJson().Dump(); }
};

}  // namespace db2graph::overlay

#endif  // DB2GRAPH_OVERLAY_CONFIG_H_
