#include "overlay/config.h"

#include "common/strings.h"

namespace db2graph::overlay {

std::vector<std::string> FieldDef::Columns() const {
  std::vector<std::string> out;
  for (const Part& p : parts) {
    if (!p.is_constant) out.push_back(p.text);
  }
  return out;
}

std::string FieldDef::Prefix() const {
  if (!parts.empty() && parts[0].is_constant) return parts[0].text;
  return "";
}

Result<FieldDef> FieldDef::Parse(const std::string& text) {
  FieldDef def;
  for (const std::string& raw : Split(text, kIdSeparator)) {
    std::string part = Trim(raw);
    if (part.empty()) {
      return Status::InvalidArgument("overlay: empty id part in '" + text +
                                     "'");
    }
    Part p;
    if (part.front() == '\'') {
      if (part.size() < 2 || part.back() != '\'') {
        return Status::InvalidArgument(
            "overlay: unterminated constant in '" + text + "'");
      }
      p.is_constant = true;
      p.text = part.substr(1, part.size() - 2);
    } else {
      p.text = part;
    }
    def.parts.push_back(std::move(p));
  }
  if (def.parts.empty()) {
    return Status::InvalidArgument("overlay: empty field definition");
  }
  return def;
}

std::string FieldDef::ToString() const {
  std::vector<std::string> rendered;
  for (const Part& p : parts) {
    rendered.push_back(p.is_constant ? "'" + p.text + "'" : p.text);
  }
  return Join(rendered, kIdSeparator);
}

namespace {

Result<LabelDef> ParseLabel(const Json& table, bool fix_label) {
  LabelDef def;
  def.fixed = fix_label;
  std::string raw = table.GetString("label", "");
  if (raw.empty()) {
    return Status::InvalidArgument("overlay: table entry is missing 'label'");
  }
  if (raw.front() == '\'' && raw.size() >= 2 && raw.back() == '\'') {
    def.fixed = true;  // a quoted label is constant even without fix_label
    def.value = raw.substr(1, raw.size() - 2);
  } else if (fix_label) {
    def.value = raw;  // fix_label with unquoted constant
  } else {
    def.value = raw;  // column name
  }
  return def;
}

Status ParseProperties(const Json& table, std::vector<std::string>* props,
                       bool* specified) {
  const Json* list = table.Find("properties");
  if (list == nullptr) {
    *specified = false;
    return Status::OK();
  }
  if (!list->is_array()) {
    return Status::InvalidArgument("overlay: 'properties' must be an array");
  }
  *specified = true;
  for (const Json& item : list->items()) {
    if (!item.is_string()) {
      return Status::InvalidArgument(
          "overlay: 'properties' entries must be strings");
    }
    props->push_back(item.as_string());
  }
  return Status::OK();
}

}  // namespace

Result<OverlayConfig> OverlayConfig::FromJson(const Json& json) {
  if (!json.is_object()) {
    return Status::InvalidArgument("overlay: config must be a JSON object");
  }
  OverlayConfig config;
  const Json* v_tables = json.Find("v_tables");
  if (v_tables == nullptr || !v_tables->is_array() ||
      v_tables->items().empty()) {
    return Status::InvalidArgument(
        "overlay: config requires a non-empty 'v_tables' array");
  }
  for (const Json& entry : v_tables->items()) {
    VertexTableConf conf;
    conf.table_name = entry.GetString("table_name", "");
    if (conf.table_name.empty()) {
      return Status::InvalidArgument("overlay: v_table missing 'table_name'");
    }
    conf.prefixed_id = entry.GetBool("prefixed_id", false);
    std::string id_text = entry.GetString("id", "");
    if (id_text.empty()) {
      return Status::InvalidArgument("overlay: v_table " + conf.table_name +
                                     " missing 'id'");
    }
    Result<FieldDef> id = FieldDef::Parse(id_text);
    if (!id.ok()) return id.status();
    conf.id = std::move(*id);
    if (conf.prefixed_id && conf.id.Prefix().empty()) {
      return Status::InvalidArgument(
          "overlay: v_table " + conf.table_name +
          " sets prefixed_id but its id has no constant prefix");
    }
    Result<LabelDef> label =
        ParseLabel(entry, entry.GetBool("fix_label", false));
    if (!label.ok()) return label.status();
    conf.label = std::move(*label);
    DB2G_RETURN_NOT_OK(ParseProperties(entry, &conf.properties,
                                       &conf.properties_specified));
    config.v_tables.push_back(std::move(conf));
  }

  const Json* e_tables = json.Find("e_tables");
  if (e_tables != nullptr) {
    if (!e_tables->is_array()) {
      return Status::InvalidArgument("overlay: 'e_tables' must be an array");
    }
    for (const Json& entry : e_tables->items()) {
      EdgeTableConf conf;
      conf.table_name = entry.GetString("table_name", "");
      if (conf.table_name.empty()) {
        return Status::InvalidArgument(
            "overlay: e_table missing 'table_name'");
      }
      conf.src_v_table = entry.GetString("src_v_table", "");
      conf.dst_v_table = entry.GetString("dst_v_table", "");
      std::string src_text = entry.GetString("src_v", "");
      std::string dst_text = entry.GetString("dst_v", "");
      if (src_text.empty() || dst_text.empty()) {
        return Status::InvalidArgument("overlay: e_table " + conf.table_name +
                                       " needs 'src_v' and 'dst_v'");
      }
      Result<FieldDef> src = FieldDef::Parse(src_text);
      if (!src.ok()) return src.status();
      conf.src_v = std::move(*src);
      Result<FieldDef> dst = FieldDef::Parse(dst_text);
      if (!dst.ok()) return dst.status();
      conf.dst_v = std::move(*dst);

      conf.implicit_edge_id = entry.GetBool("implicit_edge_id", false);
      conf.prefixed_edge_id = entry.GetBool("prefixed_edge_id", false);
      std::string id_text = entry.GetString("id", "");
      if (conf.implicit_edge_id) {
        if (!id_text.empty()) {
          return Status::InvalidArgument(
              "overlay: e_table " + conf.table_name +
              " sets implicit_edge_id and an explicit 'id'");
        }
      } else {
        if (id_text.empty()) {
          return Status::InvalidArgument(
              "overlay: e_table " + conf.table_name +
              " needs either 'id' or implicit_edge_id");
        }
        Result<FieldDef> id = FieldDef::Parse(id_text);
        if (!id.ok()) return id.status();
        conf.id = std::move(*id);
        if (conf.prefixed_edge_id && conf.id.Prefix().empty()) {
          return Status::InvalidArgument(
              "overlay: e_table " + conf.table_name +
              " sets prefixed_edge_id but its id has no constant prefix");
        }
      }
      Result<LabelDef> label =
          ParseLabel(entry, entry.GetBool("fix_label", false));
      if (!label.ok()) return label.status();
      conf.label = std::move(*label);
      DB2G_RETURN_NOT_OK(ParseProperties(entry, &conf.properties,
                                         &conf.properties_specified));
      config.e_tables.push_back(std::move(conf));
    }
  }
  return config;
}

Result<OverlayConfig> OverlayConfig::Parse(const std::string& json_text) {
  Result<Json> json = Json::Parse(json_text);
  if (!json.ok()) return json.status();
  return FromJson(*json);
}

Json OverlayConfig::ToJson() const {
  Json root = Json::Object();
  Json v_tables = Json::Array();
  for (const VertexTableConf& conf : this->v_tables) {
    Json entry = Json::Object();
    entry.Set("table_name", Json::Str(conf.table_name));
    if (conf.prefixed_id) entry.Set("prefixed_id", Json::Bool(true));
    entry.Set("id", Json::Str(conf.id.ToString()));
    if (conf.label.fixed) entry.Set("fix_label", Json::Bool(true));
    entry.Set("label", Json::Str(conf.label.fixed ? "'" + conf.label.value +
                                                        "'"
                                                  : conf.label.value));
    if (conf.properties_specified) {
      Json props = Json::Array();
      for (const std::string& p : conf.properties) props.Append(Json::Str(p));
      entry.Set("properties", std::move(props));
    }
    v_tables.Append(std::move(entry));
  }
  root.Set("v_tables", std::move(v_tables));
  Json e_tables = Json::Array();
  for (const EdgeTableConf& conf : this->e_tables) {
    Json entry = Json::Object();
    entry.Set("table_name", Json::Str(conf.table_name));
    if (!conf.src_v_table.empty()) {
      entry.Set("src_v_table", Json::Str(conf.src_v_table));
    }
    entry.Set("src_v", Json::Str(conf.src_v.ToString()));
    if (!conf.dst_v_table.empty()) {
      entry.Set("dst_v_table", Json::Str(conf.dst_v_table));
    }
    entry.Set("dst_v", Json::Str(conf.dst_v.ToString()));
    if (conf.implicit_edge_id) {
      entry.Set("implicit_edge_id", Json::Bool(true));
    } else {
      if (conf.prefixed_edge_id) {
        entry.Set("prefixed_edge_id", Json::Bool(true));
      }
      entry.Set("id", Json::Str(conf.id.ToString()));
    }
    if (conf.label.fixed) entry.Set("fix_label", Json::Bool(true));
    entry.Set("label", Json::Str(conf.label.fixed ? "'" + conf.label.value +
                                                        "'"
                                                  : conf.label.value));
    if (conf.properties_specified) {
      Json props = Json::Array();
      for (const std::string& p : conf.properties) props.Append(Json::Str(p));
      entry.Set("properties", std::move(props));
    }
    e_tables.Append(std::move(entry));
  }
  root.Set("e_tables", std::move(e_tables));
  return root;
}

}  // namespace db2graph::overlay
