#include "overlay/topology.h"

#include <algorithm>

#include "common/strings.h"

namespace db2graph::overlay {

Value ResolvedField::Compose(const Row& row) const {
  if (def.SingleColumn()) {
    return row[column_indexes[0]];
  }
  std::string out;
  size_t col = 0;
  for (size_t i = 0; i < def.parts.size(); ++i) {
    if (i > 0) out += kIdSeparator;
    if (def.parts[i].is_constant) {
      out += def.parts[i].text;
    } else {
      out += row[column_indexes[col++]].ToString();
    }
  }
  return Value(std::move(out));
}

std::optional<std::vector<Value>> ResolvedField::Decompose(
    const Value& id) const {
  if (def.SingleColumn()) {
    return std::vector<Value>{id};
  }
  if (!id.is_string()) return std::nullopt;
  std::vector<std::string> parts = DecomposeId(id.as_string());
  if (parts.size() != def.parts.size()) return std::nullopt;
  std::vector<Value> out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (def.parts[i].is_constant) {
      if (parts[i] != def.parts[i].text) return std::nullopt;
    } else {
      // Column values round-trip through ToString; recover integers.
      const std::string& text = parts[i];
      char* end = nullptr;
      long long n = std::strtoll(text.c_str(), &end, 10);
      if (!text.empty() && end != nullptr && *end == '\0') {
        out.emplace_back(static_cast<int64_t>(n));
      } else {
        out.emplace_back(text);
      }
    }
  }
  return out;
}

bool ResolvedVertexTable::HasProperty(const std::string& name) const {
  for (const std::string& p : properties) {
    if (EqualsIgnoreCase(p, name)) return true;
  }
  return false;
}

bool ResolvedEdgeTable::HasProperty(const std::string& name) const {
  for (const std::string& p : properties) {
    if (EqualsIgnoreCase(p, name)) return true;
  }
  return false;
}

namespace {

Status ResolveField(const sql::TableSchema& schema, const FieldDef& def,
                    const std::string& context, ResolvedField* out) {
  out->def = def;
  out->column_indexes.clear();
  for (const std::string& column : def.Columns()) {
    std::optional<size_t> idx = schema.ColumnIndex(column);
    if (!idx) {
      return Status::NotFound("overlay: " + context + " references column " +
                              column + " absent from " + schema.name);
    }
    out->column_indexes.push_back(*idx);
  }
  if (out->column_indexes.empty()) {
    return Status::InvalidArgument("overlay: " + context +
                                   " must reference at least one column");
  }
  return Status::OK();
}

// Property resolution shared by vertex and edge tables: explicit list, or
// "all columns except the ones used for required fields".
Status ResolveProperties(const sql::TableSchema& schema,
                         const std::vector<std::string>& explicit_props,
                         bool specified,
                         const std::vector<size_t>& required_columns,
                         std::vector<std::string>* names,
                         std::vector<size_t>* indexes) {
  if (specified) {
    for (const std::string& p : explicit_props) {
      std::optional<size_t> idx = schema.ColumnIndex(p);
      if (!idx) {
        return Status::NotFound("overlay: property column " + p +
                                " absent from " + schema.name);
      }
      names->push_back(schema.columns[*idx].name);
      indexes->push_back(*idx);
    }
    return Status::OK();
  }
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    if (std::find(required_columns.begin(), required_columns.end(), i) !=
        required_columns.end()) {
      continue;
    }
    names->push_back(schema.columns[i].name);
    indexes->push_back(i);
  }
  return Status::OK();
}

}  // namespace

Result<Topology> Topology::Build(const sql::Database& db,
                                 const OverlayConfig& config) {
  Topology topo;
  topo.config_ = config;

  for (const VertexTableConf& conf : config.v_tables) {
    ResolvedVertexTable table;
    table.conf = conf;
    table.schema = db.GetSchema(conf.table_name);
    if (table.schema == nullptr) {
      return Status::NotFound("overlay: no table or view named " +
                              conf.table_name);
    }
    DB2G_RETURN_NOT_OK(ResolveField(*table.schema, conf.id,
                                    "v_table " + conf.table_name + " id",
                                    &table.id));
    std::vector<size_t> required = table.id.column_indexes;
    if (!conf.label.fixed) {
      std::optional<size_t> idx = table.schema->ColumnIndex(conf.label.value);
      if (!idx) {
        return Status::NotFound("overlay: label column " + conf.label.value +
                                " absent from " + conf.table_name);
      }
      table.label_column = *idx;
      required.push_back(*idx);
    }
    DB2G_RETURN_NOT_OK(ResolveProperties(
        *table.schema, conf.properties, conf.properties_specified, required,
        &table.properties, &table.property_columns));
    topo.vertex_tables_.push_back(std::move(table));
  }

  for (const EdgeTableConf& conf : config.e_tables) {
    ResolvedEdgeTable table;
    table.conf = conf;
    table.schema = db.GetSchema(conf.table_name);
    if (table.schema == nullptr) {
      return Status::NotFound("overlay: no table or view named " +
                              conf.table_name);
    }
    std::string context = "e_table " + conf.table_name;
    DB2G_RETURN_NOT_OK(ResolveField(*table.schema, conf.src_v,
                                    context + " src_v", &table.src_v));
    DB2G_RETURN_NOT_OK(ResolveField(*table.schema, conf.dst_v,
                                    context + " dst_v", &table.dst_v));
    std::vector<size_t> required = table.src_v.column_indexes;
    required.insert(required.end(), table.dst_v.column_indexes.begin(),
                    table.dst_v.column_indexes.end());
    if (!conf.implicit_edge_id) {
      DB2G_RETURN_NOT_OK(ResolveField(*table.schema, conf.id,
                                      context + " id", &table.id));
      required.insert(required.end(), table.id.column_indexes.begin(),
                      table.id.column_indexes.end());
    }
    if (!conf.label.fixed) {
      std::optional<size_t> idx = table.schema->ColumnIndex(conf.label.value);
      if (!idx) {
        return Status::NotFound("overlay: label column " + conf.label.value +
                                " absent from " + conf.table_name);
      }
      table.label_column = *idx;
      required.push_back(*idx);
    }
    DB2G_RETURN_NOT_OK(ResolveProperties(
        *table.schema, conf.properties, conf.properties_specified, required,
        &table.properties, &table.property_columns));

    // Bind and validate the declared endpoint vertex tables: the endpoint
    // definition must match the vertex table's id definition structurally
    // (same constants, same column count) — paper Section 5.
    auto bind_endpoint = [&](const std::string& vertex_table,
                             const ResolvedField& endpoint,
                             const char* which) -> Result<int> {
      if (vertex_table.empty()) return -1;
      int idx = topo.FindVertexTable(vertex_table);
      if (idx < 0) {
        return Status::NotFound("overlay: " + context + " " + which +
                                "_v_table " + vertex_table +
                                " is not a declared v_table");
      }
      const ResolvedVertexTable& vt = topo.vertex_tables_[idx];
      const FieldDef& vid = vt.conf.id;
      const FieldDef& eid = endpoint.def;
      bool matches = vid.parts.size() == eid.parts.size();
      if (matches) {
        for (size_t i = 0; i < vid.parts.size(); ++i) {
          if (vid.parts[i].is_constant != eid.parts[i].is_constant) {
            matches = false;
            break;
          }
          if (vid.parts[i].is_constant &&
              vid.parts[i].text != eid.parts[i].text) {
            matches = false;
            break;
          }
        }
      }
      if (!matches) {
        return Status::InvalidArgument(
            "overlay: " + context + " " + which + "_v definition '" +
            eid.ToString() + "' does not match the id definition '" +
            vid.ToString() + "' of v_table " + vertex_table);
      }
      return idx;
    };
    Result<int> src_idx =
        bind_endpoint(conf.src_v_table, table.src_v, "src");
    if (!src_idx.ok()) return src_idx.status();
    table.src_vertex_table = *src_idx;
    Result<int> dst_idx =
        bind_endpoint(conf.dst_v_table, table.dst_v, "dst");
    if (!dst_idx.ok()) return dst_idx.status();
    table.dst_vertex_table = *dst_idx;

    topo.edge_tables_.push_back(std::move(table));
  }
  return topo;
}

int Topology::FindVertexTable(const std::string& table_name) const {
  for (size_t i = 0; i < vertex_tables_.size(); ++i) {
    if (EqualsIgnoreCase(vertex_tables_[i].conf.table_name, table_name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int Topology::FindEdgeTable(const std::string& table_name) const {
  for (size_t i = 0; i < edge_tables_.size(); ++i) {
    if (EqualsIgnoreCase(edge_tables_[i].conf.table_name, table_name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace db2graph::overlay
