// Copyright (c) 2026 The db2graph-repro Authors.
//
// The Topology module (paper Fig. 3): resolves an overlay configuration
// against the database catalog and answers the questions the runtime
// optimizations of Section 6.3 ask — which table(s) can contain elements
// with a given label, a given property, or a given (prefixed) id, and
// whether an edge table's endpoints are pinned to one vertex table.

#ifndef DB2GRAPH_OVERLAY_TOPOLOGY_H_
#define DB2GRAPH_OVERLAY_TOPOLOGY_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "overlay/config.h"
#include "sql/database.h"

namespace db2graph::overlay {

/// One resolved field definition: constant parts pass through, column parts
/// are bound to column indexes of the table/view schema.
struct ResolvedField {
  FieldDef def;
  std::vector<size_t> column_indexes;  // parallel to def.Columns()

  /// Composes the field value from a row. Single plain column → the raw
  /// value (preserving its type); otherwise a '::'-joined string.
  Value Compose(const Row& row) const;

  /// Decomposes an id value against this definition: validates constant
  /// parts, extracts one value per column part. Returns nullopt when the
  /// id cannot belong to this definition (wrong prefix / arity).
  std::optional<std::vector<Value>> Decompose(const Value& id) const;
};

struct ResolvedVertexTable {
  VertexTableConf conf;
  const sql::TableSchema* schema = nullptr;
  ResolvedField id;
  std::optional<size_t> label_column;  // set when label comes from a column
  std::vector<std::string> properties;        // final property names
  std::vector<size_t> property_columns;       // parallel indexes

  bool HasProperty(const std::string& name) const;
};

struct ResolvedEdgeTable {
  EdgeTableConf conf;
  const sql::TableSchema* schema = nullptr;
  ResolvedField src_v;
  ResolvedField dst_v;
  ResolvedField id;  // explicit ids only (empty def when implicit)
  std::optional<size_t> label_column;
  std::vector<std::string> properties;
  std::vector<size_t> property_columns;
  /// Index into Topology::vertex_tables() when src_v_table/dst_v_table is
  /// declared; -1 otherwise.
  int src_vertex_table = -1;
  int dst_vertex_table = -1;

  bool HasProperty(const std::string& name) const;
};

/// Resolved overlay mapping. Immutable once built; safe to share across
/// query threads.
class Topology {
 public:
  /// Resolves `config` against the catalog: every table/view must exist
  /// and every referenced column must resolve. When src_v_table or
  /// dst_v_table is declared, its id definition must structurally match
  /// the edge endpoint definition (paper Section 5).
  static Result<Topology> Build(const sql::Database& db,
                                const OverlayConfig& config);

  const std::vector<ResolvedVertexTable>& vertex_tables() const {
    return vertex_tables_;
  }
  const std::vector<ResolvedEdgeTable>& edge_tables() const {
    return edge_tables_;
  }

  /// Vertex table by name; -1 when absent.
  int FindVertexTable(const std::string& table_name) const;
  int FindEdgeTable(const std::string& table_name) const;

  const OverlayConfig& config() const { return config_; }

 private:
  OverlayConfig config_;
  std::vector<ResolvedVertexTable> vertex_tables_;
  std::vector<ResolvedEdgeTable> edge_tables_;
};

}  // namespace db2graph::overlay

#endif  // DB2GRAPH_OVERLAY_TOPOLOGY_H_
