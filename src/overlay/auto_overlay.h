// Copyright (c) 2026 The db2graph-repro Authors.
//
// The AutoOverlay toolkit (paper Section 5.1, Algorithms 1 and 2):
// derives an overlay configuration from the catalog's primary-key and
// foreign-key constraints. Any table with a primary key becomes a vertex
// table; a table with a primary key and foreign keys additionally becomes
// one edge table per foreign key; a table with k >= 2 foreign keys and no
// primary key becomes one edge table per pair of foreign keys.

#ifndef DB2GRAPH_OVERLAY_AUTO_OVERLAY_H_
#define DB2GRAPH_OVERLAY_AUTO_OVERLAY_H_

#include <string>
#include <vector>

#include "overlay/config.h"
#include "sql/database.h"

namespace db2graph::overlay {

/// Generates an overlay for the listed tables (all base tables when
/// `tables` is empty). Fails when a referenced table lacks the metadata
/// the algorithms need (e.g. an FK referencing a non-selected table).
Result<OverlayConfig> AutoOverlay(const sql::Database& db,
                                  const std::vector<std::string>& tables = {});

}  // namespace db2graph::overlay

#endif  // DB2GRAPH_OVERLAY_AUTO_OVERLAY_H_
