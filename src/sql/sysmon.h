// Copyright (c) 2026 The db2graph-repro Authors.
//
// The SYSMON monitoring catalog: read-only virtual tables exposing the
// engine's own observability state through plain SQL (the scaled-down
// counterpart of Db2's SYSIBMADM / MON_GET_* monitoring views). Each
// table materializes a point-in-time snapshot at scan time:
//
//   sysmon.query_log    recent executions from the process QueryLog ring
//   sysmon.metrics      every counter/gauge/histogram in the global
//                       MetricsRegistry
//   sysmon.slow_queries the SlowQueryLog ring (threshold-crossing queries)
//   sysmon.column_stats live per-column statistics of every base table
//
// Because they are ordinary catalog relations, they compose with the rest
// of the engine: joins, WHERE, aggregation, the vectorized path, the graph
// overlay, and Gremlin's graphQuery() all work unchanged. The core layer
// additionally registers sysmon.plan_cache (it owns the PlanCache).

#ifndef DB2GRAPH_SQL_SYSMON_H_
#define DB2GRAPH_SQL_SYSMON_H_

namespace db2graph::sql {

class Database;

/// Registers the SQL-layer SYSMON virtual tables on `db`. Idempotent
/// (re-registration replaces the definitions). Called by the Database
/// constructor, so every database exposes the catalog out of the box.
void RegisterSysmonTables(Database* db);

}  // namespace db2graph::sql

#endif  // DB2GRAPH_SQL_SYSMON_H_
