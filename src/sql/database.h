// Copyright (c) 2026 The db2graph-repro Authors.
//
// The MiniDb2 facade: catalog of tables, views, indexes and registered
// polymorphic table functions; statement execution; prepared statements;
// and multi-statement transactions with an undo log.
//
// Concurrency model mirrors what the paper leans on ("the underlying Db2
// engine is extremely good at handling concurrent queries"): reads take a
// shared lock, writes take an exclusive lock, so concurrent SELECT-heavy
// workloads scale with cores.

#ifndef DB2GRAPH_SQL_DATABASE_H_
#define DB2GRAPH_SQL_DATABASE_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/exec_config.h"
#include "common/metrics.h"
#include "common/status.h"
#include "sql/ast.h"
#include "sql/result_set.h"
#include "sql/row_source.h"
#include "sql/table.h"
#include "sql/virtual_table.h"

namespace db2graph::sql {

/// Cumulative execution counters, used by tests to assert that the graph
/// layer's optimizations actually change the access paths. Readers should
/// take a Snapshot() rather than load the live atomics field by field —
/// a snapshot is one coherent point-in-time view for assertions and
/// reporting, while field-by-field loads can interleave with concurrent
/// statements.
struct ExecStats {
  metrics::Counter selects;
  metrics::Counter rows_scanned;    // rows examined by scans/probes
  metrics::Counter index_probes;    // index point/IN lookups
  metrics::Counter range_scans;     // ordered-index range lookups
  metrics::Counter full_scans;      // table scans
  metrics::Counter rows_returned;
  metrics::Counter writes;          // write-path statements executed

  /// Plain-value copy of every counter.
  struct Counts {
    uint64_t selects = 0;
    uint64_t rows_scanned = 0;
    uint64_t index_probes = 0;
    uint64_t range_scans = 0;
    uint64_t full_scans = 0;
    uint64_t rows_returned = 0;
    uint64_t writes = 0;
  };

  Counts Snapshot() const {
    Counts c;
    c.selects = selects.load();
    c.rows_scanned = rows_scanned.load();
    c.index_probes = index_probes.load();
    c.range_scans = range_scans.load();
    c.full_scans = full_scans.load();
    c.rows_returned = rows_returned.load();
    c.writes = writes.load();
    return c;
  }

  void Reset() {
    selects = 0;
    rows_scanned = 0;
    index_probes = 0;
    range_scans = 0;
    full_scans = 0;
    rows_returned = 0;
    writes = 0;
  }
};

class Database;

/// A live streaming SELECT: pull blocks with Next() until exhaustion, then
/// check status(). The stream holds the database's shared (read) lock and
/// the compiled plan for its whole lifetime, so:
///  - consume and Close() it on the thread that created it;
///  - do not issue write statements on that thread while it is open (the
///    reentrant read lock would self-deadlock behind the writer);
///  - Close() (or destruction) releases the plan and the lock eagerly —
///    that is the early-termination signal that cancels pending work.
class RowStream : public RowSource {
 public:
  ~RowStream() override;
  RowStream(RowStream&&) = delete;
  RowStream& operator=(RowStream&&) = delete;

  const std::vector<std::string>& columns() const { return columns_; }

  bool Next(RowBlock* out) override;
  void Close() override;

  /// OK unless execution failed mid-stream.
  const Status& status() const { return status_; }
  /// Access-path counters so far (complete after exhaustion or Close()).
  const ExecInfo& exec() const { return exec_; }

 private:
  friend class Database;
  struct Impl;
  explicit RowStream(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
  std::vector<std::string> columns_;
  Status status_ = Status::OK();
  ExecInfo exec_;
};

/// A parsed statement bound to a database, executable repeatedly with
/// different '?' parameter vectors. This is what the SQL Dialect module's
/// pre-compiled template cache hands out.
class PreparedStatement {
 public:
  PreparedStatement(Database* db, std::shared_ptr<Statement> stmt,
                    int param_count)
      : db_(db), stmt_(std::move(stmt)), param_count_(param_count) {}

  int param_count() const { return param_count_; }

  Result<ResultSet> Execute(const std::vector<Value>& params) const;

  /// Streaming variant (SELECT statements only).
  Result<std::unique_ptr<RowStream>> ExecuteStreaming(
      const std::vector<Value>& params,
      size_t block_rows = kDefaultBlockRows) const;

 private:
  Database* db_;
  std::shared_ptr<Statement> stmt_;
  int param_count_;
};

/// An in-memory relational database with SQL front end.
class Database {
 public:
  Database();
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Parses and executes one statement.
  Result<ResultSet> Execute(const std::string& sql);

  /// Executes a ';'-separated script of statements, discarding results.
  Status ExecuteScript(const std::string& script);

  /// Parses once; execute many times with parameters.
  Result<PreparedStatement> Prepare(const std::string& sql);

  /// Executes an already-parsed statement with parameters.
  Result<ResultSet> ExecuteStatement(const Statement& stmt,
                                     const std::vector<Value>& params);

  /// Parses and compiles one SELECT into a pull-based block stream instead
  /// of materializing the result. See RowStream for lifetime rules.
  Result<std::unique_ptr<RowStream>> ExecuteStreaming(
      const std::string& sql, size_t block_rows = kDefaultBlockRows);

  /// Streaming execution of an already-parsed SELECT. The shared_ptr keeps
  /// the AST alive for the stream's lifetime; params are copied in.
  Result<std::unique_ptr<RowStream>> ExecuteStatementStreaming(
      std::shared_ptr<Statement> stmt, const std::vector<Value>& params,
      size_t block_rows = kDefaultBlockRows);

  // -- catalog ----------------------------------------------------------
  /// Names of base tables (not views).
  std::vector<std::string> TableNames() const;
  /// Names of views.
  std::vector<std::string> ViewNames() const;
  /// Schema of a base table or a view (views expose derived columns, an
  /// empty primary key, and no foreign keys). nullptr when absent.
  const TableSchema* GetSchema(const std::string& name) const;
  bool HasRelation(const std::string& name) const;
  bool IsView(const std::string& name) const;
  /// Base table access (nullptr for views/absent). The pointer stays valid
  /// until the table is dropped.
  Table* GetTable(const std::string& name);
  const Table* GetTable(const std::string& name) const;

  // -- table functions ---------------------------------------------------
  using TableFunction =
      std::function<Result<ResultSet>(const std::vector<Value>& args)>;
  /// Registers TABLE(name(...)) for use in FROM clauses (this is the seam
  /// the paper's graphQuery polymorphic table function plugs into).
  void RegisterTableFunction(const std::string& name, TableFunction fn);
  const TableFunction* FindTableFunction(const std::string& name) const;

  // -- virtual tables -----------------------------------------------------
  /// Registers a read-only virtual table (the sysmon.* monitoring catalog
  /// plugs in here). def.schema.name is the full catalog name, typically
  /// schema-qualified ("sysmon.query_log"); a scan materializes a fresh
  /// snapshot through def.fill and runs it through the ordinary operators.
  /// Re-registering a name replaces the definition.
  void RegisterVirtualTable(VirtualTableDef def);
  /// nullptr when absent; the pointer stays valid until re-registration.
  const VirtualTableDef* FindVirtualTable(const std::string& name) const;
  std::vector<std::string> VirtualTableNames() const;

  // -- bookkeeping --------------------------------------------------------
  /// Approximate in-memory bytes across all tables and indexes.
  size_t ApproxBytes() const;
  /// Approximate compact on-disk bytes (see Table::ApproxDiskBytes).
  size_t ApproxDiskBytes() const;
  ExecStats& stats() { return stats_; }
  const ExecStats& stats() const { return stats_; }

  // -- execution configuration --------------------------------------------
  /// The session layer of the ExecConfig resolution chain: fields the
  /// session config leaves unset fall through to ExecConfig::ProcessDefault()
  /// and from there to the engine defaults; a thread-local per-query
  /// override (ScopedExecConfig) wins over both. Replaces the old
  /// set_vectorized_execution / set_profile_execution toggles and adds
  /// .parallelism(n) for morsel-driven scans, sharded hash-join builds,
  /// and parallel sort drains.
  void SetExecConfig(const ExecConfig& config);
  ExecConfig exec_config() const;
  /// The effective config for a statement starting now on this thread:
  /// process defaults <- session config <- ExecConfig::Current().
  ExecConfig ResolveExecConfig() const;

  [[deprecated(
      "use SetExecConfig(exec_config().vectorized(on)) — ExecConfig is the "
      "single execution-tuning surface")]]
  void set_vectorized_execution(bool on) {
    SetExecConfig(exec_config().vectorized(on));
  }
  /// Resolved vectorized-execution state of the session layer (kept for
  /// monitoring readers; the executor resolves per-query instead).
  bool vectorized_execution() const {
    return vectorized_execution_.load(std::memory_order_relaxed);
  }

  [[deprecated(
      "use SetExecConfig(exec_config().profile(on)) — ExecConfig is the "
      "single execution-tuning surface")]]
  void set_profile_execution(bool on) {
    SetExecConfig(exec_config().profile(on));
  }
  bool profile_execution() const {
    return profile_execution_.load(std::memory_order_relaxed);
  }

  /// True while a BEGIN..COMMIT/ROLLBACK transaction is open.
  bool InTransaction() const { return in_transaction_; }

  /// Monotonic counter bumped by every DDL statement (CREATE/DROP of
  /// tables, views, and indexes). Lets overlay holders detect that their
  /// mapping may be stale — the paper's planned AutoOverlay-catalog
  /// integration (Section 5.1).
  uint64_t ddl_version() const {
    return ddl_version_.load(std::memory_order_acquire);
  }

  /// Monotonic counter bumped (under the exclusive lock) by every
  /// write-path statement: INSERT/UPDATE/DELETE, DDL, and transaction
  /// control. Caches above the SQL layer (the graph layer's hot-vertex
  /// cache) tag entries with the epoch observed before their read and
  /// lazily discard entries whose epoch no longer matches — any committed
  /// write therefore invalidates them without a cross-layer callback.
  uint64_t write_epoch() const {
    return write_epoch_.load(std::memory_order_acquire);
  }

  /// Sum of Table::stats_version() over all base tables: a cheap,
  /// monotonically non-decreasing fingerprint of the catalog statistics.
  /// Plans whose shape depended on statistics (the graph layer's multi-hop
  /// collapse) record the epoch they were compiled under and recompile
  /// when drift exceeds their threshold.
  uint64_t stats_epoch() const;

  /// Point-in-time statistics snapshot of one base table: live row count
  /// plus per-column stats (null counts, min/max, NDV), taken under the
  /// shared lock (re-entrant if the caller already holds it). Returns
  /// false when the table is absent or is a view.
  struct TableStats {
    uint64_t row_count = 0;
    std::vector<Table::ColumnStats> columns;
  };
  bool SnapshotTableStats(const std::string& name, TableStats* out) const;

  /// True when the calling thread currently holds this database's shared
  /// (read) lock — i.e. we are inside a SELECT, e.g. evaluating a
  /// graphQuery table function. Used by the graph layer to suppress
  /// intra-query fan-out: handing sub-reads to other threads while this
  /// thread pins the shared lock could deadlock behind a queued writer.
  bool ReadLockHeldByThisThread() const;

  // -- access control ------------------------------------------------------
  // Off by default (every statement runs unchecked). Once enabled, SELECT
  // requires a SELECT grant on every referenced relation and DML requires
  // an ALL grant; views run with definer's rights (a grant on the view
  // suffices — the expansion does not re-check the underlying tables).
  // This is the mechanism graph queries inherit "for free": an overlay
  // over tables the current user cannot read fails exactly like the SQL
  // would (paper Section 1).
  void EnableAccessControl() { access_control_ = true; }
  bool access_control_enabled() const { return access_control_; }
  /// Sets the user for subsequent statements ("" = superuser).
  void SetCurrentUser(std::string user);
  const std::string& current_user() const { return current_user_; }
  /// Programmatic grant API (SQL GRANT/REVOKE routes here).
  void Grant(const std::string& user, const std::string& relation,
             bool select_only);
  void Revoke(const std::string& user, const std::string& relation);
  /// OK when access control is off, the user is the superuser, or a
  /// sufficient grant exists.
  Status CheckAccess(const std::string& relation, bool write) const;

 private:
  friend class Executor;
  friend class PreparedStatement;

  struct ViewDef {
    std::shared_ptr<SelectStmt> select;
    std::string select_text;
    TableSchema derived_schema;  // name + derived output columns
  };

  // Undo-log entry for transaction rollback.
  struct UndoRecord {
    enum class Kind { kInsert, kDelete, kUpdate };
    Kind kind;
    std::string table;
    RowId rid;
    Row before;  // kDelete / kUpdate
  };

  Result<ResultSet> ExecuteLocked(const Statement& stmt,
                                  const std::vector<Value>& params);
  Result<ResultSet> ExecuteCreateTable(const CreateTableStmt& stmt);
  Result<ResultSet> ExecuteCreateIndex(const CreateIndexStmt& stmt);
  Result<ResultSet> ExecuteCreateView(const CreateViewStmt& stmt);
  Result<ResultSet> ExecuteDropTable(const DropTableStmt& stmt);
  Result<ResultSet> ExecuteInsert(const InsertStmt& stmt,
                                  const std::vector<Value>& params);
  Result<ResultSet> ExecuteUpdate(const UpdateStmt& stmt,
                                  const std::vector<Value>& params);
  Result<ResultSet> ExecuteDelete(const DeleteStmt& stmt,
                                  const std::vector<Value>& params);
  Status CheckForeignKeysOnInsert(const Table& table, const Row& row);

  void LogUndo(UndoRecord record);
  void RollbackLocked();

  mutable std::shared_mutex mutex_;
  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, ViewDef> views_;
  std::unordered_map<std::string, TableFunction> table_functions_;
  std::unordered_map<std::string, VirtualTableDef> virtual_tables_;
  bool in_transaction_ = false;
  std::vector<UndoRecord> undo_log_;
  ExecStats stats_;

  std::atomic<uint64_t> ddl_version_{0};
  std::atomic<uint64_t> write_epoch_{0};
  /// Session-layer ExecConfig plus lock-free mirrors of its resolved
  /// vectorized/profile fields for monitoring readers.
  mutable std::mutex exec_config_mutex_;
  ExecConfig session_exec_config_;
  std::atomic<bool> vectorized_execution_{true};
  std::atomic<bool> profile_execution_{false};
  bool access_control_ = false;
  std::string current_user_;  // "" = superuser
  struct Privilege {
    bool select = false;
    bool modify = false;
  };
  // (user, relation) -> privilege
  std::map<std::pair<std::string, std::string>, Privilege> grants_;
};

/// Case-normalized catalog key.
std::string CatalogKey(const std::string& name);

}  // namespace db2graph::sql

#endif  // DB2GRAPH_SQL_DATABASE_H_
