// Copyright (c) 2026 The db2graph-repro Authors.
//
// SQL tokenizer. Keywords are recognized case-insensitively; identifiers
// may be double-quoted to preserve case.

#ifndef DB2GRAPH_SQL_LEXER_H_
#define DB2GRAPH_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace db2graph::sql {

enum class TokenType {
  kIdentifier,
  kNumber,
  kString,
  kOperator,   // = <> != < <= > >= + - * / % || . , ( ) ? ;
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifier (original case) / operator spelling
  Value value;        // kNumber / kString literal value
  size_t offset = 0;  // byte offset in the source, for error messages
};

/// Tokenizes `sql`; fails on unterminated strings or stray characters.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace db2graph::sql

#endif  // DB2GRAPH_SQL_LEXER_H_
