#include "sql/schema.h"

#include "common/strings.h"

namespace db2graph::sql {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kBool:
      return "BOOLEAN";
    case ColumnType::kInt:
      return "BIGINT";
    case ColumnType::kDouble:
      return "DOUBLE";
    case ColumnType::kString:
      return "VARCHAR";
  }
  return "?";
}

ValueType ColumnValueType(ColumnType t) {
  switch (t) {
    case ColumnType::kBool:
      return ValueType::kBool;
    case ColumnType::kInt:
      return ValueType::kInt;
    case ColumnType::kDouble:
      return ValueType::kDouble;
    case ColumnType::kString:
      return ValueType::kString;
  }
  return ValueType::kNull;
}

std::optional<size_t> TableSchema::ColumnIndex(
    const std::string& column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i].name, column)) return i;
  }
  return std::nullopt;
}

std::vector<std::string> TableSchema::ColumnNames() const {
  std::vector<std::string> names;
  names.reserve(columns.size());
  for (const ColumnDef& c : columns) names.push_back(c.name);
  return names;
}

}  // namespace db2graph::sql
