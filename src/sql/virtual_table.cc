#include "sql/virtual_table.h"

namespace db2graph::sql {

Result<std::shared_ptr<Table>> MaterializeVirtualTable(
    const VirtualTableDef& def) {
  auto table = std::make_shared<Table>(def.schema);
  if (def.fill) {
    DB2G_RETURN_NOT_OK(def.fill(table.get()));
  }
  return table;
}

}  // namespace db2graph::sql
