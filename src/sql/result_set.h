// Copyright (c) 2026 The db2graph-repro Authors.

#ifndef DB2GRAPH_SQL_RESULT_SET_H_
#define DB2GRAPH_SQL_RESULT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace db2graph::sql {

/// A fully materialized query result.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  /// Rows affected, for DML statements (rows empty then).
  int64_t affected = 0;

  /// Index of a named output column (case-insensitive); -1 when absent.
  int ColumnIndex(const std::string& name) const;

  /// Pretty-prints an ASCII table (examples and debugging).
  std::string ToString(size_t max_rows = 50) const;
};

}  // namespace db2graph::sql

#endif  // DB2GRAPH_SQL_RESULT_SET_H_
