// Copyright (c) 2026 The db2graph-repro Authors.

#ifndef DB2GRAPH_SQL_RESULT_SET_H_
#define DB2GRAPH_SQL_RESULT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace db2graph::sql {

/// Runtime profile of one operator in a SELECT plan, collected when the
/// statement runs under EXPLAIN ANALYZE (or database-wide profiling).
/// Profiles are stored leaf-first, mirroring the bottom-up construction
/// of the linear operator chain; RenderPlanTree() prints the root on top.
struct OpProfile {
  std::string name;    // operator kind ("Seed", "Filter", "ColumnScan", ...)
  std::string detail;  // operator-specific annotation (table, predicate...)
  uint64_t blocks = 0;   // blocks the operator produced
  uint64_t rows_in = 0;  // rows pulled from the operator below (0 at leaf)
  uint64_t rows_out = 0;
  uint64_t micros = 0;  // inclusive: covers this operator and everything below
};

/// Renders a leaf-first operator chain as an indented tree, root on top.
/// With `analyzed` true each line carries actual blocks/rows/micros;
/// otherwise only the operator names and details are shown (plain EXPLAIN).
std::string RenderPlanTree(const std::vector<OpProfile>& ops, bool analyzed);

/// Per-statement access-path attribution, filled by the executor for
/// SELECTs. Unlike the database-wide ExecStats atomics, these belong to
/// exactly one statement, so a traced query can attribute its own access
/// paths without racing against concurrent statements.
struct ExecInfo {
  uint64_t index_probes = 0;
  uint64_t range_scans = 0;
  uint64_t full_scans = 0;
  /// Rows actually pulled from base tables / materialized relations.
  /// Counted per row visited, so a LIMIT that short-circuits a scan is
  /// reflected here (not the table's total row count).
  uint64_t rows_scanned = 0;
  /// Rows the statement emitted to its consumer.
  uint64_t rows_emitted = 0;

  /// Vectorized/scalar operator attribution. Operators register at plan
  /// construction: column-at-a-time operators (scan, filter kernels,
  /// column projection/aggregation, the row-materialization adapter)
  /// count as vectorized; the classic row-at-a-time operators (join
  /// stages, filter, projection, aggregation) count as scalar. Distinct
  /// and limit are mode-neutral.
  uint64_t vectorized_ops = 0;
  uint64_t scalar_ops = 0;
  /// Rows that flowed through vector kernels.
  uint64_t vectorized_rows = 0;
  /// Rows a vectorized filter had to materialize and hand to the scalar
  /// expression evaluator (predicate shapes without kernels).
  uint64_t scalar_fallback_rows = 0;

  /// Intra-query parallelism attribution: the degree of parallelism the
  /// statement resolved (ExecConfig), and the number of morsels — slot
  /// ranges or build partitions — actually dispatched to pool workers.
  /// A serial plan reports dop 1 / morsels 0 even when the config asked
  /// for more (e.g. no operator in the plan was eligible).
  uint64_t dop = 1;
  uint64_t morsels = 0;

  /// Per-operator runtime profiles (leaf-first), populated only when the
  /// statement ran under EXPLAIN ANALYZE or with ExecConfig profiling.
  std::vector<OpProfile> op_profiles;

  /// Dominant access path label: "index", "range", "scan", "mixed", or
  /// "none" (no table touched, e.g. SELECT over a materialized relation).
  const char* AccessPath() const;

  /// Execution-mode label: "vectorized", "scalar", "mixed" (both kinds of
  /// operators in one plan), or "none" (no attributed operators).
  const char* ExecMode() const;
};

/// A fully materialized query result.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  /// Access paths this statement's execution chose.
  ExecInfo exec;

  /// Rows affected, for DML statements (rows empty then).
  int64_t affected = 0;

  /// Index of a named output column (case-insensitive); -1 when absent.
  int ColumnIndex(const std::string& name) const;

  /// Pretty-prints an ASCII table (examples and debugging).
  std::string ToString(size_t max_rows = 50) const;
};

}  // namespace db2graph::sql

#endif  // DB2GRAPH_SQL_RESULT_SET_H_
