// Copyright (c) 2026 The db2graph-repro Authors.
//
// Read-only virtual tables: catalog entries whose rows are materialized
// on demand from a snapshot callback instead of stored pages. This is the
// mechanism behind the sysmon.* monitoring catalog (Db2's MON_GET_* table
// functions, recast as plain relations): a scan of sysmon.query_log
// materializes a point-in-time Table from the process-wide query log and
// runs it through the ordinary scan/filter/project operators — row or
// vectorized — so monitoring data composes with joins, aggregation, the
// graph overlay, everything a base table supports.

#ifndef DB2GRAPH_SQL_VIRTUAL_TABLE_H_
#define DB2GRAPH_SQL_VIRTUAL_TABLE_H_

#include <functional>
#include <memory>

#include "common/status.h"
#include "sql/schema.h"
#include "sql/table.h"

namespace db2graph::sql {

/// Definition of one virtual table. `schema.name` is the full catalog
/// name (conventionally schema-qualified, e.g. "sysmon.query_log"); the
/// fill callback appends the current snapshot's rows to an empty Table
/// built from that schema.
struct VirtualTableDef {
  TableSchema schema;
  /// Appends the snapshot rows. Called under the database's shared (read)
  /// lock, so the callback must not execute statements against the same
  /// database or take its locks — read from engine-global state (rings,
  /// registries, counters) or the tables the caller already pinned.
  std::function<Status(Table* out)> fill;
};

/// Materializes a fresh snapshot Table for `def`. The returned table is
/// owned by the caller (the executor pins it in the plan state so both
/// row-at-a-time and vectorized scans can hold raw pointers into it).
Result<std::shared_ptr<Table>> MaterializeVirtualTable(
    const VirtualTableDef& def);

}  // namespace db2graph::sql

#endif  // DB2GRAPH_SQL_VIRTUAL_TABLE_H_
