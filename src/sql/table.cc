#include "sql/table.h"

#include <algorithm>

#include "common/strings.h"

namespace db2graph::sql {

void Index::Erase(const Row& key, RowId rid) {
  auto [begin, end] = map_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == rid) {
      map_.erase(it);
      return;
    }
  }
}

void Index::Lookup(const Row& key, std::vector<RowId>* out) const {
  auto [begin, end] = map_.equal_range(key);
  for (auto it = begin; it != end; ++it) out->push_back(it->second);
}

size_t Index::ApproxBytes() const {
  size_t bytes = 64;
  for (const auto& [key, rid] : map_) {
    (void)rid;
    bytes += ApproxRowBytes(key) + sizeof(RowId) + 32;  // bucket overhead
  }
  return bytes;
}

namespace {

// Encoded width of one value in a compact page layout.
size_t EncodedValueBytes(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return v.as_string().size() + 2;
  }
  return 8;
}

size_t EncodedRowBytes(const Row& row) {
  size_t bytes = 4;  // row header / slot pointer
  for (const Value& v : row) bytes += EncodedValueBytes(v);
  return bytes;
}

}  // namespace

void OrderedIndex::Erase(const Value& key, RowId rid) {
  auto [begin, end] = map_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == rid) {
      map_.erase(it);
      return;
    }
  }
}

void OrderedIndex::RangeLookup(const Value* lo, bool lo_exclusive,
                               const Value* hi, bool hi_exclusive,
                               std::vector<RowId>* out) const {
  auto begin = lo == nullptr
                   ? map_.begin()
                   : (lo_exclusive ? map_.upper_bound(*lo)
                                   : map_.lower_bound(*lo));
  auto end = hi == nullptr
                 ? map_.end()
                 : (hi_exclusive ? map_.lower_bound(*hi)
                                 : map_.upper_bound(*hi));
  for (auto it = begin; it != end; ++it) {
    if (it->first.is_null()) continue;
    out->push_back(it->second);
  }
}

size_t ApproxRowBytes(const Row& row) {
  size_t bytes = sizeof(Row) + row.capacity() * sizeof(Value);
  for (const Value& v : row) {
    if (v.is_string()) bytes += v.as_string().capacity();
  }
  return bytes;
}

Result<RowId> Table::Insert(Row row) {
  if (row.size() != schema_.columns.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table " +
        schema_.name + " arity " + std::to_string(schema_.columns.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      if (schema_.columns[i].not_null) {
        return Status::ConstraintViolation("column " + schema_.columns[i].name +
                                           " of " + schema_.name +
                                           " is NOT NULL");
      }
      continue;
    }
    // Coerce int literals into double columns; reject other mismatches.
    ValueType want = ColumnValueType(schema_.columns[i].type);
    if (row[i].type() != want) {
      if (want == ValueType::kDouble && row[i].is_int()) {
        row[i] = Value(static_cast<double>(row[i].as_int()));
      } else if (want == ValueType::kInt && row[i].is_double() &&
                 row[i].as_double() ==
                     static_cast<double>(
                         static_cast<int64_t>(row[i].as_double()))) {
        row[i] = Value(static_cast<int64_t>(row[i].as_double()));
      } else {
        return Status::InvalidArgument(
            "type mismatch for column " + schema_.columns[i].name + " of " +
            schema_.name + ": expected " +
            ColumnTypeName(schema_.columns[i].type) + ", got " +
            ValueTypeName(row[i].type()));
      }
    }
  }
  // Unique-index enforcement before any mutation.
  for (const auto& index : indexes_) {
    if (index->unique() && index->Contains(index->KeyFor(row))) {
      return Status::ConstraintViolation("duplicate key for unique index " +
                                         index->name() + " on " +
                                         schema_.name);
    }
  }
  RowId rid;
  if (!free_slots_.empty()) {
    rid = free_slots_.back();
    free_slots_.pop_back();
    rows_[rid] = std::move(row);
    live_[rid] = true;
  } else {
    rid = rows_.size();
    rows_.push_back(std::move(row));
    live_.push_back(true);
  }
  ++live_count_;
  IndexInsert(rows_[rid], rid);
  return rid;
}

Result<Row> Table::Delete(RowId rid) {
  if (!IsLive(rid)) {
    return Status::NotFound("row " + std::to_string(rid) + " of " +
                            schema_.name + " is not live");
  }
  Row image = std::move(rows_[rid]);
  IndexErase(image, rid);
  rows_[rid] = Row();
  live_[rid] = false;
  free_slots_.push_back(rid);
  --live_count_;
  return image;
}

Result<Row> Table::Update(RowId rid, Row new_row) {
  if (!IsLive(rid)) {
    return Status::NotFound("row " + std::to_string(rid) + " of " +
                            schema_.name + " is not live");
  }
  if (new_row.size() != schema_.columns.size()) {
    return Status::InvalidArgument("update arity mismatch on " + schema_.name);
  }
  Row before = rows_[rid];
  IndexErase(before, rid);
  rows_[rid] = std::move(new_row);
  IndexInsert(rows_[rid], rid);
  return before;
}

void Table::RestoreSlot(RowId rid, Row row) {
  if (rid >= rows_.size()) {
    rows_.resize(rid + 1);
    live_.resize(rid + 1, false);
  }
  rows_[rid] = std::move(row);
  if (!live_[rid]) {
    live_[rid] = true;
    ++live_count_;
    free_slots_.erase(
        std::remove(free_slots_.begin(), free_slots_.end(), rid),
        free_slots_.end());
  }
  IndexInsert(rows_[rid], rid);
}

void Table::EraseSlot(RowId rid) {
  if (!IsLive(rid)) return;
  IndexErase(rows_[rid], rid);
  rows_[rid] = Row();
  live_[rid] = false;
  free_slots_.push_back(rid);
  --live_count_;
}

Status Table::CreateIndex(const std::string& name,
                          const std::vector<std::string>& columns,
                          bool unique) {
  if (HasIndexNamed(name)) {
    return Status::AlreadyExists("index " + name + " already exists on " +
                                 schema_.name);
  }
  std::vector<size_t> column_indexes;
  for (const std::string& c : columns) {
    auto idx = schema_.ColumnIndex(c);
    if (!idx) {
      return Status::NotFound("no column " + c + " in table " + schema_.name);
    }
    column_indexes.push_back(*idx);
  }
  auto index = std::make_unique<Index>(name, column_indexes, unique);
  for (RowId rid = 0; rid < rows_.size(); ++rid) {
    if (!live_[rid]) continue;
    Row key = index->KeyFor(rows_[rid]);
    if (unique && index->Contains(key)) {
      return Status::ConstraintViolation(
          "cannot create unique index " + name + " on " + schema_.name +
          ": duplicate existing keys");
    }
    index->Insert(key, rid);
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

bool Table::HasIndexNamed(const std::string& name) const {
  for (const auto& index : indexes_) {
    if (EqualsIgnoreCase(index->name(), name)) return true;
  }
  for (const auto& index : ordered_indexes_) {
    if (EqualsIgnoreCase(index->name(), name)) return true;
  }
  return false;
}

const Index* Table::FindIndexOn(
    const std::vector<size_t>& column_indexes) const {
  std::vector<size_t> want = column_indexes;
  std::sort(want.begin(), want.end());
  for (const auto& index : indexes_) {
    std::vector<size_t> have = index->column_indexes();
    std::sort(have.begin(), have.end());
    if (have == want) return index.get();
  }
  return nullptr;
}

Status Table::CreateOrderedIndex(const std::string& name,
                                 const std::string& column) {
  if (HasIndexNamed(name)) {
    return Status::AlreadyExists("index " + name + " already exists on " +
                                 schema_.name);
  }
  auto idx = schema_.ColumnIndex(column);
  if (!idx) {
    return Status::NotFound("no column " + column + " in table " +
                            schema_.name);
  }
  auto index = std::make_unique<OrderedIndex>(name, *idx);
  for (RowId rid = 0; rid < rows_.size(); ++rid) {
    if (!live_[rid]) continue;
    index->Insert(rows_[rid][*idx], rid);
  }
  ordered_indexes_.push_back(std::move(index));
  return Status::OK();
}

const OrderedIndex* Table::FindOrderedIndexOn(size_t column_index) const {
  for (const auto& index : ordered_indexes_) {
    if (index->column_index() == column_index) return index.get();
  }
  return nullptr;
}

void Table::IndexInsert(const Row& row, RowId rid) {
  for (const auto& index : indexes_) index->Insert(index->KeyFor(row), rid);
  for (const auto& index : ordered_indexes_) {
    index->Insert(row[index->column_index()], rid);
  }
}

void Table::IndexErase(const Row& row, RowId rid) {
  for (const auto& index : indexes_) index->Erase(index->KeyFor(row), rid);
  for (const auto& index : ordered_indexes_) {
    index->Erase(row[index->column_index()], rid);
  }
}

size_t Table::ApproxBytes() const {
  size_t bytes = 128;
  for (RowId rid = 0; rid < rows_.size(); ++rid) {
    if (live_[rid]) bytes += ApproxRowBytes(rows_[rid]);
  }
  for (const auto& index : indexes_) bytes += index->ApproxBytes();
  for (const auto& index : ordered_indexes_) bytes += index->ApproxBytes();
  return bytes;
}

size_t Table::ApproxDiskBytes() const {
  size_t bytes = 256;  // catalog entry + page directory
  for (RowId rid = 0; rid < rows_.size(); ++rid) {
    if (live_[rid]) bytes += EncodedRowBytes(rows_[rid]);
  }
  for (const auto& index : indexes_) {
    // One B-tree leaf entry per row: key widths + a row pointer.
    for (RowId rid = 0; rid < rows_.size(); ++rid) {
      if (!live_[rid]) continue;
      bytes += 10;
      for (size_t c : index->column_indexes()) {
        bytes += EncodedValueBytes(rows_[rid][c]);
      }
    }
  }
  return bytes;
}

}  // namespace db2graph::sql
