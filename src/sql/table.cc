#include "sql/table.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/strings.h"

namespace db2graph::sql {

// ---------------------------------------------------------------------
// Column
// ---------------------------------------------------------------------

void Column::EnsureSize(size_t n) {
  if (n <= size_) return;
  switch (type_) {
    case ColumnType::kBool:
      bools_.resize(n, 0);
      break;
    case ColumnType::kInt:
      ints_.resize(n, 0);
      break;
    case ColumnType::kDouble:
      doubles_.resize(n, 0.0);
      break;
    case ColumnType::kString:
      strings_.resize(n);
      break;
  }
  valid_.resize((n + 63) / 64, 0);
  size_ = n;
}

void Column::Set(RowId rid, const Value& v) {
  if (v.is_null()) {
    SetNull(rid);
    return;
  }
  switch (type_) {
    case ColumnType::kBool:
      bools_[rid] = v.as_bool() ? 1 : 0;
      break;
    case ColumnType::kInt:
      ints_[rid] = v.as_int();
      break;
    case ColumnType::kDouble:
      doubles_[rid] = v.as_double();
      break;
    case ColumnType::kString:
      strings_[rid] = v.as_string();
      break;
  }
  SetValid(rid, true);
}

void Column::SetMove(RowId rid, Value&& v) {
  if (type_ == ColumnType::kString && v.is_string()) {
    strings_[rid] = std::move(const_cast<std::string&>(v.as_string()));
    SetValid(rid, true);
    return;
  }
  Set(rid, v);
}

void Column::SetNull(RowId rid) {
  if (type_ == ColumnType::kString && !strings_[rid].empty()) {
    std::string().swap(strings_[rid]);  // release heap storage
  }
  SetValid(rid, false);
}

Value Column::Get(RowId rid) const {
  if (IsNull(rid)) return Value::Null();
  switch (type_) {
    case ColumnType::kBool:
      return Value(bools_[rid] != 0);
    case ColumnType::kInt:
      return Value(ints_[rid]);
    case ColumnType::kDouble:
      return Value(doubles_[rid]);
    case ColumnType::kString:
      return Value(strings_[rid]);
  }
  return Value::Null();
}

size_t Column::ApproxBytes() const {
  size_t bytes = valid_.capacity() * sizeof(uint64_t);
  bytes += bools_.capacity() * sizeof(uint8_t);
  bytes += ints_.capacity() * sizeof(int64_t);
  bytes += doubles_.capacity() * sizeof(double);
  bytes += strings_.capacity() * sizeof(std::string);
  for (const std::string& s : strings_) bytes += s.capacity();
  return bytes;
}

// ---------------------------------------------------------------------
// Indexes
// ---------------------------------------------------------------------

void Index::Erase(const Row& key, RowId rid) {
  auto [begin, end] = map_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == rid) {
      map_.erase(it);
      return;
    }
  }
}

void Index::Lookup(const Row& key, std::vector<RowId>* out) const {
  auto [begin, end] = map_.equal_range(key);
  for (auto it = begin; it != end; ++it) out->push_back(it->second);
}

size_t Index::ApproxBytes() const {
  size_t bytes = 64;
  for (const auto& [key, rid] : map_) {
    (void)rid;
    bytes += ApproxRowBytes(key) + sizeof(RowId) + 32;  // bucket overhead
  }
  return bytes;
}

size_t EncodedValueBytes(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 1;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 8;
    case ValueType::kString:
      return v.as_string().size() + 2;
  }
  return 8;
}

void OrderedIndex::Erase(const Value& key, RowId rid) {
  auto [begin, end] = map_.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == rid) {
      key_bytes_ -= EncodedValueBytes(it->first);
      map_.erase(it);
      return;
    }
  }
}

void OrderedIndex::RangeLookup(const Value* lo, bool lo_exclusive,
                               const Value* hi, bool hi_exclusive,
                               std::vector<RowId>* out) const {
  auto begin = lo == nullptr
                   ? map_.begin()
                   : (lo_exclusive ? map_.upper_bound(*lo)
                                   : map_.lower_bound(*lo));
  auto end = hi == nullptr
                 ? map_.end()
                 : (hi_exclusive ? map_.lower_bound(*hi)
                                 : map_.upper_bound(*hi));
  for (auto it = begin; it != end; ++it) {
    if (it->first.is_null()) continue;
    out->push_back(it->second);
  }
}

size_t ApproxRowBytes(const Row& row) {
  size_t bytes = sizeof(Row) + row.capacity() * sizeof(Value);
  for (const Value& v : row) {
    if (v.is_string()) bytes += v.as_string().capacity();
  }
  return bytes;
}

// ---------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  columns_.reserve(schema_.columns.size());
  for (const ColumnDef& c : schema_.columns) columns_.emplace_back(c.type);
  stats_.resize(schema_.columns.size());
}

Row Table::GetRow(RowId rid) const {
  Row row;
  AppendRow(rid, &row);
  return row;
}

void Table::AppendRow(RowId rid, Row* out) const {
  out->reserve(out->size() + columns_.size());
  for (const Column& col : columns_) out->push_back(col.Get(rid));
}

void Table::MaterializeRow(RowId rid, Row* out) const {
  out->clear();
  AppendRow(rid, out);
}

namespace {

// Size of the k-minimum-values NDV sketch. 256 hashes keep the estimate
// within ~6% (1/sqrt(k)) at a few KiB per column.
constexpr size_t kKmvSize = 256;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashValue64(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return SplitMix64(v.as_bool() ? 1 : 2);
    case ValueType::kInt:
      return SplitMix64(static_cast<uint64_t>(v.as_int()));
    case ValueType::kDouble: {
      double d = v.as_double();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return SplitMix64(bits);
    }
    case ValueType::kString: {
      uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
      for (unsigned char c : v.as_string()) {
        h = (h ^ c) * 0x100000001b3ULL;
      }
      return SplitMix64(h);
    }
  }
  return 0;
}

// Estimates the distinct count from a KMV sketch: exact while the sketch
// never overflowed, (k-1)/kth_smallest_fraction once it did.
uint64_t EstimateNdv(const std::vector<uint64_t>& kmv, bool saturated) {
  if (kmv.empty()) return 0;
  if (!saturated) return kmv.size();
  double kth = static_cast<double>(kmv.back());
  if (kth <= 0.0) return kmv.size();
  double est = (static_cast<double>(kmv.size()) - 1.0) *
               (18446744073709551616.0 /* 2^64 */ / kth);
  return est < 1.0 ? 1 : static_cast<uint64_t>(est);
}

}  // namespace

void Table::SketchAdd(StatsState* state, const Value& v) {
  uint64_t h = HashValue64(v);
  std::vector<uint64_t>& kmv = state->kmv;
  auto it = std::lower_bound(kmv.begin(), kmv.end(), h);
  if (it != kmv.end() && *it == h) return;  // already present
  if (kmv.size() < kKmvSize) {
    kmv.insert(it, h);
    return;
  }
  if (h < kmv.back()) {
    kmv.insert(it, h);
    kmv.pop_back();
  }
  state->kmv_saturated = true;
}

Table::ColumnStats Table::GetColumnStats(size_t column) const {
  std::lock_guard<std::mutex> guard(stats_mutex_);
  StatsState& state = stats_[column];
  if (state.minmax_stale) {
    state.min = Value::Null();
    state.max = Value::Null();
    const Column& col = columns_[column];
    for (RowId rid = 0; rid < slot_count_; ++rid) {
      if (!live_[rid] || col.IsNull(rid)) continue;
      Value v = col.Get(rid);
      if (state.min.is_null() || v < state.min) state.min = v;
      if (state.max.is_null() || v > state.max) state.max = std::move(v);
    }
    state.minmax_stale = false;
  }
  if (state.ndv_stale) {
    state.kmv.clear();
    state.kmv_saturated = false;
    const Column& col = columns_[column];
    for (RowId rid = 0; rid < slot_count_; ++rid) {
      if (!live_[rid] || col.IsNull(rid)) continue;
      SketchAdd(&state, col.Get(rid));
    }
    state.ndv_stale = false;
  }
  ColumnStats out;
  out.row_count = live_count_;
  out.null_count = state.null_count;
  out.ndv = EstimateNdv(state.kmv, state.kmv_saturated);
  out.min = state.min;
  out.max = state.max;
  return out;
}

void Table::PublishColumnStats() const {
  metrics::MetricsRegistry& registry = metrics::MetricsRegistry::Global();
  for (size_t c = 0; c < columns_.size(); ++c) {
    ColumnStats stats = GetColumnStats(c);
    const std::string prefix =
        "sql.colstats." + schema_.name + "." + schema_.columns[c].name;
    registry.GetGauge(prefix + ".rows")
        ->Set(static_cast<int64_t>(stats.row_count));
    registry.GetGauge(prefix + ".nulls")
        ->Set(static_cast<int64_t>(stats.null_count));
    registry.GetGauge(prefix + ".ndv")->Set(static_cast<int64_t>(stats.ndv));
  }
}

void Table::EnsureSlots(size_t n) {
  if (n <= slot_count_) return;
  for (Column& col : columns_) col.EnsureSize(n);
  live_.resize(n, false);
  slot_count_ = n;
}

void Table::StoreRow(RowId rid, Row&& row) {
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].SetMove(rid, std::move(row[c]));
  }
}

void Table::ClearSlot(RowId rid) {
  for (Column& col : columns_) col.SetNull(rid);
}

void Table::StatsOnInsert(const Row& row) {
  stats_version_.fetch_add(1, std::memory_order_relaxed);
  for (size_t c = 0; c < row.size(); ++c) {
    StatsState& state = stats_[c];
    if (row[c].is_null()) {
      ++state.null_count;
      continue;
    }
    if (!state.ndv_stale) SketchAdd(&state, row[c]);
    if (state.minmax_stale) continue;  // will be rescanned anyway
    if (state.min.is_null() || row[c] < state.min) state.min = row[c];
    if (state.max.is_null() || row[c] > state.max) state.max = row[c];
  }
}

void Table::StatsOnErase(const Row& row) {
  stats_version_.fetch_add(1, std::memory_order_relaxed);
  for (size_t c = 0; c < row.size(); ++c) {
    StatsState& state = stats_[c];
    if (row[c].is_null()) {
      --state.null_count;
      continue;
    }
    // Removing a value may drop a distinct count or tighten min/max;
    // recompute both lazily at the next stats read.
    state.ndv_stale = true;
    if (!state.minmax_stale &&
        (row[c] == state.min || row[c] == state.max)) {
      state.minmax_stale = true;
    }
  }
}

Result<RowId> Table::Insert(Row row) {
  if (row.size() != schema_.columns.size()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match table " +
        schema_.name + " arity " + std::to_string(schema_.columns.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      if (schema_.columns[i].not_null) {
        return Status::ConstraintViolation("column " + schema_.columns[i].name +
                                           " of " + schema_.name +
                                           " is NOT NULL");
      }
      continue;
    }
    // Coerce int literals into double columns; reject other mismatches.
    ValueType want = ColumnValueType(schema_.columns[i].type);
    if (row[i].type() != want) {
      if (want == ValueType::kDouble && row[i].is_int()) {
        row[i] = Value(static_cast<double>(row[i].as_int()));
      } else if (want == ValueType::kInt && row[i].is_double() &&
                 row[i].as_double() ==
                     static_cast<double>(
                         static_cast<int64_t>(row[i].as_double()))) {
        row[i] = Value(static_cast<int64_t>(row[i].as_double()));
      } else {
        return Status::InvalidArgument(
            "type mismatch for column " + schema_.columns[i].name + " of " +
            schema_.name + ": expected " +
            ColumnTypeName(schema_.columns[i].type) + ", got " +
            ValueTypeName(row[i].type()));
      }
    }
  }
  // Unique-index enforcement before any mutation.
  for (const auto& index : indexes_) {
    if (index->unique() && index->Contains(index->KeyFor(row))) {
      return Status::ConstraintViolation("duplicate key for unique index " +
                                         index->name() + " on " +
                                         schema_.name);
    }
  }
  RowId rid;
  if (!free_slots_.empty()) {
    rid = free_slots_.back();
    free_slots_.pop_back();
  } else {
    rid = slot_count_;
    EnsureSlots(slot_count_ + 1);
  }
  live_[rid] = true;
  ++live_count_;
  IndexInsert(row, rid);
  StatsOnInsert(row);
  StoreRow(rid, std::move(row));
  return rid;
}

Result<Row> Table::Delete(RowId rid) {
  if (!IsLive(rid)) {
    return Status::NotFound("row " + std::to_string(rid) + " of " +
                            schema_.name + " is not live");
  }
  Row image = GetRow(rid);
  IndexErase(image, rid);
  StatsOnErase(image);
  ClearSlot(rid);
  live_[rid] = false;
  free_slots_.push_back(rid);
  --live_count_;
  return image;
}

Result<Row> Table::Update(RowId rid, Row new_row) {
  if (!IsLive(rid)) {
    return Status::NotFound("row " + std::to_string(rid) + " of " +
                            schema_.name + " is not live");
  }
  if (new_row.size() != schema_.columns.size()) {
    return Status::InvalidArgument("update arity mismatch on " + schema_.name);
  }
  Row before = GetRow(rid);
  IndexErase(before, rid);
  StatsOnErase(before);
  IndexInsert(new_row, rid);
  StatsOnInsert(new_row);
  StoreRow(rid, std::move(new_row));
  return before;
}

void Table::RestoreSlot(RowId rid, Row row) {
  EnsureSlots(rid + 1);
  if (!live_[rid]) {
    live_[rid] = true;
    ++live_count_;
    free_slots_.erase(
        std::remove(free_slots_.begin(), free_slots_.end(), rid),
        free_slots_.end());
  }
  IndexInsert(row, rid);
  StatsOnInsert(row);
  StoreRow(rid, std::move(row));
}

void Table::EraseSlot(RowId rid) {
  if (!IsLive(rid)) return;
  Row image = GetRow(rid);
  IndexErase(image, rid);
  StatsOnErase(image);
  ClearSlot(rid);
  live_[rid] = false;
  free_slots_.push_back(rid);
  --live_count_;
}

Status Table::CreateIndex(const std::string& name,
                          const std::vector<std::string>& columns,
                          bool unique) {
  if (HasIndexNamed(name)) {
    return Status::AlreadyExists("index " + name + " already exists on " +
                                 schema_.name);
  }
  std::vector<size_t> column_indexes;
  for (const std::string& c : columns) {
    auto idx = schema_.ColumnIndex(c);
    if (!idx) {
      return Status::NotFound("no column " + c + " in table " + schema_.name);
    }
    column_indexes.push_back(*idx);
  }
  auto index = std::make_unique<Index>(name, column_indexes, unique);
  for (RowId rid = 0; rid < slot_count_; ++rid) {
    if (!live_[rid]) continue;
    Row key;
    key.reserve(column_indexes.size());
    for (size_t c : column_indexes) key.push_back(columns_[c].Get(rid));
    if (unique && index->Contains(key)) {
      return Status::ConstraintViolation(
          "cannot create unique index " + name + " on " + schema_.name +
          ": duplicate existing keys");
    }
    index->Insert(key, rid);
  }
  indexes_.push_back(std::move(index));
  return Status::OK();
}

bool Table::HasIndexNamed(const std::string& name) const {
  for (const auto& index : indexes_) {
    if (EqualsIgnoreCase(index->name(), name)) return true;
  }
  for (const auto& index : ordered_indexes_) {
    if (EqualsIgnoreCase(index->name(), name)) return true;
  }
  return false;
}

const Index* Table::FindIndexOn(
    const std::vector<size_t>& column_indexes) const {
  std::vector<size_t> want = column_indexes;
  std::sort(want.begin(), want.end());
  for (const auto& index : indexes_) {
    std::vector<size_t> have = index->column_indexes();
    std::sort(have.begin(), have.end());
    if (have == want) return index.get();
  }
  return nullptr;
}

Status Table::CreateOrderedIndex(const std::string& name,
                                 const std::string& column) {
  if (HasIndexNamed(name)) {
    return Status::AlreadyExists("index " + name + " already exists on " +
                                 schema_.name);
  }
  auto idx = schema_.ColumnIndex(column);
  if (!idx) {
    return Status::NotFound("no column " + column + " in table " +
                            schema_.name);
  }
  auto index = std::make_unique<OrderedIndex>(name, *idx);
  for (RowId rid = 0; rid < slot_count_; ++rid) {
    if (!live_[rid]) continue;
    index->Insert(columns_[*idx].Get(rid), rid);
  }
  ordered_indexes_.push_back(std::move(index));
  return Status::OK();
}

const OrderedIndex* Table::FindOrderedIndexOn(size_t column_index) const {
  for (const auto& index : ordered_indexes_) {
    if (index->column_index() == column_index) return index.get();
  }
  return nullptr;
}

void Table::IndexInsert(const Row& row, RowId rid) {
  for (const auto& index : indexes_) index->Insert(index->KeyFor(row), rid);
  for (const auto& index : ordered_indexes_) {
    index->Insert(row[index->column_index()], rid);
  }
}

void Table::IndexErase(const Row& row, RowId rid) {
  for (const auto& index : indexes_) index->Erase(index->KeyFor(row), rid);
  for (const auto& index : ordered_indexes_) {
    index->Erase(row[index->column_index()], rid);
  }
}

size_t Table::ApproxBytes() const {
  size_t bytes = 128;
  for (const Column& col : columns_) bytes += col.ApproxBytes();
  bytes += live_.capacity() / 8;
  bytes += free_slots_.capacity() * sizeof(RowId);
  for (const auto& index : indexes_) bytes += index->ApproxBytes();
  for (const auto& index : ordered_indexes_) bytes += index->ApproxBytes();
  return bytes;
}

size_t Table::ApproxDiskBytes() const {
  size_t bytes = 256;  // catalog entry + page directory
  // Columnar pages: per column a packed null bitmap over the live rows
  // plus the encoded value run (NULL cells contribute only their bitmap
  // bit; fixed-width types their width; strings length + a 2-byte size).
  for (size_t c = 0; c < columns_.size(); ++c) {
    bytes += 16;                       // column header
    bytes += (live_count_ + 7) / 8;    // null bitmap
    const Column& col = columns_[c];
    switch (col.type()) {
      case ColumnType::kBool:
      case ColumnType::kInt:
      case ColumnType::kDouble: {
        size_t width = col.type() == ColumnType::kBool ? 1 : 8;
        size_t non_null = 0;
        for (RowId rid = 0; rid < slot_count_; ++rid) {
          if (live_[rid] && !col.IsNull(rid)) ++non_null;
        }
        bytes += non_null * width;
        break;
      }
      case ColumnType::kString:
        for (RowId rid = 0; rid < slot_count_; ++rid) {
          if (!live_[rid] || col.IsNull(rid)) continue;
          bytes += col.strings()[rid].size() + 2;
        }
        break;
    }
  }
  for (const auto& index : indexes_) {
    // One B-tree leaf entry per row: key widths + a row pointer.
    for (RowId rid = 0; rid < slot_count_; ++rid) {
      if (!live_[rid]) continue;
      bytes += 10;
      for (size_t c : index->column_indexes()) {
        bytes += EncodedValueBytes(columns_[c].Get(rid));
      }
    }
  }
  return bytes;
}

ProbeChoice ChooseProbeIndex(const Table& table,
                             const std::vector<ProbeCandidate>& candidates) {
  ProbeChoice choice;
  std::vector<size_t> eq_columns;
  for (const ProbeCandidate& cand : candidates) {
    if (cand.value_count == 1) eq_columns.push_back(cand.column_index);
  }
  if (!eq_columns.empty()) {
    choice.index = table.FindIndexOn(eq_columns);
    if (choice.index != nullptr) {
      for (size_t col : choice.index->column_indexes()) {
        for (size_t i = 0; i < candidates.size(); ++i) {
          if (candidates[i].value_count == 1 &&
              candidates[i].column_index == col) {
            choice.term_indexes.push_back(i);
            break;
          }
        }
      }
      return choice;
    }
  }
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Index* single = table.FindIndexOn({candidates[i].column_index});
    if (single != nullptr) {
      choice.index = single;
      choice.term_indexes.push_back(i);
      return choice;
    }
  }
  return choice;
}

}  // namespace db2graph::sql
