#include "sql/sysmon.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/query_log.h"
#include "common/trace.h"
#include "common/workload_governor.h"
#include "sql/database.h"
#include "sql/schema.h"
#include "sql/table.h"
#include "sql/virtual_table.h"

namespace db2graph::sql {

namespace {

ColumnDef Col(const char* name, ColumnType type) {
  ColumnDef def;
  def.name = name;
  def.type = type;
  return def;
}

TableSchema Schema(const char* name, std::vector<ColumnDef> columns) {
  TableSchema schema;
  schema.name = name;
  schema.columns = std::move(columns);
  return schema;
}

Value U64(uint64_t v) { return Value(static_cast<int64_t>(v)); }

VirtualTableDef QueryLogTable() {
  VirtualTableDef def;
  def.schema = Schema("sysmon.query_log",
                      {Col("id", ColumnType::kInt),
                       Col("layer", ColumnType::kString),
                       Col("script", ColumnType::kString),
                       Col("plan_source", ColumnType::kString),
                       Col("exec_mode", ColumnType::kString),
                       Col("access_path", ColumnType::kString),
                       Col("rows_scanned", ColumnType::kInt),
                       Col("rows_emitted", ColumnType::kInt),
                       Col("dop", ColumnType::kInt),
                       Col("morsels", ColumnType::kInt),
                       Col("collapsed_hops", ColumnType::kInt),
                       Col("micros", ColumnType::kInt),
                       Col("error", ColumnType::kBool),
                       Col("error_message", ColumnType::kString),
                       Col("reason", ColumnType::kString),
                       Col("plan", ColumnType::kString)});
  def.fill = [](Table* out) -> Status {
    for (const QueryLog::Entry& e : QueryLog::Global().Entries()) {
      DB2G_RETURN_NOT_OK(
          out->Insert({U64(e.id), e.layer, e.script, e.plan_source,
                       e.exec_mode, e.access_path, U64(e.rows_scanned),
                       U64(e.rows_emitted), U64(e.dop), U64(e.morsels),
                       U64(e.collapsed_hops), U64(e.micros), e.error,
                       e.error_message, e.reason, e.plan})
              .status());
    }
    return Status::OK();
  };
  return def;
}

VirtualTableDef MetricsTable() {
  VirtualTableDef def;
  def.schema = Schema("sysmon.metrics",
                      {Col("name", ColumnType::kString),
                       Col("kind", ColumnType::kString),
                       Col("value", ColumnType::kInt),
                       Col("sum", ColumnType::kInt),
                       Col("p50", ColumnType::kInt),
                       Col("p95", ColumnType::kInt),
                       Col("p99", ColumnType::kInt)});
  def.fill = [](Table* out) -> Status {
    for (const metrics::MetricsRegistry::Sample& s :
         metrics::MetricsRegistry::Global().Snapshot()) {
      DB2G_RETURN_NOT_OK(out->Insert({s.name, s.kind, Value(s.value),
                                      U64(s.sum), U64(s.p50), U64(s.p95),
                                      U64(s.p99)})
                             .status());
    }
    return Status::OK();
  };
  return def;
}

VirtualTableDef SlowQueriesTable() {
  VirtualTableDef def;
  def.schema = Schema("sysmon.slow_queries",
                      {Col("script", ColumnType::kString),
                       Col("elapsed_micros", ColumnType::kInt),
                       Col("rows_scanned", ColumnType::kInt),
                       Col("rows_emitted", ColumnType::kInt),
                       Col("reason", ColumnType::kString),
                       Col("trace_json", ColumnType::kString)});
  def.fill = [](Table* out) -> Status {
    for (const SlowQueryLog::Entry& e : SlowQueryLog::Global().Entries()) {
      DB2G_RETURN_NOT_OK(out->Insert({e.script, U64(e.elapsed_micros),
                                      U64(e.rows_scanned),
                                      U64(e.rows_emitted), e.reason,
                                      e.trace_json})
                             .status());
    }
    return Status::OK();
  };
  return def;
}

// The workload governor's live view: one row per governed query currently
// executing, with its elapsed time, progress, and budgets — the id column
// is what GremlinService::KillQuery takes.
VirtualTableDef ActiveQueriesTable() {
  VirtualTableDef def;
  def.schema = Schema("sysmon.active_queries",
                      {Col("id", ColumnType::kInt),
                       Col("script", ColumnType::kString),
                       Col("elapsed_micros", ColumnType::kInt),
                       Col("rows_produced", ColumnType::kInt),
                       Col("timeout_ms", ColumnType::kInt),
                       Col("max_result_rows", ColumnType::kInt),
                       Col("max_memory_bytes", ColumnType::kInt),
                       Col("memory_used", ColumnType::kInt)});
  def.fill = [](Table* out) -> Status {
    for (const std::shared_ptr<governor::QueryContext>& q :
         governor::ActiveQueryRegistry::Global().Snapshot()) {
      DB2G_RETURN_NOT_OK(
          out->Insert({U64(q->id()), q->script(), U64(q->elapsed_micros()),
                       U64(q->rows_produced()),
                       Value(q->limits().timeout_ms),
                       Value(q->limits().max_result_rows),
                       Value(q->limits().max_memory_bytes),
                       U64(q->memory_used())})
              .status());
    }
    return Status::OK();
  };
  return def;
}

VirtualTableDef ColumnStatsTable(Database* db) {
  VirtualTableDef def;
  def.schema = Schema("sysmon.column_stats",
                      {Col("table_name", ColumnType::kString),
                       Col("column_name", ColumnType::kString),
                       Col("type", ColumnType::kString),
                       Col("rows", ColumnType::kInt),
                       Col("nulls", ColumnType::kInt),
                       Col("ndv", ColumnType::kInt),
                       Col("min", ColumnType::kString),
                       Col("max", ColumnType::kString)});
  // The fill runs under the database read lock (scans always do); the
  // catalog accessors re-enter it, which the per-thread lock depth allows.
  def.fill = [db](Table* out) -> Status {
    for (const std::string& name : db->TableNames()) {
      const Table* table = db->GetTable(name);
      if (table == nullptr) continue;
      const TableSchema& schema = table->schema();
      for (size_t c = 0; c < schema.columns.size(); ++c) {
        Table::ColumnStats stats = table->GetColumnStats(c);
        Value min = stats.min.is_null() ? Value() : Value(stats.min.ToString());
        Value max = stats.max.is_null() ? Value() : Value(stats.max.ToString());
        DB2G_RETURN_NOT_OK(
            out->Insert({name, schema.columns[c].name,
                         ColumnTypeName(schema.columns[c].type),
                         U64(stats.row_count), U64(stats.null_count),
                         U64(stats.ndv), std::move(min), std::move(max)})
                .status());
      }
    }
    return Status::OK();
  };
  return def;
}

}  // namespace

void RegisterSysmonTables(Database* db) {
  db->RegisterVirtualTable(QueryLogTable());
  db->RegisterVirtualTable(MetricsTable());
  db->RegisterVirtualTable(SlowQueriesTable());
  db->RegisterVirtualTable(ActiveQueriesTable());
  db->RegisterVirtualTable(ColumnStatsTable(db));
}

}  // namespace db2graph::sql
