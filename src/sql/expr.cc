#include "sql/expr.h"

#include <cassert>
#include <cmath>

#include "common/strings.h"

namespace db2graph::sql {

std::unique_ptr<Expr> Expr::Clone() const {
  auto copy = std::make_unique<Expr>();
  copy->kind = kind;
  copy->literal = literal;
  copy->table_alias = table_alias;
  copy->column = column;
  copy->param_index = param_index;
  copy->op = op;
  copy->negated = negated;
  copy->bound_index = bound_index;
  copy->children.reserve(children.size());
  for (const auto& c : children) copy->children.push_back(c->Clone());
  return copy;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.ToSqlLiteral();
    case ExprKind::kColumnRef:
      return table_alias.empty() ? column : table_alias + "." + column;
    case ExprKind::kParam:
      return "?";
    case ExprKind::kStar:
      return table_alias.empty() ? "*" : table_alias + ".*";
    case ExprKind::kUnary: {
      std::string s = op;
      s += " (";
      s += children[0]->ToString();
      s += ")";
      return s;
    }
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + op + " " +
             children[1]->ToString() + ")";
    case ExprKind::kIn: {
      std::string s = children[0]->ToString();
      s += negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) s += ", ";
        s += children[i]->ToString();
      }
      return s + ")";
    }
    case ExprKind::kIsNull:
      return children[0]->ToString() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kFuncCall: {
      std::string s = op + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) s += ", ";
        s += children[i]->ToString();
      }
      return s + ")";
    }
  }
  return "?";
}

std::unique_ptr<Expr> MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> MakeColumnRef(std::string table_alias,
                                    std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table_alias = std::move(table_alias);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> MakeBinary(std::string op, std::unique_ptr<Expr> lhs,
                                 std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = std::move(op);
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

void Scope::AddTable(const std::string& alias,
                     const std::vector<std::string>& columns) {
  entries_.push_back({alias, width_, columns.size()});
  for (const std::string& c : columns) {
    names_.push_back(c);
    lower_names_.push_back(ToLower(c));
  }
  width_ += columns.size();
}

Result<size_t> Scope::Resolve(const std::string& table_alias,
                              const std::string& column) const {
  std::string want = ToLower(column);
  std::optional<size_t> found;
  for (const Entry& e : entries_) {
    if (!table_alias.empty() && !EqualsIgnoreCase(e.alias, table_alias)) {
      continue;
    }
    for (size_t i = 0; i < e.count; ++i) {
      if (lower_names_[e.offset + i] == want) {
        if (found.has_value()) {
          return Status::InvalidArgument("ambiguous column reference: " +
                                         column);
        }
        found = e.offset + i;
      }
    }
  }
  if (!found) {
    return Status::NotFound(
        "unknown column: " +
        (table_alias.empty() ? column : table_alias + "." + column));
  }
  return *found;
}

std::vector<size_t> Scope::StarOffsets(const std::string& table_alias) const {
  std::vector<size_t> out;
  for (const Entry& e : entries_) {
    if (!table_alias.empty() && !EqualsIgnoreCase(e.alias, table_alias)) {
      continue;
    }
    for (size_t i = 0; i < e.count; ++i) out.push_back(e.offset + i);
  }
  return out;
}

Status BindExpr(Expr* expr, const Scope& scope) {
  if (expr->kind == ExprKind::kColumnRef) {
    Result<size_t> offset = scope.Resolve(expr->table_alias, expr->column);
    if (!offset.ok()) return offset.status();
    expr->bound_index = static_cast<int>(*offset);
    return Status::OK();
  }
  for (auto& child : expr->children) {
    DB2G_RETURN_NOT_OK(BindExpr(child.get(), scope));
  }
  return Status::OK();
}

bool SqlLike(const std::string& text, const std::string& pattern) {
  // Iterative matcher with backtracking on the last '%'.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

Value EvalBinary(const Expr& expr, const Row& row,
                 const std::vector<Value>* params) {
  const std::string& op = expr.op;
  if (op == "AND") {
    Value lhs = EvalExpr(*expr.children[0], row, params);
    if (!lhs.is_null() && !lhs.Truthy()) return Value(false);
    Value rhs = EvalExpr(*expr.children[1], row, params);
    if (!rhs.is_null() && !rhs.Truthy()) return Value(false);
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    return Value(true);
  }
  if (op == "OR") {
    Value lhs = EvalExpr(*expr.children[0], row, params);
    if (!lhs.is_null() && lhs.Truthy()) return Value(true);
    Value rhs = EvalExpr(*expr.children[1], row, params);
    if (!rhs.is_null() && rhs.Truthy()) return Value(true);
    if (lhs.is_null() || rhs.is_null()) return Value::Null();
    return Value(false);
  }
  Value lhs = EvalExpr(*expr.children[0], row, params);
  Value rhs = EvalExpr(*expr.children[1], row, params);
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  if (op == "=") return Value(lhs == rhs);
  if (op == "<>" || op == "!=") return Value(lhs != rhs);
  if (op == "<") return Value(lhs < rhs);
  if (op == "<=") return Value(lhs <= rhs);
  if (op == ">") return Value(lhs > rhs);
  if (op == ">=") return Value(lhs >= rhs);
  if (op == "LIKE") {
    if (!lhs.is_string() || !rhs.is_string()) return Value(false);
    return Value(SqlLike(lhs.as_string(), rhs.as_string()));
  }
  if (op == "||") return Value(lhs.ToString() + rhs.ToString());
  // Arithmetic.
  if (lhs.is_numeric() && rhs.is_numeric()) {
    if (lhs.is_int() && rhs.is_int() && op != "/") {
      int64_t a = lhs.as_int();
      int64_t b = rhs.as_int();
      if (op == "+") return Value(a + b);
      if (op == "-") return Value(a - b);
      if (op == "*") return Value(a * b);
      if (op == "%") return b == 0 ? Value::Null() : Value(a % b);
    }
    double a = lhs.NumericValue();
    double b = rhs.NumericValue();
    if (op == "+") return Value(a + b);
    if (op == "-") return Value(a - b);
    if (op == "*") return Value(a * b);
    if (op == "/") return b == 0 ? Value::Null() : Value(a / b);
    if (op == "%") return b == 0 ? Value::Null() : Value(std::fmod(a, b));
  }
  return Value::Null();
}

Value EvalScalarFunc(const Expr& expr, const Row& row,
                     const std::vector<Value>* params) {
  std::string name = ToUpper(expr.op);
  if (name == "ABS") {
    Value v = EvalExpr(*expr.children[0], row, params);
    if (v.is_int()) return Value(std::abs(v.as_int()));
    if (v.is_double()) return Value(std::abs(v.as_double()));
    return Value::Null();
  }
  if (name == "LOWER" || name == "UPPER") {
    Value v = EvalExpr(*expr.children[0], row, params);
    if (!v.is_string()) return Value::Null();
    return Value(name == "LOWER" ? ToLower(v.as_string())
                                 : ToUpper(v.as_string()));
  }
  if (name == "LENGTH") {
    Value v = EvalExpr(*expr.children[0], row, params);
    if (!v.is_string()) return Value::Null();
    return Value(static_cast<int64_t>(v.as_string().size()));
  }
  if (name == "COALESCE") {
    for (const auto& child : expr.children) {
      Value v = EvalExpr(*child, row, params);
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (name == "CAST_VARCHAR") {
    Value v = EvalExpr(*expr.children[0], row, params);
    if (v.is_null()) return v;
    return Value(v.ToString());
  }
  return Value::Null();
}

}  // namespace

Value EvalExpr(const Expr& expr, const Row& row,
               const std::vector<Value>* params) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef:
      assert(expr.bound_index >= 0 &&
             static_cast<size_t>(expr.bound_index) < row.size());
      return row[expr.bound_index];
    case ExprKind::kParam:
      assert(params != nullptr &&
             expr.param_index >= 0 &&
             static_cast<size_t>(expr.param_index) < params->size());
      return (*params)[expr.param_index];
    case ExprKind::kStar:
      return Value::Null();  // handled by the executor, never evaluated
    case ExprKind::kUnary: {
      Value v = EvalExpr(*expr.children[0], row, params);
      if (expr.op == "NOT") {
        if (v.is_null()) return Value::Null();
        return Value(!v.Truthy());
      }
      if (expr.op == "-") {
        if (v.is_int()) return Value(-v.as_int());
        if (v.is_double()) return Value(-v.as_double());
        return Value::Null();
      }
      return Value::Null();
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, row, params);
    case ExprKind::kIn: {
      Value needle = EvalExpr(*expr.children[0], row, params);
      if (needle.is_null()) return Value::Null();
      bool found = false;
      for (size_t i = 1; i < expr.children.size(); ++i) {
        Value candidate = EvalExpr(*expr.children[i], row, params);
        if (!candidate.is_null() && candidate == needle) {
          found = true;
          break;
        }
      }
      return Value(expr.negated ? !found : found);
    }
    case ExprKind::kIsNull: {
      Value v = EvalExpr(*expr.children[0], row, params);
      return Value(expr.negated ? !v.is_null() : v.is_null());
    }
    case ExprKind::kFuncCall:
      // Aggregates are computed by the executor; reaching here means a
      // scalar function.
      return EvalScalarFunc(expr, row, params);
  }
  return Value::Null();
}

bool IsAggregateName(const std::string& name) {
  std::string up = ToUpper(name);
  return up == "COUNT" || up == "SUM" || up == "AVG" || up == "MIN" ||
         up == "MAX";
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kFuncCall && IsAggregateName(expr.op)) {
    return true;
  }
  for (const auto& child : expr.children) {
    if (ContainsAggregate(*child)) return true;
  }
  return false;
}

}  // namespace db2graph::sql
