#include "sql/result_set.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace db2graph::sql {

std::string RenderPlanTree(const std::vector<OpProfile>& ops, bool analyzed) {
  std::ostringstream os;
  for (size_t i = ops.size(); i-- > 0;) {
    const OpProfile& op = ops[i];
    size_t depth = ops.size() - 1 - i;
    os << std::string(depth * 2, ' ') << op.name;
    if (!op.detail.empty()) os << " [" << op.detail << "]";
    if (analyzed) {
      os << " (actual";
      if (op.rows_in > 0) os << " rows_in=" << op.rows_in;
      os << " rows=" << op.rows_out << " blocks=" << op.blocks
         << " time=" << op.micros << "us)";
    }
    os << "\n";
  }
  return os.str();
}

const char* ExecInfo::AccessPath() const {
  int kinds = (index_probes > 0 ? 1 : 0) + (range_scans > 0 ? 1 : 0) +
              (full_scans > 0 ? 1 : 0);
  if (kinds == 0) return "none";
  if (kinds > 1) return "mixed";
  if (index_probes > 0) return "index";
  if (range_scans > 0) return "range";
  return "scan";
}

const char* ExecInfo::ExecMode() const {
  if (vectorized_ops > 0 && scalar_ops > 0) return "mixed";
  if (vectorized_ops > 0) return "vectorized";
  if (scalar_ops > 0) return "scalar";
  return "none";
}

int ResultSet::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (EqualsIgnoreCase(columns[i], name)) return static_cast<int>(i);
  }
  return -1;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::vector<size_t> widths(columns.size());
  for (size_t i = 0; i < columns.size(); ++i) widths[i] = columns[i].size();
  size_t shown = std::min(rows.size(), max_rows);
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
      cells[r][c] = c < rows[r].size() ? rows[r][c].ToString() : "";
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::ostringstream os;
  auto rule = [&] {
    os << "+";
    for (size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  rule();
  os << "|";
  for (size_t c = 0; c < columns.size(); ++c) {
    os << " " << columns[c] << std::string(widths[c] - columns[c].size(), ' ')
       << " |";
  }
  os << "\n";
  rule();
  for (size_t r = 0; r < shown; ++r) {
    os << "|";
    for (size_t c = 0; c < columns.size(); ++c) {
      os << " " << cells[r][c] << std::string(widths[c] - cells[r][c].size(), ' ')
         << " |";
    }
    os << "\n";
  }
  rule();
  if (rows.size() > shown) {
    os << "... (" << rows.size() - shown << " more rows, " << rows.size()
       << " total)\n";
  } else {
    os << rows.size() << " row(s)\n";
  }
  return os.str();
}

}  // namespace db2graph::sql
