// Copyright (c) 2026 The db2graph-repro Authors.
//
// Expression AST for the SQL subset: literals, column references, '?'
// parameters, comparisons, boolean connectives, arithmetic, IN lists,
// IS [NOT] NULL, LIKE, and (at the select-list level) aggregate calls.

#ifndef DB2GRAPH_SQL_EXPR_H_
#define DB2GRAPH_SQL_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace db2graph::sql {

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kParam,    // '?' placeholder, 0-based ordinal
  kStar,     // '*' or 'alias.*' (select list / COUNT(*) only)
  kUnary,    // NOT, unary -
  kBinary,   // AND OR = <> < <= > >= + - * / LIKE
  kIn,       // child[0] IN (child[1..]); negated flag for NOT IN
  kIsNull,   // child[0] IS NULL; negated flag for IS NOT NULL
  kFuncCall, // COUNT/SUM/AVG/MIN/MAX/ABS/LOWER/UPPER...
};

/// One node of an expression tree.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;                         // kLiteral
  std::string table_alias;               // kColumnRef / kStar ("" = any)
  std::string column;                    // kColumnRef
  int param_index = -1;                  // kParam
  std::string op;                        // kUnary / kBinary / kFuncCall name
  bool negated = false;                  // kIn / kIsNull
  std::vector<std::unique_ptr<Expr>> children;

  /// Filled during binding: offset of the referenced column in the
  /// concatenated row layout of the execution scope. -1 = unbound.
  int bound_index = -1;

  std::unique_ptr<Expr> Clone() const;

  /// Renders roughly back to SQL (diagnostics and SQL-dialect tests).
  std::string ToString() const;
};

std::unique_ptr<Expr> MakeLiteral(Value v);
std::unique_ptr<Expr> MakeColumnRef(std::string table_alias,
                                    std::string column);
std::unique_ptr<Expr> MakeBinary(std::string op, std::unique_ptr<Expr> lhs,
                                 std::unique_ptr<Expr> rhs);

/// Name resolution scope: a sequence of (alias, column names) whose columns
/// are concatenated into one flat row layout.
class Scope {
 public:
  void AddTable(const std::string& alias,
                const std::vector<std::string>& columns);

  /// Resolves alias.column (alias may be empty) to a flat offset.
  Result<size_t> Resolve(const std::string& table_alias,
                         const std::string& column) const;

  /// Flat offsets covered by `alias.*` (or all when alias empty).
  std::vector<size_t> StarOffsets(const std::string& table_alias) const;

  size_t width() const { return width_; }
  /// Output column name at a flat offset.
  const std::string& NameAt(size_t offset) const { return names_[offset]; }

 private:
  struct Entry {
    std::string alias;
    size_t offset;
    size_t count;
  };
  std::vector<Entry> entries_;
  std::vector<std::string> names_;        // unqualified, per flat offset
  std::vector<std::string> lower_names_;  // lowercase cache
  size_t width_ = 0;
};

/// Binds every column reference in `expr` against `scope`; fails on unknown
/// columns or ambiguity.
Status BindExpr(Expr* expr, const Scope& scope);

/// Evaluates a bound expression against a flat row. `params` supplies '?'
/// values (may be null when the expression has no parameters). SQL
/// three-valued logic is approximated: comparisons with NULL yield NULL
/// (represented as a NULL Value), and filters treat NULL as false.
Value EvalExpr(const Expr& expr, const Row& row,
               const std::vector<Value>* params);

/// True if the expression contains an aggregate function call.
bool ContainsAggregate(const Expr& expr);

/// True for COUNT/SUM/AVG/MIN/MAX (case-insensitive).
bool IsAggregateName(const std::string& name);

/// SQL LIKE with % and _ wildcards.
bool SqlLike(const std::string& text, const std::string& pattern);

}  // namespace db2graph::sql

#endif  // DB2GRAPH_SQL_EXPR_H_
