#include "sql/parser.h"

#include <utility>

#include "common/strings.h"
#include "sql/lexer.h"

namespace db2graph::sql {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Statement>> ParseStatement() {
    auto stmt = std::make_unique<Statement>();
    if (IsKeyword("CREATE")) {
      DB2G_RETURN_NOT_OK(ParseCreate(stmt.get()));
    } else if (IsKeyword("DROP")) {
      DB2G_RETURN_NOT_OK(ParseDrop(stmt.get()));
    } else if (IsKeyword("INSERT")) {
      DB2G_RETURN_NOT_OK(ParseInsert(stmt.get()));
    } else if (IsKeyword("UPDATE")) {
      DB2G_RETURN_NOT_OK(ParseUpdate(stmt.get()));
    } else if (IsKeyword("DELETE")) {
      DB2G_RETURN_NOT_OK(ParseDelete(stmt.get()));
    } else if (ConsumeKeyword("SELECT")) {
      stmt->kind = StatementKind::kSelect;
      auto select = std::make_shared<SelectStmt>();
      DB2G_RETURN_NOT_OK(ParseSelect(select.get()));
      stmt->select = std::move(select);
    } else if (ConsumeKeyword("EXPLAIN")) {
      bool analyze = ConsumeKeyword("ANALYZE");
      DB2G_RETURN_NOT_OK(ExpectKeyword("SELECT"));
      stmt->kind = StatementKind::kSelect;
      auto select = std::make_shared<SelectStmt>();
      select->explain = true;
      select->analyze = analyze;
      DB2G_RETURN_NOT_OK(ParseSelect(select.get()));
      stmt->select = std::move(select);
    } else if (IsKeyword("GRANT") || IsKeyword("REVOKE")) {
      DB2G_RETURN_NOT_OK(ParseGrant(stmt.get()));
    } else if (ConsumeKeyword("BEGIN") || ConsumeKeyword("START")) {
      ConsumeKeyword("TRANSACTION");
      ConsumeKeyword("WORK");
      stmt->kind = StatementKind::kBegin;
    } else if (ConsumeKeyword("COMMIT")) {
      ConsumeKeyword("WORK");
      stmt->kind = StatementKind::kCommit;
    } else if (ConsumeKeyword("ROLLBACK")) {
      ConsumeKeyword("WORK");
      stmt->kind = StatementKind::kRollback;
    } else {
      return Error("expected a SQL statement");
    }
    ConsumeOperator(";");
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing tokens");
    }
    return stmt;
  }

  int param_count() const { return param_count_; }

 private:
  // ---- token helpers -------------------------------------------------
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool IsKeyword(const char* kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kIdentifier && EqualsIgnoreCase(t.text, kw);
  }
  bool ConsumeKeyword(const char* kw) {
    if (IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool IsOperator(const char* op, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.type == TokenType::kOperator && t.text == op;
  }
  bool ConsumeOperator(const char* op) {
    if (IsOperator(op)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!ConsumeKeyword(kw)) {
      return Error(std::string("expected keyword ") + kw);
    }
    return Status::OK();
  }
  Status ExpectOperator(const char* op) {
    if (!ConsumeOperator(op)) {
      return Error(std::string("expected '") + op + "'");
    }
    return Status::OK();
  }
  Status ExpectIdentifier(std::string* out) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected an identifier");
    }
    *out = Advance().text;
    return Status::OK();
  }
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        "SQL parse error near offset " + std::to_string(Peek().offset) +
        " (token '" + Peek().text + "'): " + what);
  }

  // ---- statements -----------------------------------------------------
  Status ParseCreate(Statement* stmt) {
    ExpectKeyword("CREATE").ok();  // caller verified
    if (ConsumeKeyword("TABLE")) {
      stmt->kind = StatementKind::kCreateTable;
      stmt->create_table = std::make_unique<CreateTableStmt>();
      return ParseCreateTable(stmt->create_table.get());
    }
    bool unique = ConsumeKeyword("UNIQUE");
    bool ordered = ConsumeKeyword("ORDERED");
    if (ConsumeKeyword("INDEX")) {
      stmt->kind = StatementKind::kCreateIndex;
      stmt->create_index = std::make_unique<CreateIndexStmt>();
      stmt->create_index->unique = unique;
      stmt->create_index->ordered = ordered;
      return ParseCreateIndex(stmt->create_index.get());
    }
    if (unique || ordered) return Error("expected INDEX");
    if (ConsumeKeyword("VIEW")) {
      stmt->kind = StatementKind::kCreateView;
      stmt->create_view = std::make_unique<CreateViewStmt>();
      return ParseCreateView(stmt->create_view.get());
    }
    return Error("expected TABLE, INDEX, or VIEW after CREATE");
  }

  Status ParseCreateTable(CreateTableStmt* out) {
    if (ConsumeKeyword("IF")) {
      DB2G_RETURN_NOT_OK(ExpectKeyword("NOT"));
      DB2G_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
      out->if_not_exists = true;
    }
    DB2G_RETURN_NOT_OK(ExpectIdentifier(&out->schema.name));
    DB2G_RETURN_NOT_OK(ExpectOperator("("));
    while (true) {
      if (IsKeyword("PRIMARY")) {
        Advance();
        DB2G_RETURN_NOT_OK(ExpectKeyword("KEY"));
        DB2G_RETURN_NOT_OK(ParseNameList(&out->schema.primary_key));
      } else if (IsKeyword("FOREIGN")) {
        Advance();
        DB2G_RETURN_NOT_OK(ExpectKeyword("KEY"));
        ForeignKey fk;
        DB2G_RETURN_NOT_OK(ParseNameList(&fk.columns));
        DB2G_RETURN_NOT_OK(ExpectKeyword("REFERENCES"));
        DB2G_RETURN_NOT_OK(ExpectIdentifier(&fk.ref_table));
        DB2G_RETURN_NOT_OK(ParseNameList(&fk.ref_columns));
        out->schema.foreign_keys.push_back(std::move(fk));
      } else {
        ColumnDef col;
        DB2G_RETURN_NOT_OK(ExpectIdentifier(&col.name));
        DB2G_RETURN_NOT_OK(ParseColumnType(&col.type));
        // Column attributes in any order.
        while (true) {
          if (ConsumeKeyword("NOT")) {
            DB2G_RETURN_NOT_OK(ExpectKeyword("NULL"));
            col.not_null = true;
          } else if (IsKeyword("PRIMARY")) {
            Advance();
            DB2G_RETURN_NOT_OK(ExpectKeyword("KEY"));
            out->schema.primary_key.push_back(col.name);
            col.not_null = true;
          } else if (IsKeyword("REFERENCES")) {
            Advance();
            ForeignKey fk;
            fk.columns.push_back(col.name);
            DB2G_RETURN_NOT_OK(ExpectIdentifier(&fk.ref_table));
            DB2G_RETURN_NOT_OK(ParseNameList(&fk.ref_columns));
            out->schema.foreign_keys.push_back(std::move(fk));
          } else {
            break;
          }
        }
        out->schema.columns.push_back(std::move(col));
      }
      if (ConsumeOperator(",")) continue;
      DB2G_RETURN_NOT_OK(ExpectOperator(")"));
      break;
    }
    return Status::OK();
  }

  Status ParseColumnType(ColumnType* out) {
    std::string name;
    DB2G_RETURN_NOT_OK(ExpectIdentifier(&name));
    std::string up = ToUpper(name);
    if (up == "BIGINT" || up == "INT" || up == "INTEGER" ||
        up == "SMALLINT") {
      *out = ColumnType::kInt;
    } else if (up == "DOUBLE" || up == "FLOAT" || up == "REAL" ||
               up == "DECIMAL" || up == "NUMERIC") {
      *out = ColumnType::kDouble;
      // Optional (p, s).
      if (ConsumeOperator("(")) {
        while (!ConsumeOperator(")")) Advance();
      }
    } else if (up == "VARCHAR" || up == "CHAR" || up == "TEXT" ||
               up == "CLOB" || up == "DATE" || up == "TIMESTAMP") {
      *out = ColumnType::kString;
      if (ConsumeOperator("(")) {
        while (!ConsumeOperator(")")) Advance();
      }
    } else if (up == "BOOLEAN" || up == "BOOL") {
      *out = ColumnType::kBool;
    } else {
      return Error("unsupported column type " + name);
    }
    return Status::OK();
  }

  Status ParseNameList(std::vector<std::string>* out) {
    DB2G_RETURN_NOT_OK(ExpectOperator("("));
    while (true) {
      std::string name;
      DB2G_RETURN_NOT_OK(ExpectIdentifier(&name));
      out->push_back(std::move(name));
      if (ConsumeOperator(",")) continue;
      return ExpectOperator(")");
    }
  }

  Status ParseCreateIndex(CreateIndexStmt* out) {
    DB2G_RETURN_NOT_OK(ExpectIdentifier(&out->index_name));
    DB2G_RETURN_NOT_OK(ExpectKeyword("ON"));
    DB2G_RETURN_NOT_OK(ExpectIdentifier(&out->table));
    return ParseNameList(&out->columns);
  }

  Status ParseCreateView(CreateViewStmt* out) {
    DB2G_RETURN_NOT_OK(ExpectIdentifier(&out->name));
    DB2G_RETURN_NOT_OK(ExpectKeyword("AS"));
    size_t select_start = Peek().offset;
    DB2G_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    out->select = std::make_shared<SelectStmt>();
    DB2G_RETURN_NOT_OK(ParseSelect(out->select.get()));
    out->select_text = source_.substr(select_start);
    return Status::OK();
  }

  Status ParseDrop(Statement* stmt) {
    ExpectKeyword("DROP").ok();
    bool is_view = false;
    if (!ConsumeKeyword("TABLE")) {
      if (ConsumeKeyword("VIEW")) {
        is_view = true;
      } else {
        return Error("expected TABLE or VIEW after DROP");
      }
    }
    (void)is_view;  // tables and views share the drop path
    stmt->kind = StatementKind::kDropTable;
    stmt->drop_table = std::make_unique<DropTableStmt>();
    if (ConsumeKeyword("IF")) {
      DB2G_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
      stmt->drop_table->if_exists = true;
    }
    return ExpectIdentifier(&stmt->drop_table->table);
  }

  Status ParseInsert(Statement* stmt) {
    ExpectKeyword("INSERT").ok();
    DB2G_RETURN_NOT_OK(ExpectKeyword("INTO"));
    stmt->kind = StatementKind::kInsert;
    stmt->insert = std::make_unique<InsertStmt>();
    DB2G_RETURN_NOT_OK(ExpectIdentifier(&stmt->insert->table));
    if (IsOperator("(")) {
      DB2G_RETURN_NOT_OK(ParseNameList(&stmt->insert->columns));
    }
    DB2G_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    while (true) {
      DB2G_RETURN_NOT_OK(ExpectOperator("("));
      std::vector<std::unique_ptr<Expr>> row;
      while (true) {
        std::unique_ptr<Expr> e;
        DB2G_RETURN_NOT_OK(ParseExpr(&e));
        row.push_back(std::move(e));
        if (ConsumeOperator(",")) continue;
        DB2G_RETURN_NOT_OK(ExpectOperator(")"));
        break;
      }
      stmt->insert->rows.push_back(std::move(row));
      if (!ConsumeOperator(",")) break;
    }
    return Status::OK();
  }

  Status ParseUpdate(Statement* stmt) {
    ExpectKeyword("UPDATE").ok();
    stmt->kind = StatementKind::kUpdate;
    stmt->update = std::make_unique<UpdateStmt>();
    DB2G_RETURN_NOT_OK(ExpectIdentifier(&stmt->update->table));
    DB2G_RETURN_NOT_OK(ExpectKeyword("SET"));
    while (true) {
      std::string column;
      DB2G_RETURN_NOT_OK(ExpectIdentifier(&column));
      DB2G_RETURN_NOT_OK(ExpectOperator("="));
      std::unique_ptr<Expr> e;
      DB2G_RETURN_NOT_OK(ParseExpr(&e));
      stmt->update->assignments.emplace_back(std::move(column), std::move(e));
      if (!ConsumeOperator(",")) break;
    }
    if (ConsumeKeyword("WHERE")) {
      DB2G_RETURN_NOT_OK(ParseExpr(&stmt->update->where));
    }
    return Status::OK();
  }

  Status ParseGrant(Statement* stmt) {
    bool revoke = ConsumeKeyword("REVOKE");
    if (!revoke) {
      DB2G_RETURN_NOT_OK(ExpectKeyword("GRANT"));
    }
    stmt->kind = revoke ? StatementKind::kRevoke : StatementKind::kGrant;
    stmt->grant = std::make_unique<GrantStmt>();
    stmt->grant->is_revoke = revoke;
    if (ConsumeKeyword("ALL")) {
      ConsumeKeyword("PRIVILEGES");
      stmt->grant->select_only = false;
    } else {
      DB2G_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    }
    DB2G_RETURN_NOT_OK(ExpectKeyword("ON"));
    ConsumeKeyword("TABLE");
    DB2G_RETURN_NOT_OK(ExpectIdentifier(&stmt->grant->table));
    if (revoke) {
      DB2G_RETURN_NOT_OK(ExpectKeyword("FROM"));
    } else {
      DB2G_RETURN_NOT_OK(ExpectKeyword("TO"));
    }
    return ExpectIdentifier(&stmt->grant->user);
  }

  Status ParseDelete(Statement* stmt) {
    ExpectKeyword("DELETE").ok();
    DB2G_RETURN_NOT_OK(ExpectKeyword("FROM"));
    stmt->kind = StatementKind::kDelete;
    stmt->del = std::make_unique<DeleteStmt>();
    DB2G_RETURN_NOT_OK(ExpectIdentifier(&stmt->del->table));
    if (ConsumeKeyword("WHERE")) {
      DB2G_RETURN_NOT_OK(ParseExpr(&stmt->del->where));
    }
    return Status::OK();
  }

  Status ParseSelect(SelectStmt* out) {
    // Caller consumed SELECT.
    out->distinct = ConsumeKeyword("DISTINCT");
    ConsumeKeyword("ALL");
    while (true) {
      SelectItem item;
      DB2G_RETURN_NOT_OK(ParseExpr(&item.expr));
      if (ConsumeKeyword("AS")) {
        DB2G_RETURN_NOT_OK(ExpectIdentifier(&item.alias));
      } else if (Peek().type == TokenType::kIdentifier &&
                 !IsAnyKeyword(Peek().text)) {
        item.alias = Advance().text;
      }
      out->items.push_back(std::move(item));
      if (!ConsumeOperator(",")) break;
    }
    if (ConsumeKeyword("FROM")) {
      while (true) {
        TableRef ref;
        DB2G_RETURN_NOT_OK(ParseTableRef(&ref));
        out->from.push_back(std::move(ref));
        if (!ConsumeOperator(",")) break;
      }
      // JOIN chain.
      while (true) {
        JoinClause join;
        if (ConsumeKeyword("JOIN") ||
            (IsKeyword("INNER") && IsKeyword("JOIN", 1) &&
             (Advance(), ConsumeKeyword("JOIN")))) {
          join.kind = JoinClause::Kind::kInner;
        } else if (IsKeyword("LEFT")) {
          Advance();
          ConsumeKeyword("OUTER");
          DB2G_RETURN_NOT_OK(ExpectKeyword("JOIN"));
          join.kind = JoinClause::Kind::kLeft;
        } else {
          break;
        }
        DB2G_RETURN_NOT_OK(ParseTableRef(&join.table));
        DB2G_RETURN_NOT_OK(ExpectKeyword("ON"));
        DB2G_RETURN_NOT_OK(ParseExpr(&join.on));
        out->joins.push_back(std::move(join));
      }
    }
    if (ConsumeKeyword("WHERE")) {
      DB2G_RETURN_NOT_OK(ParseExpr(&out->where));
    }
    if (ConsumeKeyword("GROUP")) {
      DB2G_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        std::unique_ptr<Expr> e;
        DB2G_RETURN_NOT_OK(ParseExpr(&e));
        out->group_by.push_back(std::move(e));
        if (!ConsumeOperator(",")) break;
      }
    }
    if (ConsumeKeyword("HAVING")) {
      DB2G_RETURN_NOT_OK(ParseExpr(&out->having));
    }
    if (ConsumeKeyword("ORDER")) {
      DB2G_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        DB2G_RETURN_NOT_OK(ParseExpr(&item.expr));
        if (ConsumeKeyword("DESC")) {
          item.descending = true;
        } else {
          ConsumeKeyword("ASC");
        }
        out->order_by.push_back(std::move(item));
        if (!ConsumeOperator(",")) break;
      }
    }
    if (ConsumeKeyword("LIMIT") || ConsumeKeyword("FETCH")) {
      // Accept both LIMIT n and FETCH FIRST n ROWS ONLY.
      ConsumeKeyword("FIRST");
      if (Peek().type != TokenType::kNumber) {
        return Error("expected a row count");
      }
      out->limit = Advance().value.as_int();
      ConsumeKeyword("ROWS");
      ConsumeKeyword("ROW");
      ConsumeKeyword("ONLY");
    }
    return Status::OK();
  }

  Status ParseTableRef(TableRef* out) {
    if (ConsumeKeyword("TABLE")) {
      // TABLE ( func ( args... ) ) AS alias ( col type, ... )
      out->kind = TableRef::Kind::kTableFunction;
      DB2G_RETURN_NOT_OK(ExpectOperator("("));
      DB2G_RETURN_NOT_OK(ExpectIdentifier(&out->function_name));
      DB2G_RETURN_NOT_OK(ExpectOperator("("));
      if (!IsOperator(")")) {
        while (true) {
          std::unique_ptr<Expr> e;
          DB2G_RETURN_NOT_OK(ParseExpr(&e));
          out->function_args.push_back(std::move(e));
          if (!ConsumeOperator(",")) break;
        }
      }
      DB2G_RETURN_NOT_OK(ExpectOperator(")"));
      DB2G_RETURN_NOT_OK(ExpectOperator(")"));
      ConsumeKeyword("AS");
      DB2G_RETURN_NOT_OK(ExpectIdentifier(&out->alias));
      DB2G_RETURN_NOT_OK(ExpectOperator("("));
      while (true) {
        ColumnDef col;
        DB2G_RETURN_NOT_OK(ExpectIdentifier(&col.name));
        DB2G_RETURN_NOT_OK(ParseColumnType(&col.type));
        out->function_columns.push_back(std::move(col));
        if (ConsumeOperator(",")) continue;
        DB2G_RETURN_NOT_OK(ExpectOperator(")"));
        break;
      }
      return Status::OK();
    }
    if (ConsumeOperator("(")) {
      out->kind = TableRef::Kind::kSubquery;
      DB2G_RETURN_NOT_OK(ExpectKeyword("SELECT"));
      out->subquery = std::make_shared<SelectStmt>();
      DB2G_RETURN_NOT_OK(ParseSelect(out->subquery.get()));
      DB2G_RETURN_NOT_OK(ExpectOperator(")"));
      ConsumeKeyword("AS");
      DB2G_RETURN_NOT_OK(ExpectIdentifier(&out->alias));
      return Status::OK();
    }
    out->kind = TableRef::Kind::kTable;
    DB2G_RETURN_NOT_OK(ExpectIdentifier(&out->table));
    out->alias = out->table;
    if (ConsumeOperator(".")) {
      // Qualified name (schema.table, e.g. sysmon.query_log): the catalog
      // key is the full dotted name; the default alias is the bare part.
      std::string member;
      DB2G_RETURN_NOT_OK(ExpectIdentifier(&member));
      out->table += "." + member;
      out->alias = std::move(member);
    }
    if (ConsumeKeyword("AS")) {
      DB2G_RETURN_NOT_OK(ExpectIdentifier(&out->alias));
    } else if (Peek().type == TokenType::kIdentifier &&
               !IsAnyKeyword(Peek().text)) {
      out->alias = Advance().text;
    }
    return Status::OK();
  }

  // Keywords that terminate an implicit alias position.
  static bool IsAnyKeyword(const std::string& word) {
    static const char* kWords[] = {
        "FROM",  "WHERE", "GROUP",  "ORDER",  "LIMIT", "FETCH", "JOIN",
        "INNER", "LEFT",  "RIGHT",  "OUTER",  "ON",    "AS",    "AND",
        "OR",    "NOT",   "IN",     "IS",     "NULL",  "LIKE",  "BY",
        "ASC",   "DESC",  "VALUES", "SET",    "UNION", "HAVING", "TABLE",
        "DISTINCT", "BETWEEN"};
    for (const char* k : kWords) {
      if (EqualsIgnoreCase(word, k)) return true;
    }
    return false;
  }

  // ---- expressions ----------------------------------------------------
  // or_expr := and_expr (OR and_expr)*
  Status ParseExpr(std::unique_ptr<Expr>* out) {
    DB2G_RETURN_NOT_OK(ParseAnd(out));
    while (ConsumeKeyword("OR")) {
      std::unique_ptr<Expr> rhs;
      DB2G_RETURN_NOT_OK(ParseAnd(&rhs));
      *out = MakeBinary("OR", std::move(*out), std::move(rhs));
    }
    return Status::OK();
  }

  Status ParseAnd(std::unique_ptr<Expr>* out) {
    DB2G_RETURN_NOT_OK(ParseNot(out));
    while (ConsumeKeyword("AND")) {
      std::unique_ptr<Expr> rhs;
      DB2G_RETURN_NOT_OK(ParseNot(&rhs));
      *out = MakeBinary("AND", std::move(*out), std::move(rhs));
    }
    return Status::OK();
  }

  Status ParseNot(std::unique_ptr<Expr>* out) {
    if (ConsumeKeyword("NOT")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->op = "NOT";
      std::unique_ptr<Expr> child;
      DB2G_RETURN_NOT_OK(ParseNot(&child));
      e->children.push_back(std::move(child));
      *out = std::move(e);
      return Status::OK();
    }
    return ParseComparison(out);
  }

  Status ParseComparison(std::unique_ptr<Expr>* out) {
    DB2G_RETURN_NOT_OK(ParseAdditive(out));
    // IS [NOT] NULL
    if (ConsumeKeyword("IS")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIsNull;
      e->negated = ConsumeKeyword("NOT");
      DB2G_RETURN_NOT_OK(ExpectKeyword("NULL"));
      e->children.push_back(std::move(*out));
      *out = std::move(e);
      return Status::OK();
    }
    bool negated = false;
    if (IsKeyword("NOT") && (IsKeyword("IN", 1) || IsKeyword("LIKE", 1) ||
                             IsKeyword("BETWEEN", 1))) {
      Advance();
      negated = true;
    }
    if (ConsumeKeyword("IN")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kIn;
      e->negated = negated;
      e->children.push_back(std::move(*out));
      DB2G_RETURN_NOT_OK(ExpectOperator("("));
      if (!IsOperator(")")) {
        while (true) {
          std::unique_ptr<Expr> item;
          DB2G_RETURN_NOT_OK(ParseAdditive(&item));
          e->children.push_back(std::move(item));
          if (!ConsumeOperator(",")) break;
        }
      }
      DB2G_RETURN_NOT_OK(ExpectOperator(")"));
      *out = std::move(e);
      return Status::OK();
    }
    if (ConsumeKeyword("LIKE")) {
      std::unique_ptr<Expr> rhs;
      DB2G_RETURN_NOT_OK(ParseAdditive(&rhs));
      *out = MakeBinary("LIKE", std::move(*out), std::move(rhs));
      if (negated) {
        auto n = std::make_unique<Expr>();
        n->kind = ExprKind::kUnary;
        n->op = "NOT";
        n->children.push_back(std::move(*out));
        *out = std::move(n);
      }
      return Status::OK();
    }
    if (ConsumeKeyword("BETWEEN")) {
      std::unique_ptr<Expr> lo;
      std::unique_ptr<Expr> hi;
      DB2G_RETURN_NOT_OK(ParseAdditive(&lo));
      DB2G_RETURN_NOT_OK(ExpectKeyword("AND"));
      DB2G_RETURN_NOT_OK(ParseAdditive(&hi));
      auto ge = MakeBinary(">=", (*out)->Clone(), std::move(lo));
      auto le = MakeBinary("<=", std::move(*out), std::move(hi));
      *out = MakeBinary("AND", std::move(ge), std::move(le));
      if (negated) {
        auto n = std::make_unique<Expr>();
        n->kind = ExprKind::kUnary;
        n->op = "NOT";
        n->children.push_back(std::move(*out));
        *out = std::move(n);
      }
      return Status::OK();
    }
    static const char* kComparators[] = {"=", "<>", "!=", "<=", ">=",
                                         "<", ">"};
    for (const char* op : kComparators) {
      if (IsOperator(op)) {
        Advance();
        std::unique_ptr<Expr> rhs;
        DB2G_RETURN_NOT_OK(ParseAdditive(&rhs));
        *out = MakeBinary(op, std::move(*out), std::move(rhs));
        return Status::OK();
      }
    }
    return Status::OK();
  }

  Status ParseAdditive(std::unique_ptr<Expr>* out) {
    DB2G_RETURN_NOT_OK(ParseMultiplicative(out));
    while (IsOperator("+") || IsOperator("-") || IsOperator("||")) {
      std::string op = Advance().text;
      std::unique_ptr<Expr> rhs;
      DB2G_RETURN_NOT_OK(ParseMultiplicative(&rhs));
      *out = MakeBinary(op, std::move(*out), std::move(rhs));
    }
    return Status::OK();
  }

  Status ParseMultiplicative(std::unique_ptr<Expr>* out) {
    DB2G_RETURN_NOT_OK(ParseUnary(out));
    while (IsOperator("*") || IsOperator("/") || IsOperator("%")) {
      std::string op = Advance().text;
      std::unique_ptr<Expr> rhs;
      DB2G_RETURN_NOT_OK(ParseUnary(&rhs));
      *out = MakeBinary(op, std::move(*out), std::move(rhs));
    }
    return Status::OK();
  }

  Status ParseUnary(std::unique_ptr<Expr>* out) {
    if (IsOperator("-")) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->op = "-";
      std::unique_ptr<Expr> child;
      DB2G_RETURN_NOT_OK(ParseUnary(&child));
      e->children.push_back(std::move(child));
      *out = std::move(e);
      return Status::OK();
    }
    return ParsePrimary(out);
  }

  Status ParsePrimary(std::unique_ptr<Expr>* out) {
    const Token& t = Peek();
    if (t.type == TokenType::kNumber || t.type == TokenType::kString) {
      *out = MakeLiteral(Advance().value);
      return Status::OK();
    }
    if (IsOperator("?")) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kParam;
      e->param_index = param_count_++;
      *out = std::move(e);
      return Status::OK();
    }
    if (IsOperator("*")) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kStar;
      *out = std::move(e);
      return Status::OK();
    }
    if (ConsumeOperator("(")) {
      DB2G_RETURN_NOT_OK(ParseExpr(out));
      return ExpectOperator(")");
    }
    if (t.type == TokenType::kIdentifier) {
      if (EqualsIgnoreCase(t.text, "NULL")) {
        Advance();
        *out = MakeLiteral(Value::Null());
        return Status::OK();
      }
      if (EqualsIgnoreCase(t.text, "TRUE") ||
          EqualsIgnoreCase(t.text, "FALSE")) {
        *out = MakeLiteral(Value(EqualsIgnoreCase(Advance().text, "TRUE")));
        return Status::OK();
      }
      std::string first = Advance().text;
      // Function call?
      if (IsOperator("(")) {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kFuncCall;
        e->op = first;
        if (!IsOperator(")")) {
          ConsumeKeyword("DISTINCT");  // COUNT(DISTINCT x): treated as COUNT
          while (true) {
            std::unique_ptr<Expr> arg;
            DB2G_RETURN_NOT_OK(ParseExpr(&arg));
            e->children.push_back(std::move(arg));
            if (!ConsumeOperator(",")) break;
          }
        }
        DB2G_RETURN_NOT_OK(ExpectOperator(")"));
        *out = std::move(e);
        return Status::OK();
      }
      // alias.column / alias.*
      if (ConsumeOperator(".")) {
        if (ConsumeOperator("*")) {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kStar;
          e->table_alias = first;
          *out = std::move(e);
          return Status::OK();
        }
        std::string column;
        DB2G_RETURN_NOT_OK(ExpectIdentifier(&column));
        *out = MakeColumnRef(first, column);
        return Status::OK();
      }
      *out = MakeColumnRef("", first);
      return Status::OK();
    }
    return Error("expected an expression");
  }

 public:
  void set_source(std::string s) { source_ = std::move(s); }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int param_count_ = 0;
  std::string source_;
};

}  // namespace

Result<std::unique_ptr<Statement>> ParseSql(const std::string& sql,
                                            int* param_count) {
  Result<std::vector<Token>> tokens = Tokenize(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(*tokens));
  parser.set_source(sql);
  Result<std::unique_ptr<Statement>> stmt = parser.ParseStatement();
  if (stmt.ok() && param_count != nullptr) {
    *param_count = parser.param_count();
  }
  return stmt;
}

}  // namespace db2graph::sql
