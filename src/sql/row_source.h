// Copyright (c) 2026 The db2graph-repro Authors.
//
// Block-at-a-time execution interface. Operators produce rows in blocks
// (default 1024) pulled lazily from the root: the consumer asks for the
// next block, the operator fills it from its own upstream, and a LIMIT
// at the root shrinks the requested capacity so upstream scans stop as
// soon as the budget is met.

#ifndef DB2GRAPH_SQL_ROW_SOURCE_H_
#define DB2GRAPH_SQL_ROW_SOURCE_H_

#include <cstddef>
#include <vector>

#include "common/value.h"

namespace db2graph::sql {

/// Default number of rows per block.
inline constexpr size_t kDefaultBlockRows = 1024;

/// One batch of rows flowing between operators. The *puller* sets
/// `capacity` before calling Next(); the producer fills at most that many
/// rows. Shrinking the capacity is how LIMIT propagates a row budget
/// upstream without a dedicated control channel.
struct RowBlock {
  std::vector<Row> rows;
  size_t capacity = kDefaultBlockRows;

  void Clear() { rows.clear(); }
  bool full() const { return rows.size() >= capacity; }
};

class Table;

/// One batch of the vectorized execution path: a selection vector of slot
/// numbers over a single base table. Operators on this path never touch
/// rows — a scan emits the live slots, a filter kernel narrows `sel`, and
/// values are fetched late, straight from the table's column vectors, by
/// whatever sits at the top (projection, aggregation, or the
/// row-materialization adapter that feeds the classic RowBlock tree).
/// Same capacity contract as RowBlock: the puller sets `capacity`, the
/// producer fills at most that many selected slots.
struct ColumnBlock {
  const Table* table = nullptr;
  std::vector<uint64_t> sel;  // selected slot numbers, ascending
  size_t capacity = kDefaultBlockRows;

  void Clear() { sel.clear(); }
  bool full() const { return sel.size() >= capacity; }
};

/// Pull-based operator interface.
///
/// Contract: Next() clears `out->rows` and appends up to `out->capacity`
/// rows. It returns true iff at least one row was produced (operators
/// loop internally rather than returning an empty block), false when the
/// source is exhausted or failed — the error, if any, is reported through
/// the owning plan/stream's status(). After Close() (idempotent), Next()
/// returns false; Close() releases upstream resources eagerly, which is
/// what cancels still-pending work under early termination.
class RowSource {
 public:
  virtual ~RowSource() = default;
  virtual bool Next(RowBlock* out) = 0;
  virtual void Close() = 0;
};

}  // namespace db2graph::sql

#endif  // DB2GRAPH_SQL_ROW_SOURCE_H_
