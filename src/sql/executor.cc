#include "sql/executor.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/exec_config.h"
#include "common/fault_injection.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "common/workload_governor.h"
#include "sql/database.h"
#include "sql/expr.h"
#include "sql/table.h"

namespace db2graph::sql {

namespace {

// ---------------------------------------------------------------------
// Predicate decomposition helpers
// ---------------------------------------------------------------------

// Splits a boolean expression into its top-level AND conjuncts.
void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary && expr->op == "AND") {
    SplitConjuncts(expr->children[0].get(), out);
    SplitConjuncts(expr->children[1].get(), out);
    return;
  }
  out->push_back(expr);
}

// True when every column reference in `expr` resolves in `scope`.
bool BindsIn(const Expr& expr, const Scope& scope) {
  if (expr.kind == ExprKind::kColumnRef) {
    return scope.Resolve(expr.table_alias, expr.column).ok();
  }
  if (expr.kind == ExprKind::kStar) return false;
  for (const auto& child : expr.children) {
    if (!BindsIn(*child, scope)) return false;
  }
  return true;
}

// A predicate usable for index probing on the newly joined relation:
// `column` belongs to that relation and every `value` expression binds in
// the pre-join scope (so it is computable per outer row).
struct ProbeTerm {
  size_t column_index;                   // within the inner relation
  std::vector<const Expr*> values;       // 1 = equality, >1 = IN list
};

}  // namespace

// ---------------------------------------------------------------------
// Relation resolution
// ---------------------------------------------------------------------

Result<Executor::Relation> Executor::ResolveRef(const TableRef& ref) {
  Relation rel;
  rel.alias = ref.alias;
  switch (ref.kind) {
    case TableRef::Kind::kTable: {
      if (!skip_access_checks_) {
        DB2G_RETURN_NOT_OK(db_->CheckAccess(ref.table, /*write=*/false));
      }
      if (Table* table = db_->GetTable(ref.table)) {
        rel.table = table;
        rel.columns = table->schema().ColumnNames();
        return rel;
      }
      if (const VirtualTableDef* vt = db_->FindVirtualTable(ref.table)) {
        // Materialize a point-in-time snapshot. The relation owns it, so
        // downstream operators treat it exactly like a base table (index-
        // free, so scans — including the vectorized path — apply).
        Result<std::shared_ptr<Table>> snapshot = MaterializeVirtualTable(*vt);
        if (!snapshot.ok()) return snapshot.status();
        rel.owned = std::move(*snapshot);
        rel.table = rel.owned.get();
        rel.columns = rel.owned->schema().ColumnNames();
        return rel;
      }
      if (db_->IsView(ref.table)) {
        // Expand the non-materialized view by executing its definition.
        const TableSchema* schema = db_->GetSchema(ref.table);
        SelectStmt* view_select = nullptr;
        {
          auto it = db_->views_.find(CatalogKey(ref.table));
          view_select = it->second.select.get();
        }
        Executor sub(db_, nullptr);
        sub.set_skip_access_checks(true);  // definer's rights
        Result<ResultSet> rs = sub.Select(*view_select);
        if (!rs.ok()) return rs.status();
        rel.columns = schema->ColumnNames();
        rel.rows = std::move(rs->rows);
        return rel;
      }
      return Status::NotFound("unknown table or view: " + ref.table);
    }
    case TableRef::Kind::kSubquery: {
      Executor sub(db_, params_);
      Result<ResultSet> rs = sub.Select(*ref.subquery);
      if (!rs.ok()) return rs.status();
      rel.columns = rs->columns;
      rel.rows = std::move(rs->rows);
      return rel;
    }
    case TableRef::Kind::kTableFunction: {
      const Database::TableFunction* fn =
          db_->FindTableFunction(ref.function_name);
      if (fn == nullptr) {
        return Status::NotFound("unknown table function: " +
                                ref.function_name);
      }
      std::vector<Value> args;
      Row empty;
      for (const auto& arg : ref.function_args) {
        args.push_back(EvalExpr(*arg, empty, params_));
      }
      Result<ResultSet> rs = (*fn)(args);
      if (!rs.ok()) return rs.status();
      // The declared column list names (and truncates/pads) the output.
      for (const ColumnDef& c : ref.function_columns) {
        rel.columns.push_back(c.name);
      }
      rel.rows.reserve(rs->rows.size());
      for (Row& row : rs->rows) {
        row.resize(ref.function_columns.size());
        rel.rows.push_back(std::move(row));
      }
      return rel;
    }
  }
  return Status::Internal("unreachable table ref kind");
}

// ---------------------------------------------------------------------
// Aggregation machinery
// ---------------------------------------------------------------------

namespace {

struct AggSpec {
  const Expr* node;   // the aggregate kFuncCall node
  std::string op;     // upper-cased
  const Expr* arg;    // nullptr for COUNT(*)
};

void CollectAggregates(const Expr* expr, std::vector<AggSpec>* out) {
  if (expr->kind == ExprKind::kFuncCall && IsAggregateName(expr->op)) {
    AggSpec spec;
    spec.node = expr;
    spec.op = ToUpper(expr->op);
    spec.arg = expr->children.empty() ||
                       expr->children[0]->kind == ExprKind::kStar
                   ? nullptr
                   : expr->children[0].get();
    out->push_back(spec);
    return;  // no nested aggregates
  }
  for (const auto& child : expr->children) {
    CollectAggregates(child.get(), out);
  }
}

struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value min;
  Value max;

  void Accumulate(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.is_numeric()) {
      sum += v.NumericValue();
      if (v.is_int()) {
        isum += v.as_int();
      } else {
        sum_is_int = false;
      }
    } else {
      sum_is_int = false;
    }
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || v > max) max = v;
  }

  Value Finish(const std::string& op) const {
    if (op == "COUNT") return Value(count);
    if (count == 0) return Value::Null();
    if (op == "SUM") return sum_is_int ? Value(isum) : Value(sum);
    if (op == "AVG") return Value(sum / static_cast<double>(count));
    if (op == "MIN") return min;
    if (op == "MAX") return max;
    return Value::Null();
  }

  // Folds in a partial state produced by a parallel morsel worker.
  // COUNT/MIN/MAX and integer sums are exact under any merge order;
  // double sums reassociate, so the barrier merges partials in morsel
  // order — run-to-run deterministic for a fixed dop, though the low bits
  // may differ from the serial left-to-right sum.
  void Merge(const AggState& other) {
    count += other.count;
    sum += other.sum;
    isum += other.isum;
    sum_is_int = sum_is_int && other.sum_is_int;
    if (!other.min.is_null() && (min.is_null() || other.min < min)) {
      min = other.min;
    }
    if (!other.max.is_null() && (max.is_null() || other.max > max)) {
      max = other.max;
    }
  }
};

// Evaluates an expression in which aggregate nodes have precomputed values.
Value EvalWithAggregates(
    const Expr& expr, const Row& row, const std::vector<Value>* params,
    const std::unordered_map<const Expr*, Value>& agg_values) {
  auto it = agg_values.find(&expr);
  if (it != agg_values.end()) return it->second;
  if (!ContainsAggregate(expr)) return EvalExpr(expr, row, params);
  // Recurse through composite nodes that contain aggregates below.
  Expr shallow;
  shallow.kind = expr.kind;
  shallow.op = expr.op;
  shallow.negated = expr.negated;
  shallow.literal = expr.literal;
  shallow.param_index = expr.param_index;
  shallow.bound_index = expr.bound_index;
  for (const auto& child : expr.children) {
    shallow.children.push_back(
        MakeLiteral(EvalWithAggregates(*child, row, params, agg_values)));
  }
  return EvalExpr(shallow, row, params);
}

std::string OutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column;
  return item.expr->ToString();
}

}  // namespace

// ---------------------------------------------------------------------
// Operator tree
// ---------------------------------------------------------------------
//
// Compile() turns a SELECT into a chain of pull operators:
//
//   Seed -> JoinStage* -> Filter? -> (Aggregate | SortProject | Project)
//        -> Distinct? -> Limit?
//
// Every operator obeys the RowSource block contract. JoinStage covers both
// the scan of the first FROM relation (its upstream is the one-empty-row
// Seed) and each subsequent join, with the same access-path selection as
// the materialized executor had: index probe, then (for materialized or
// unindexed relations with >1 outer row) a transient hash join, then an
// ordered-index range scan, then a full scan. Counters are incremented per
// row actually visited, so early termination is visible in ExecInfo.

namespace exec_ops {

struct PlanContext {
  Database* db = nullptr;
  const std::vector<Value>* params = nullptr;
  size_t block_rows = kDefaultBlockRows;
  /// Resolved ExecConfig degree of parallelism: >1 lets eligible
  /// operators (parallel scan/aggregate, sharded hash-join build,
  /// parallel sort) dispatch morsels to the shared pool.
  int dop = 1;
  ExecInfo exec;
  Status error = Status::OK();
  /// EXPLAIN [ANALYZE] / Database::profile_execution: each operator gets a
  /// wrapper that records into one node here. deque: the wrappers hold
  /// stable pointers while compilation keeps appending. Leaf-first order.
  bool profiled = false;
  std::deque<OpProfile> profiles;
};

// Cooperative workload-governor check, called by the block-producing
// operators (the join/scan stages both operator trees pull through) at
// each block boundary. A deadline / cancellation / budget violation lands
// in the plan's error slot exactly like an operator failure, so the
// existing unwind path — every upstream Next() observes the error and
// stops — carries it to the root. Ungoverned executions pay one
// thread-local read.
bool GovernorOk(PlanContext* ctx) {
  if (!ctx->error.ok()) return false;
  Status st = governor::CheckCurrent();
  if (!st.ok()) {
    ctx->error = std::move(st);
    return false;
  }
  return true;
}

class Op {
 public:
  explicit Op(PlanContext* ctx) : ctx_(ctx) {}
  virtual ~Op() = default;
  virtual bool Next(RowBlock* out) = 0;
  virtual void Close() = 0;

 protected:
  PlanContext* ctx_;
};

// Emits a single empty row: the seed the first join stage crosses with.
class SeedOp : public Op {
 public:
  using Op::Op;
  bool Next(RowBlock* out) override {
    out->Clear();
    if (done_) return false;
    done_ = true;
    out->rows.emplace_back();
    return true;
  }
  void Close() override { done_ = true; }

 private:
  bool done_ = false;
};

// The relation a join stage reads (mirror of Executor::Relation, moved in
// so the operator owns materialized rows).
struct PlanRelation {
  std::string alias;
  std::vector<std::string> columns;
  const Table* table = nullptr;
  std::vector<Row> rows;
  bool materialized() const { return table == nullptr; }
};

struct StageConfig {
  PlanRelation relation;
  std::vector<const Expr*> preds;  // ON + eligible WHERE conjuncts
  bool left = false;

  // Index-probe access path.
  const Index* index = nullptr;
  std::vector<ProbeTerm> probe_terms;

  // Hash-join candidate (used when no index and >1 outer row).
  bool has_hash = false;
  size_t hash_column = 0;          // inner column
  const Expr* hash_key = nullptr;  // outer-side expression

  // Ordered-index range access path.
  const OrderedIndex* range_index = nullptr;
  const Expr* range_lo = nullptr;
  const Expr* range_hi = nullptr;
  bool range_lo_excl = false;
  bool range_hi_excl = false;
};

class JoinStageOp : public Op {
 public:
  JoinStageOp(PlanContext* ctx, std::unique_ptr<Op> child, StageConfig cfg)
      : Op(ctx), child_(std::move(child)), cfg_(std::move(cfg)) {
    ctx_->exec.scalar_ops += 1;
  }

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    if (!GovernorOk(ctx_)) return false;
    DB2G_FAILPOINT_STATUS("sql.executor.block", ctx_->error);
    if (!ctx_->error.ok()) return false;
    pull_cap_ = std::min(ctx_->block_rows, std::max<size_t>(out->capacity, 1));
    EnsureDecided();
    while (out->rows.size() < out->capacity) {
      if (phase_ == Phase::kNeedOuter) {
        if (!FetchNextOuter()) break;
        StartCursor();
        matched_ = false;
        phase_ = Phase::kDraining;
      } else if (phase_ == Phase::kDraining) {
        if (!NextJoined()) {
          phase_ = (!matched_ && cfg_.left) ? Phase::kPendingLeft
                                            : Phase::kNeedOuter;
          continue;
        }
        EmitIfMatch(out);
      } else {  // kPendingLeft: null-extend the unmatched outer row
        Row joined = outer_;
        joined.resize(joined.size() + cfg_.relation.columns.size());
        out->rows.push_back(std::move(joined));
        phase_ = Phase::kNeedOuter;
      }
    }
    return !out->rows.empty();
  }

  void Close() override {
    if (closed_) return;
    closed_ = true;
    child_->Close();
    hash_table_.clear();
    shards_.clear();
    outer_buffer_.clear();
    rids_.clear();
  }

 private:
  enum class Phase { kNeedOuter, kDraining, kPendingLeft };
  enum class CursorKind { kRids, kHash, kScan, kRows };

  void PullChild() {
    child_block_.capacity = pull_cap_;
    if (child_->Next(&child_block_)) {
      for (Row& r : child_block_.rows) outer_buffer_.push_back(std::move(r));
    } else {
      child_eof_ = true;
    }
  }

  // Decides nested-loop vs hash once, mirroring the materialized rule
  // "hash only with more than one outer row": buffer outer rows until two
  // arrive (or upstream ends), then build the table if they did.
  void EnsureDecided() {
    if (decided_) return;
    decided_ = true;
    if (cfg_.index != nullptr || !cfg_.has_hash) return;
    while (outer_buffer_.size() < 2 && !child_eof_) PullChild();
    if (outer_buffer_.size() < 2) return;
    hash_mode_ = true;
    const PlanRelation& rel = cfg_.relation;
    size_t build_slots =
        rel.materialized() ? rel.rows.size() : rel.table->slot_count();
    if (ctx_->dop > 1 && build_slots >= kParallelBuildMinSlots) {
      BuildSharded(build_slots);
      return;
    }
    if (rel.materialized()) {
      for (size_t r = 0; r < rel.rows.size(); ++r) {
        hash_table_.emplace(rel.rows[r][cfg_.hash_column], r);
      }
    } else {
      for (RowId rid = 0; rid < rel.table->slot_count(); ++rid) {
        if (!rel.table->IsLive(rid)) continue;
        hash_table_.emplace(rel.table->ValueAt(rid, cfg_.hash_column), rid);
      }
    }
  }

  // ClickHouse ConcurrentHashJoin-style sharded build. Phase 1 scatters
  // (key, slot) pairs into per-(morsel, shard) buckets — shard =
  // ValueHash(key) % shard_count — with one pool task per morsel. Phase 2
  // builds each shard's multimap from its buckets in morsel order, one
  // pool task per shard, no locks: a shard is owned by exactly one task.
  // Equal keys land in one shard and are inserted in ascending-slot order
  // (morsel order == slot order), i.e. the same insertion sequence the
  // serial loop produces, so probes see identical match order. Probes are
  // lock-free reads: shard = ValueHash(probe key) % shard_count.
  void BuildSharded(size_t build_slots) {
    const PlanRelation& rel = cfg_.relation;
    const size_t shard_count = static_cast<size_t>(ctx_->dop);
    const size_t morsel_slots = kBuildMorselSlots;
    const size_t morsel_count = (build_slots + morsel_slots - 1) / morsel_slots;
    struct BuildPair {
      Value key;
      size_t slot;
    };
    // buckets[morsel][shard] -> pairs scattered while that morsel was
    // scanned. Workers are capped at dop: each task owns a contiguous
    // morsel range but still fills per-morsel buckets, which is what lets
    // phase 2 replay insertions in morsel (== slot) order.
    std::vector<std::vector<std::vector<BuildPair>>> buckets(morsel_count);
    std::vector<Status> morsel_status(morsel_count, Status::OK());
    const size_t task_count = std::min(shard_count, morsel_count);
    const size_t morsels_per_task = (morsel_count + task_count - 1) / task_count;
    governor::QueryContext* qc = governor::CurrentQueryContext();
    ThreadPool::Shared().RunBatch(task_count, [&](size_t t) {
      governor::ScopedQueryContext governed(qc);
      size_t m_lo = t * morsels_per_task;
      size_t m_hi = std::min(morsel_count, m_lo + morsels_per_task);
      for (size_t m = m_lo; m < m_hi; ++m) {
        Status st = governor::CheckCurrent();
        if (!st.ok()) {
          morsel_status[m] = std::move(st);
          return;
        }
        std::vector<std::vector<BuildPair>>& local = buckets[m];
        local.resize(shard_count);
        size_t lo = m * morsel_slots;
        size_t hi = std::min(build_slots, lo + morsel_slots);
        if (rel.materialized()) {
          for (size_t r = lo; r < hi; ++r) {
            const Value& key = rel.rows[r][cfg_.hash_column];
            local[ValueHash{}(key) % shard_count].push_back({key, r});
          }
        } else {
          for (RowId rid = lo; rid < hi; ++rid) {
            if (!rel.table->IsLive(rid)) continue;
            Value key = rel.table->ValueAt(rid, cfg_.hash_column);
            size_t shard = ValueHash{}(key) % shard_count;
            local[shard].push_back({std::move(key), rid});
          }
        }
      }
    });
    for (size_t m = 0; m < morsel_count; ++m) {
      if (!morsel_status[m].ok()) {
        if (ctx_->error.ok()) ctx_->error = std::move(morsel_status[m]);
        return;
      }
    }
    shards_.resize(shard_count);
    ThreadPool::Shared().RunBatch(shard_count, [&](size_t s) {
      governor::ScopedQueryContext governed(qc);
      for (size_t m = 0; m < morsel_count; ++m) {
        if (buckets[m].empty()) continue;  // governor stopped this morsel
        for (BuildPair& pair : buckets[m][s]) {
          shards_[s].emplace(std::move(pair.key), pair.slot);
        }
      }
    });
    sharded_ = true;
    ctx_->exec.dop = std::max<uint64_t>(ctx_->exec.dop, shard_count);
    ctx_->exec.morsels += morsel_count + shard_count;
  }

  bool FetchNextOuter() {
    while (outer_buffer_.empty() && !child_eof_) PullChild();
    if (outer_buffer_.empty()) return false;
    outer_ = std::move(outer_buffer_.front());
    outer_buffer_.pop_front();
    return true;
  }

  void StartCursor() {
    const PlanRelation& rel = cfg_.relation;
    rids_.clear();
    rid_pos_ = 0;
    if (cfg_.index != nullptr) {
      cursor_ = CursorKind::kRids;
      // Index probe: enumerate the cartesian product of probe values
      // (IN-lists contribute several keys).
      std::vector<Row> keys;
      keys.emplace_back();
      for (size_t c : cfg_.index->column_indexes()) {
        const ProbeTerm* term = nullptr;
        for (const ProbeTerm& t : cfg_.probe_terms) {
          if (t.column_index == c) {
            term = &t;
            break;
          }
        }
        std::vector<Row> expanded;
        for (const Row& partial : keys) {
          for (const Expr* value_expr : term->values) {
            Row key = partial;
            key.push_back(EvalExpr(*value_expr, outer_, ctx_->params));
            expanded.push_back(std::move(key));
          }
        }
        keys = std::move(expanded);
      }
      // Duplicate IN-list values must not duplicate result rows.
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      for (const Row& key : keys) {
        cfg_.index->Lookup(key, &rids_);
      }
      ctx_->exec.index_probes += keys.size();
      return;
    }
    if (hash_mode_) {
      cursor_ = CursorKind::kHash;
      Value key = EvalExpr(*cfg_.hash_key, outer_, ctx_->params);
      const auto& table =
          sharded_ ? shards_[ValueHash{}(key) % shards_.size()] : hash_table_;
      auto range = table.equal_range(key);
      hash_it_ = range.first;
      hash_end_ = range.second;
      ctx_->exec.index_probes += 1;
      return;
    }
    if (cfg_.range_index != nullptr) {
      cursor_ = CursorKind::kRids;
      Value lo_value;
      Value hi_value;
      if (cfg_.range_lo != nullptr) {
        lo_value = EvalExpr(*cfg_.range_lo, outer_, ctx_->params);
      }
      if (cfg_.range_hi != nullptr) {
        hi_value = EvalExpr(*cfg_.range_hi, outer_, ctx_->params);
      }
      cfg_.range_index->RangeLookup(
          cfg_.range_lo != nullptr ? &lo_value : nullptr, cfg_.range_lo_excl,
          cfg_.range_hi != nullptr ? &hi_value : nullptr, cfg_.range_hi_excl,
          &rids_);
      ctx_->exec.range_scans += 1;
      return;
    }
    if (rel.table != nullptr) {
      cursor_ = CursorKind::kScan;
      scan_rid_ = 0;
      ctx_->exec.full_scans += 1;
      return;
    }
    cursor_ = CursorKind::kRows;
    rows_pos_ = 0;
  }

  // Starts the joined scratch row with a copy of the outer row; the inner
  // side is appended straight from column storage (base tables) or from
  // the materialized rows, with no intermediate Row.
  void StartJoined(size_t inner_width) {
    joined_.clear();
    joined_.reserve(outer_.size() + inner_width);
    joined_.insert(joined_.end(), outer_.begin(), outer_.end());
  }

  // Builds the next joined (outer + inner) row of the current cursor into
  // joined_; false at cursor end. Counts each visited row.
  bool NextJoined() {
    const PlanRelation& rel = cfg_.relation;
    switch (cursor_) {
      case CursorKind::kRids:
        if (rid_pos_ >= rids_.size()) return false;
        ctx_->exec.rows_scanned += 1;
        StartJoined(rel.columns.size());
        rel.table->AppendRow(rids_[rid_pos_++], &joined_);
        return true;
      case CursorKind::kHash: {
        if (hash_it_ == hash_end_) return false;
        ctx_->exec.rows_scanned += 1;
        size_t slot = hash_it_->second;
        ++hash_it_;
        StartJoined(rel.columns.size());
        if (rel.materialized()) {
          const Row& inner = rel.rows[slot];
          joined_.insert(joined_.end(), inner.begin(), inner.end());
        } else {
          rel.table->AppendRow(slot, &joined_);
        }
        return true;
      }
      case CursorKind::kScan:
        while (scan_rid_ < rel.table->slot_count() &&
               !rel.table->IsLive(scan_rid_)) {
          ++scan_rid_;
        }
        if (scan_rid_ >= rel.table->slot_count()) return false;
        ctx_->exec.rows_scanned += 1;
        StartJoined(rel.columns.size());
        rel.table->AppendRow(scan_rid_++, &joined_);
        return true;
      case CursorKind::kRows: {
        if (rows_pos_ >= rel.rows.size()) return false;
        ctx_->exec.rows_scanned += 1;
        StartJoined(rel.columns.size());
        const Row& inner = rel.rows[rows_pos_++];
        joined_.insert(joined_.end(), inner.begin(), inner.end());
        return true;
      }
    }
    return false;
  }

  void EmitIfMatch(RowBlock* out) {
    for (const Expr* pred : cfg_.preds) {
      Value v = EvalExpr(*pred, joined_, ctx_->params);
      if (v.is_null() || !v.Truthy()) return;
    }
    out->rows.push_back(std::move(joined_));
    matched_ = true;
  }

  std::unique_ptr<Op> child_;
  StageConfig cfg_;

  // Build sides below this many slots build serially: the scatter/build
  // round-trips through the pool would dominate.
  static constexpr size_t kParallelBuildMinSlots = 256;
  static constexpr size_t kBuildMorselSlots = 4096;

  bool decided_ = false;
  bool hash_mode_ = false;
  std::unordered_multimap<Value, size_t, ValueHash> hash_table_;
  /// Sharded build (dop > 1): shard s holds every key with
  /// ValueHash(key) % shards_.size() == s. Empty when serial.
  std::vector<std::unordered_multimap<Value, size_t, ValueHash>> shards_;
  bool sharded_ = false;

  RowBlock child_block_;
  std::deque<Row> outer_buffer_;
  bool child_eof_ = false;
  bool closed_ = false;
  size_t pull_cap_ = kDefaultBlockRows;

  Phase phase_ = Phase::kNeedOuter;
  Row outer_;
  Row joined_;  // scratch outer+inner row built by NextJoined()
  bool matched_ = false;

  CursorKind cursor_ = CursorKind::kRows;
  std::vector<RowId> rids_;
  size_t rid_pos_ = 0;
  std::unordered_multimap<Value, size_t, ValueHash>::const_iterator hash_it_;
  std::unordered_multimap<Value, size_t, ValueHash>::const_iterator hash_end_;
  RowId scan_rid_ = 0;
  size_t rows_pos_ = 0;
};

// Residual WHERE (needed with LEFT JOINs; idempotent otherwise).
class FilterOp : public Op {
 public:
  FilterOp(PlanContext* ctx, std::unique_ptr<Op> child, const Expr* where)
      : Op(ctx), child_(std::move(child)), where_(where) {
    ctx_->exec.scalar_ops += 1;
  }

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    in_.capacity = std::max<size_t>(out->capacity, 1);
    while (child_->Next(&in_)) {
      for (Row& row : in_.rows) {
        Value v = EvalExpr(*where_, row, ctx_->params);
        if (!v.is_null() && v.Truthy()) out->rows.push_back(std::move(row));
      }
      if (!out->rows.empty()) return true;
    }
    return false;
  }

  void Close() override {
    closed_ = true;
    child_->Close();
  }

 private:
  std::unique_ptr<Op> child_;
  const Expr* where_;
  RowBlock in_;
  bool closed_ = false;
};

// Select-list shape shared by the projection operators.
struct Projection {
  std::vector<const Expr*> item_exprs;
  std::vector<std::vector<size_t>> star_expansion;  // per item (kStar only)

  Row Apply(const Row& row, const std::vector<Value>* params) const {
    Row out;
    for (size_t i = 0; i < item_exprs.size(); ++i) {
      if (item_exprs[i]->kind == ExprKind::kStar) {
        for (size_t offset : star_expansion[i]) {
          out.push_back(row[offset]);
        }
      } else {
        out.push_back(EvalExpr(*item_exprs[i], row, params));
      }
    }
    return out;
  }
};

// Streaming projection (no ORDER BY).
class ProjectOp : public Op {
 public:
  ProjectOp(PlanContext* ctx, std::unique_ptr<Op> child, Projection proj)
      : Op(ctx), child_(std::move(child)), proj_(std::move(proj)) {
    ctx_->exec.scalar_ops += 1;
  }

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    in_.capacity = std::max<size_t>(out->capacity, 1);
    if (!child_->Next(&in_)) return false;
    for (const Row& row : in_.rows) {
      out->rows.push_back(proj_.Apply(row, ctx_->params));
    }
    return true;
  }

  void Close() override {
    closed_ = true;
    child_->Close();
  }

 private:
  std::unique_ptr<Op> child_;
  Projection proj_;
  RowBlock in_;
  bool closed_ = false;
};

// Barrier: drains its input, projects with sort keys, stable-sorts, then
// emits blocks.
class SortProjectOp : public Op {
 public:
  SortProjectOp(PlanContext* ctx, std::unique_ptr<Op> child, Projection proj,
                std::vector<const Expr*> order_exprs,
                std::vector<bool> descending)
      : Op(ctx),
        child_(std::move(child)),
        proj_(std::move(proj)),
        order_exprs_(std::move(order_exprs)),
        descending_(std::move(descending)) {
    ctx_->exec.scalar_ops += 1;
  }

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    if (!drained_) Drain();
    while (pos_ < sorted_.size() && out->rows.size() < out->capacity) {
      out->rows.push_back(std::move(sorted_[pos_].out));
      ++pos_;
    }
    return !out->rows.empty();
  }

  void Close() override {
    closed_ = true;
    child_->Close();
    sorted_.clear();
    if (charged_bytes_ > 0) {
      if (governor::QueryContext* qc = governor::CurrentQueryContext()) {
        qc->ReleaseMemory(charged_bytes_);
      }
      charged_bytes_ = 0;
    }
  }

 private:
  struct Projected {
    Row out;
    Row sort_keys;
  };

  /// Approximate retained bytes of one buffered (projected + keyed) row.
  static constexpr uint64_t kApproxSortedRowBytes = 128;

  void Drain() {
    drained_ = true;
    governor::QueryContext* qc = governor::CurrentQueryContext();
    RowBlock block;
    block.capacity = ctx_->block_rows;
    while (child_->Next(&block)) {
      if (qc != nullptr) {
        // The sort buffer is the one place the SQL layer materializes an
        // unbounded input; charge it against the query's memory budget
        // block by block so a runaway ORDER BY trips before the buffer
        // does the damage the budget exists to prevent.
        uint64_t bytes = block.rows.size() * kApproxSortedRowBytes;
        charged_bytes_ += bytes;
        Status st = qc->ChargeMemory(bytes);
        if (!st.ok()) {
          ctx_->error = std::move(st);
          return;
        }
      }
      for (const Row& row : block.rows) {
        Projected p;
        p.out = proj_.Apply(row, ctx_->params);
        for (const Expr* expr : order_exprs_) {
          p.sort_keys.push_back(EvalExpr(*expr, row, ctx_->params));
        }
        sorted_.push_back(std::move(p));
      }
    }
    auto less = [&](const Projected& a, const Projected& b) {
      for (size_t i = 0; i < order_exprs_.size(); ++i) {
        int c = a.sort_keys[i].Compare(b.sort_keys[i]);
        if (c != 0) return descending_[i] ? c > 0 : c < 0;
      }
      return false;
    };
    if (ctx_->dop > 1 && sorted_.size() >= kParallelSortMinRows) {
      ParallelStableSort(less);
    } else {
      std::stable_sort(sorted_.begin(), sorted_.end(), less);
    }
  }

  // Chunked parallel sort with a deterministic merge: split the buffer
  // into dop contiguous chunks, stable-sort each on a pool worker, then
  // stable-merge adjacent chunks left to right. A stable merge of
  // stable-sorted chunks of a contiguous split is elementwise identical
  // to one global stable_sort, so the parallel path cannot reorder ties.
  template <typename Less>
  void ParallelStableSort(const Less& less) {
    const size_t chunks = std::min<size_t>(ctx_->dop, sorted_.size());
    std::vector<size_t> bounds;  // chunk boundaries, ascending
    bounds.push_back(0);
    const size_t per = (sorted_.size() + chunks - 1) / chunks;
    for (size_t c = 1; c < chunks; ++c) {
      bounds.push_back(std::min(sorted_.size(), c * per));
    }
    bounds.push_back(sorted_.size());
    governor::QueryContext* qc = governor::CurrentQueryContext();
    ThreadPool::Shared().RunBatch(chunks, [&](size_t c) {
      governor::ScopedQueryContext governed(qc);
      std::stable_sort(sorted_.begin() + bounds[c],
                       sorted_.begin() + bounds[c + 1], less);
    });
    for (size_t c = 1; c < chunks; ++c) {
      std::inplace_merge(sorted_.begin(), sorted_.begin() + bounds[c],
                         sorted_.begin() + bounds[c + 1], less);
    }
    ctx_->exec.dop = std::max<uint64_t>(ctx_->exec.dop, chunks);
    ctx_->exec.morsels += chunks;
  }

  static constexpr size_t kParallelSortMinRows = 1024;

  std::unique_ptr<Op> child_;
  Projection proj_;
  std::vector<const Expr*> order_exprs_;
  std::vector<bool> descending_;
  std::vector<Projected> sorted_;
  uint64_t charged_bytes_ = 0;
  bool drained_ = false;
  size_t pos_ = 0;
  bool closed_ = false;
};

// Barrier: accumulates aggregate state block by block, then emits the
// grouped (or global) output. HAVING, the SELECT-*-with-aggregation check,
// and ORDER-BY-over-aggregates resolution run at finish time, with the
// same data-dependent semantics the materialized executor had.
class AggregateOp : public Op {
 public:
  struct Config {
    Projection proj;
    bool simple = false;
    // Simple path ("SELECT AGG(..), AGG(..)" with no grouping):
    std::vector<std::string> ops;
    std::vector<const Expr*> args;  // nullptr = COUNT(*)
    // General grouped path:
    std::vector<const Expr*> group_exprs;
    bool has_group_by = false;
    const Expr* having = nullptr;
    std::vector<AggSpec> agg_specs;
    const std::vector<OrderItem>* order_by = nullptr;  // may be empty
    const std::vector<std::string>* columns = nullptr;  // output names
  };

  AggregateOp(PlanContext* ctx, std::unique_ptr<Op> child, Config cfg)
      : Op(ctx), child_(std::move(child)), cfg_(std::move(cfg)) {
    ctx_->exec.scalar_ops += 1;
  }

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    if (!finished_) {
      Status st = DrainAndFinish();
      if (!st.ok()) {
        ctx_->error = st;
        Close();
        return false;
      }
    }
    while (pos_ < output_.size() && out->rows.size() < out->capacity) {
      out->rows.push_back(std::move(output_[pos_]));
      ++pos_;
    }
    return !out->rows.empty();
  }

  void Close() override {
    closed_ = true;
    child_->Close();
    groups_.clear();
    output_.clear();
  }

 private:
  struct Group {
    Row sample;
    std::vector<AggState> states;
  };

  Status DrainAndFinish() {
    finished_ = true;
    RowBlock block;
    block.capacity = ctx_->block_rows;
    if (cfg_.simple) {
      std::vector<AggState> states(cfg_.args.size());
      while (child_->Next(&block)) {
        for (const Row& row : block.rows) {
          for (size_t i = 0; i < states.size(); ++i) {
            if (cfg_.args[i] == nullptr) {
              ++states[i].count;
            } else {
              states[i].Accumulate(EvalExpr(*cfg_.args[i], row, ctx_->params));
            }
          }
        }
      }
      Row out;
      out.reserve(states.size());
      for (size_t i = 0; i < states.size(); ++i) {
        out.push_back(states[i].Finish(cfg_.ops[i]));
      }
      output_.push_back(std::move(out));
      return Status::OK();
    }

    while (child_->Next(&block)) {
      for (const Row& row : block.rows) {
        Row key;
        key.reserve(cfg_.group_exprs.size());
        for (const Expr* g : cfg_.group_exprs) {
          key.push_back(EvalExpr(*g, row, ctx_->params));
        }
        Group& group = groups_[key];
        if (group.states.empty()) {
          group.states.resize(cfg_.agg_specs.size());
          group.sample = row;
        }
        for (size_t a = 0; a < cfg_.agg_specs.size(); ++a) {
          if (cfg_.agg_specs[a].arg == nullptr) {
            ++group.states[a].count;  // COUNT(*)
          } else {
            group.states[a].Accumulate(
                EvalExpr(*cfg_.agg_specs[a].arg, row, ctx_->params));
          }
        }
      }
    }
    // A global aggregate over zero rows still yields one output row.
    if (groups_.empty() && !cfg_.has_group_by) {
      Group& group = groups_[Row()];
      group.states.resize(cfg_.agg_specs.size());
    }
    for (auto& [key, group] : groups_) {
      (void)key;
      std::unordered_map<const Expr*, Value> agg_values;
      for (size_t a = 0; a < cfg_.agg_specs.size(); ++a) {
        agg_values[cfg_.agg_specs[a].node] =
            group.states[a].Finish(cfg_.agg_specs[a].op);
      }
      if (cfg_.having != nullptr) {
        Value keep = EvalWithAggregates(*cfg_.having, group.sample,
                                        ctx_->params, agg_values);
        if (keep.is_null() || !keep.Truthy()) continue;
      }
      Row out;
      for (const Expr* expr : cfg_.proj.item_exprs) {
        if (expr->kind == ExprKind::kStar) {
          return Status::Unsupported("SELECT * with aggregation");
        }
        out.push_back(EvalWithAggregates(*expr, group.sample, ctx_->params,
                                         agg_values));
      }
      output_.push_back(std::move(out));
    }
    // ORDER BY over aggregated output: match items by name or position.
    if (cfg_.order_by != nullptr && !cfg_.order_by->empty()) {
      std::vector<std::pair<int, bool>> keys;
      for (const OrderItem& item : *cfg_.order_by) {
        int idx = -1;
        if (item.expr->kind == ExprKind::kColumnRef) {
          idx = ColumnIndexOf(item.expr->column);
        } else if (item.expr->kind == ExprKind::kLiteral &&
                   item.expr->literal.is_int()) {
          idx = static_cast<int>(item.expr->literal.as_int()) - 1;
        }
        if (idx < 0 || idx >= static_cast<int>(cfg_.columns->size())) {
          return Status::Unsupported(
              "ORDER BY with aggregation must name an output column");
        }
        keys.emplace_back(idx, item.descending);
      }
      std::stable_sort(output_.begin(), output_.end(),
                       [&](const Row& a, const Row& b) {
                         for (auto [idx, desc] : keys) {
                           int c = a[idx].Compare(b[idx]);
                           if (c != 0) return desc ? c > 0 : c < 0;
                         }
                         return false;
                       });
    }
    return Status::OK();
  }

  int ColumnIndexOf(const std::string& name) const {
    for (size_t i = 0; i < cfg_.columns->size(); ++i) {
      if (EqualsIgnoreCase((*cfg_.columns)[i], name)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  std::unique_ptr<Op> child_;
  Config cfg_;
  std::map<Row, Group> groups_;  // ordered for deterministic output
  std::vector<Row> output_;
  bool finished_ = false;
  size_t pos_ = 0;
  bool closed_ = false;
};

// Streaming DISTINCT: keeps first occurrences.
class DistinctOp : public Op {
 public:
  DistinctOp(PlanContext* ctx, std::unique_ptr<Op> child)
      : Op(ctx), child_(std::move(child)) {}

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    in_.capacity = std::max<size_t>(out->capacity, 1);
    while (child_->Next(&in_)) {
      for (Row& row : in_.rows) {
        if (seen_.insert(row).second) out->rows.push_back(std::move(row));
      }
      if (!out->rows.empty()) return true;
    }
    return false;
  }

  void Close() override {
    closed_ = true;
    child_->Close();
    seen_.clear();
  }

 private:
  std::unique_ptr<Op> child_;
  std::unordered_set<Row, RowHash> seen_;
  RowBlock in_;
  bool closed_ = false;
};

// Caps total output; shrinks the requested capacity so upstream scans
// stop at the budget, and closes the child as soon as it is met — the
// early-termination signal the whole pipeline is built around.
class LimitOp : public Op {
 public:
  LimitOp(PlanContext* ctx, std::unique_ptr<Op> child, uint64_t limit)
      : Op(ctx), child_(std::move(child)), remaining_(limit) {}

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_ || remaining_ == 0) {
      CloseChild();
      return false;
    }
    size_t saved = out->capacity;
    out->capacity = static_cast<size_t>(
        std::min<uint64_t>(std::max<size_t>(saved, 1), remaining_));
    bool ok = child_->Next(out);
    out->capacity = saved;
    if (!ok) return false;
    if (out->rows.size() > remaining_) out->rows.resize(remaining_);
    remaining_ -= out->rows.size();
    if (remaining_ == 0) CloseChild();
    return !out->rows.empty();
  }

  void Close() override {
    closed_ = true;
    CloseChild();
  }

 private:
  void CloseChild() {
    if (child_closed_) return;
    child_closed_ = true;
    child_->Close();
  }

  std::unique_ptr<Op> child_;
  uint64_t remaining_;
  bool closed_ = false;
  bool child_closed_ = false;
};

// ---------------------------------------------------------------------
// Vectorized (column-at-a-time) operators
// ---------------------------------------------------------------------
//
// These run below the row tree for single-table full scans when
// Database::vectorized_execution() is on:
//
//   ColumnScan -> ColumnFilter? -> (ColumnAggregate | ColumnProject
//                                   | ColumnToRow -> <row operators>)
//
// Blocks are selection vectors over the base table's column vectors; no
// row is materialized until the top of the column section. Filter
// conjuncts compile to fused compare+select kernels when they have the
// shape `col <op> const` (or IS [NOT] NULL); anything else falls back to
// per-row materialization + EvalExpr, counted in scalar_fallback_rows so
// profile() shows how much of the block actually ran scalar.

// Pull interface for the column section (ColumnBlock analogue of Op).
class ColOp {
 public:
  explicit ColOp(PlanContext* ctx) : ctx_(ctx) {}
  virtual ~ColOp() = default;
  virtual bool Next(ColumnBlock* out) = 0;
  virtual void Close() = 0;

 protected:
  PlanContext* ctx_;
};

// Emits the live slots of a base table in ascending order.
class ColumnScanOp : public ColOp {
 public:
  ColumnScanOp(PlanContext* ctx, const Table* table)
      : ColOp(ctx), table_(table) {
    ctx_->exec.vectorized_ops += 1;
  }

  bool Next(ColumnBlock* out) override {
    out->Clear();
    out->table = table_;
    if (closed_) return false;
    if (!GovernorOk(ctx_)) return false;
    DB2G_FAILPOINT_STATUS("sql.executor.block", ctx_->error);
    if (!ctx_->error.ok()) return false;
    if (!started_) {
      started_ = true;
      ctx_->exec.full_scans += 1;
    }
    size_t cap = std::max<size_t>(out->capacity, 1);
    while (rid_ < table_->slot_count() && out->sel.size() < cap) {
      if (table_->IsLive(rid_)) out->sel.push_back(rid_);
      ++rid_;
    }
    ctx_->exec.rows_scanned += out->sel.size();
    ctx_->exec.vectorized_rows += out->sel.size();
    return !out->sel.empty();
  }

  void Close() override { closed_ = true; }

 private:
  const Table* table_;
  RowId rid_ = 0;
  bool started_ = false;
  bool closed_ = false;
};

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

// One compiled WHERE conjunct. kCompare/kIsNull run as typed kernels over
// the column vectors; kFallback materializes each still-selected row and
// calls the scalar evaluator.
struct FilterKernel {
  enum class Kind { kCompare, kIsNull, kFallback };
  Kind kind = Kind::kFallback;
  size_t col = 0;                    // kCompare / kIsNull
  CmpOp cmp = CmpOp::kEq;            // kCompare
  const Expr* const_expr = nullptr;  // kCompare: constant operand
  bool negated = false;              // kIsNull: IS NOT NULL
  const Expr* expr = nullptr;        // kFallback: whole conjunct
};

inline bool CmpMatches(CmpOp op, int c) {
  switch (op) {
    case CmpOp::kEq: return c == 0;
    case CmpOp::kNe: return c != 0;
    case CmpOp::kLt: return c < 0;
    case CmpOp::kLe: return c <= 0;
    case CmpOp::kGt: return c > 0;
    case CmpOp::kGe: return c >= 0;
  }
  return false;
}

// Constant operand a compare kernel may evaluate once per execution:
// literals and '?' parameters.
inline bool IsConstExpr(const Expr& e) {
  return e.kind == ExprKind::kLiteral || e.kind == ExprKind::kParam;
}

inline bool IsBoundColumn(const Expr* e) {
  return e != nullptr && e->kind == ExprKind::kColumnRef &&
         e->bound_index >= 0;
}

inline CmpOp MirrorCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt: return CmpOp::kGt;
    case CmpOp::kLe: return CmpOp::kGe;
    case CmpOp::kGt: return CmpOp::kLt;
    case CmpOp::kGe: return CmpOp::kLe;
    default: return op;  // = and <> are symmetric
  }
}

// Compiles one conjunct into a kernel; unsupported shapes become the
// scalar fallback.
inline FilterKernel CompileFilterKernel(const Expr* conjunct) {
  FilterKernel k;
  k.expr = conjunct;
  if (conjunct->kind == ExprKind::kIsNull &&
      IsBoundColumn(conjunct->children[0].get())) {
    k.kind = FilterKernel::Kind::kIsNull;
    k.col = static_cast<size_t>(conjunct->children[0]->bound_index);
    k.negated = conjunct->negated;
    return k;
  }
  if (conjunct->kind == ExprKind::kBinary) {
    CmpOp cmp;
    const std::string& op = conjunct->op;
    if (op == "=") {
      cmp = CmpOp::kEq;
    } else if (op == "<>" || op == "!=") {
      cmp = CmpOp::kNe;
    } else if (op == "<") {
      cmp = CmpOp::kLt;
    } else if (op == "<=") {
      cmp = CmpOp::kLe;
    } else if (op == ">") {
      cmp = CmpOp::kGt;
    } else if (op == ">=") {
      cmp = CmpOp::kGe;
    } else {
      return k;
    }
    const Expr* lhs = conjunct->children[0].get();
    const Expr* rhs = conjunct->children[1].get();
    if (IsBoundColumn(lhs) && IsConstExpr(*rhs)) {
      k.kind = FilterKernel::Kind::kCompare;
      k.col = static_cast<size_t>(lhs->bound_index);
      k.cmp = cmp;
      k.const_expr = rhs;
    } else if (IsBoundColumn(rhs) && IsConstExpr(*lhs)) {
      k.kind = FilterKernel::Kind::kCompare;
      k.col = static_cast<size_t>(rhs->bound_index);
      k.cmp = MirrorCmp(cmp);  // keep the column on the left
      k.const_expr = lhs;
    }
  }
  return k;
}

// Compiled WHERE conjuncts, shared by the serial ColumnFilterOp and the
// parallel scan workers. Compile() orders kernelized conjuncts before
// scalar fallbacks (AND conjuncts are side-effect free, so reordering
// preserves the result set); MaterializeConstants() evaluates compare
// constants once on the coordinating thread, after which the set is
// read-only and Apply() is safe to call from concurrent workers — each
// brings its own scratch row for the fallback path.
class KernelSet {
 public:
  void Compile(const std::vector<const Expr*>& conjuncts) {
    std::vector<FilterKernel> fallbacks;
    for (const Expr* conjunct : conjuncts) {
      FilterKernel k = CompileFilterKernel(conjunct);
      if (k.kind == FilterKernel::Kind::kFallback) {
        fallbacks.push_back(k);
      } else {
        kernels_.push_back(k);
      }
    }
    kernels_.insert(kernels_.end(), fallbacks.begin(), fallbacks.end());
  }

  bool empty() const { return kernels_.empty(); }

  void MaterializeConstants(const std::vector<Value>* params) {
    Row empty;
    for (const FilterKernel& k : kernels_) {
      if (k.kind == FilterKernel::Kind::kCompare) {
        constants_.emplace(k.const_expr,
                           EvalExpr(*k.const_expr, empty, params));
      }
    }
  }

  /// Narrows `sel` in place through every kernel; returns how many rows
  /// the scalar fallback had to materialize (scalar_fallback_rows).
  uint64_t Apply(const Table* table, std::vector<uint64_t>* sel,
                 const std::vector<Value>* params, Row* scratch) const {
    uint64_t fallback_rows = 0;
    for (const FilterKernel& k : kernels_) {
      if (sel->empty()) break;
      switch (k.kind) {
        case FilterKernel::Kind::kCompare:
          ApplyCompare(k, table, sel);
          break;
        case FilterKernel::Kind::kIsNull:
          ApplyIsNull(k, table, sel);
          break;
        case FilterKernel::Kind::kFallback:
          fallback_rows += sel->size();
          ApplyFallback(k, table, sel, params, scratch);
          break;
      }
    }
    return fallback_rows;
  }

 private:
  static void ApplyIsNull(const FilterKernel& k, const Table* table,
                          std::vector<uint64_t>* sel_in) {
    const Column& col = table->column(k.col);
    auto& sel = *sel_in;
    size_t w = 0;
    for (uint64_t rid : sel) {
      if (col.IsNull(rid) != k.negated) sel[w++] = rid;
    }
    sel.resize(w);
  }

  // Fused compare + select. NULL cells never match (the scalar evaluator
  // returns NULL for comparisons with a NULL operand, and filters treat
  // NULL as false); a NULL constant rejects the whole block.
  void ApplyCompare(const FilterKernel& k, const Table* table,
                    std::vector<uint64_t>* sel_in) const {
    const Value& constant = constants_.at(k.const_expr);
    auto& sel = *sel_in;
    if (constant.is_null()) {
      sel.clear();
      return;
    }
    const Column& col = table->column(k.col);
    size_t w = 0;
    switch (col.value_type()) {
      case ValueType::kInt:
        if (constant.is_int()) {
          const int64_t* data = col.ints();
          int64_t rhs = constant.as_int();
          for (uint64_t rid : sel) {
            if (col.IsNull(rid)) continue;
            int64_t x = data[rid];
            int c = x < rhs ? -1 : (x > rhs ? 1 : 0);
            if (CmpMatches(k.cmp, c)) sel[w++] = rid;
          }
          sel.resize(w);
          return;
        }
        if (constant.is_double()) {
          const int64_t* data = col.ints();
          double rhs = constant.as_double();
          for (uint64_t rid : sel) {
            if (col.IsNull(rid)) continue;
            double x = static_cast<double>(data[rid]);
            int c = x < rhs ? -1 : (x > rhs ? 1 : 0);
            if (CmpMatches(k.cmp, c)) sel[w++] = rid;
          }
          sel.resize(w);
          return;
        }
        break;
      case ValueType::kDouble:
        if (constant.is_numeric()) {
          const double* data = col.doubles();
          double rhs = constant.NumericValue();
          for (uint64_t rid : sel) {
            if (col.IsNull(rid)) continue;
            double x = data[rid];
            int c = x < rhs ? -1 : (x > rhs ? 1 : 0);
            if (CmpMatches(k.cmp, c)) sel[w++] = rid;
          }
          sel.resize(w);
          return;
        }
        break;
      case ValueType::kString:
        if (constant.is_string()) {
          const std::string* data = col.strings();
          const std::string& rhs = constant.as_string();
          for (uint64_t rid : sel) {
            if (col.IsNull(rid)) continue;
            int c = data[rid].compare(rhs);
            if (CmpMatches(k.cmp, c)) sel[w++] = rid;
          }
          sel.resize(w);
          return;
        }
        break;
      case ValueType::kBool:
        if (constant.is_bool()) {
          const uint8_t* data = col.bools();
          int rhs = constant.as_bool() ? 1 : 0;
          for (uint64_t rid : sel) {
            if (col.IsNull(rid)) continue;
            int c = static_cast<int>(data[rid]) - rhs;
            if (CmpMatches(k.cmp, c)) sel[w++] = rid;
          }
          sel.resize(w);
          return;
        }
        break;
      default:
        break;
    }
    // Cross-type-class comparison (e.g. int column vs string constant):
    // still in-kernel, per-cell Value::Compare, no row materialization.
    for (uint64_t rid : sel) {
      if (col.IsNull(rid)) continue;
      if (CmpMatches(k.cmp, col.Get(rid).Compare(constant))) sel[w++] = rid;
    }
    sel.resize(w);
  }

  static void ApplyFallback(const FilterKernel& k, const Table* table,
                            std::vector<uint64_t>* sel_in,
                            const std::vector<Value>* params, Row* scratch) {
    auto& sel = *sel_in;
    size_t w = 0;
    for (uint64_t rid : sel) {
      table->MaterializeRow(rid, scratch);
      Value v = EvalExpr(*k.expr, *scratch, params);
      if (!v.is_null() && v.Truthy()) sel[w++] = rid;
    }
    sel.resize(w);
  }

  std::vector<FilterKernel> kernels_;
  std::unordered_map<const Expr*, Value> constants_;
};

// Applies compiled kernels to each block, narrowing the selection vector
// in place.
class ColumnFilterOp : public ColOp {
 public:
  ColumnFilterOp(PlanContext* ctx, std::unique_ptr<ColOp> child,
                 const std::vector<const Expr*>& conjuncts)
      : ColOp(ctx), child_(std::move(child)) {
    ctx_->exec.vectorized_ops += 1;
    kernels_.Compile(conjuncts);
    kernels_.MaterializeConstants(ctx->params);
  }

  bool Next(ColumnBlock* out) override {
    if (closed_) {
      out->Clear();
      return false;
    }
    while (child_->Next(out)) {
      ctx_->exec.scalar_fallback_rows +=
          kernels_.Apply(out->table, &out->sel, ctx_->params, &scratch_);
      if (!out->sel.empty()) return true;
    }
    out->Clear();
    return false;
  }

  void Close() override {
    closed_ = true;
    child_->Close();
  }

 private:
  std::unique_ptr<ColOp> child_;
  KernelSet kernels_;
  Row scratch_;
  bool closed_ = false;
};

// Morsel-driven parallel scan with fused filtering: the table's slot
// space splits into fixed-size morsels; each round dispatches up to dop
// morsels to the shared pool, every worker enumerating the live slots of
// its range and narrowing them through the shared read-only KernelSet
// (private scratch row each). Worker outputs concatenate in morsel index
// order, so downstream operators see the identical ascending-slot
// selection a serial ColumnScan -> ColumnFilter chain emits. Each worker
// installs the query's governor context and checks it per morsel, so
// deadlines, cancellation, and budgets observe mid-scan; the first
// failing morsel (in morsel order) becomes the plan error.
class ParallelColumnScanOp : public ColOp {
 public:
  ParallelColumnScanOp(PlanContext* ctx, const Table* table,
                       const std::vector<const Expr*>& conjuncts, int dop,
                       OpProfile* profile)
      : ColOp(ctx),
        table_(table),
        dop_(dop < 1 ? 1 : dop),
        profile_(profile) {
    ctx_->exec.vectorized_ops += 1;
    kernels_.Compile(conjuncts);
    kernels_.MaterializeConstants(ctx->params);
  }

  bool Next(ColumnBlock* out) override {
    out->Clear();
    out->table = table_;
    if (closed_) return false;
    if (!GovernorOk(ctx_)) return false;
    DB2G_FAILPOINT_STATUS("sql.executor.block", ctx_->error);
    if (!ctx_->error.ok()) return false;
    if (!started_) Start();
    size_t cap = std::max<size_t>(out->capacity, 1);
    while (out->sel.size() < cap) {
      if (pos_ >= ready_.size()) {
        if (next_morsel_ >= morsel_count_) break;
        RunRound();
        if (!ctx_->error.ok()) return false;
        continue;
      }
      size_t take = std::min(cap - out->sel.size(), ready_.size() - pos_);
      out->sel.insert(out->sel.end(), ready_.begin() + pos_,
                      ready_.begin() + pos_ + take);
      pos_ += take;
    }
    return !out->sel.empty();
  }

  void Close() override {
    closed_ = true;
    ready_.clear();
  }

 private:
  void Start() {
    started_ = true;
    uint64_t slots = table_->slot_count();
    // Aim for ~4 morsels per worker (work stealing evens out skew from
    // dead-slot gaps and selective filters) within fixed bounds.
    morsel_slots_ = slots / (static_cast<uint64_t>(dop_) * 4);
    if (morsel_slots_ < kMinMorselSlots) morsel_slots_ = kMinMorselSlots;
    if (morsel_slots_ > kMaxMorselSlots) morsel_slots_ = kMaxMorselSlots;
    morsel_count_ = (slots + morsel_slots_ - 1) / morsel_slots_;
    ctx_->exec.full_scans += 1;
    ctx_->exec.dop = std::max<uint64_t>(ctx_->exec.dop,
                                        static_cast<uint64_t>(dop_));
    ctx_->exec.morsels += morsel_count_;
    if (profile_ != nullptr) {
      profile_->detail += " morsels=" + std::to_string(morsel_count_);
    }
  }

  // One round: up to dop_ morsels in parallel, outputs merged in morsel
  // order into ready_.
  void RunRound() {
    size_t n = static_cast<size_t>(
        std::min<uint64_t>(dop_, morsel_count_ - next_morsel_));
    uint64_t base = next_morsel_;
    next_morsel_ += n;
    struct MorselOut {
      std::vector<uint64_t> sel;
      uint64_t live = 0;
      uint64_t fallback = 0;
      Status status = Status::OK();
    };
    std::vector<MorselOut> outs(n);
    governor::QueryContext* qc = governor::CurrentQueryContext();
    ThreadPool::Shared().RunBatch(n, [&](size_t i) {
      governor::ScopedQueryContext governed(qc);
      MorselOut& mo = outs[i];
      mo.status = governor::CheckCurrent();
      if (!mo.status.ok()) return;
      uint64_t lo = (base + i) * morsel_slots_;
      uint64_t hi =
          std::min<uint64_t>(table_->slot_count(), lo + morsel_slots_);
      mo.sel.reserve(hi - lo);
      for (uint64_t rid = lo; rid < hi; ++rid) {
        if (table_->IsLive(rid)) mo.sel.push_back(rid);
      }
      mo.live = mo.sel.size();
      Row scratch;
      mo.fallback = kernels_.Apply(table_, &mo.sel, ctx_->params, &scratch);
    });
    ready_.clear();
    pos_ = 0;
    for (MorselOut& mo : outs) {
      if (!mo.status.ok()) {
        if (ctx_->error.ok()) ctx_->error = std::move(mo.status);
        return;
      }
      ctx_->exec.rows_scanned += mo.live;
      ctx_->exec.vectorized_rows += mo.live;
      ctx_->exec.scalar_fallback_rows += mo.fallback;
      ready_.insert(ready_.end(), mo.sel.begin(), mo.sel.end());
    }
  }

  static constexpr uint64_t kMinMorselSlots = 256;
  static constexpr uint64_t kMaxMorselSlots = 8192;

  const Table* table_;
  int dop_;
  OpProfile* profile_;
  KernelSet kernels_;
  std::vector<uint64_t> ready_;
  size_t pos_ = 0;
  uint64_t morsel_slots_ = kMaxMorselSlots;
  uint64_t morsel_count_ = 0;
  uint64_t next_morsel_ = 0;
  bool started_ = false;
  bool closed_ = false;
};

// Column pruning at the top of the column section: materializes only the
// projected columns, straight from the column vectors (late
// materialization — rows filtered out upstream never touch these
// columns). Eligible when every select item is a bound column reference
// or a star.
class ColumnProjectOp : public Op {
 public:
  ColumnProjectOp(PlanContext* ctx, std::unique_ptr<ColOp> child,
                  std::vector<size_t> out_cols)
      : Op(ctx), child_(std::move(child)), out_cols_(std::move(out_cols)) {
    ctx_->exec.vectorized_ops += 1;
  }

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    in_.capacity = std::max<size_t>(out->capacity, 1);
    if (!child_->Next(&in_)) return false;
    out->rows.reserve(std::min(out->capacity, in_.sel.size()));
    for (uint64_t rid : in_.sel) {
      Row& row = out->rows.emplace_back();
      row.reserve(out_cols_.size());
      for (size_t c : out_cols_) {
        row.push_back(in_.table->column(c).Get(rid));
      }
    }
    return true;
  }

  void Close() override {
    closed_ = true;
    child_->Close();
  }

 private:
  std::unique_ptr<ColOp> child_;
  std::vector<size_t> out_cols_;
  ColumnBlock in_;
  bool closed_ = false;
};

// Row-materialization adapter at the boundary between the column section
// and the classic row operators: turns each selected slot into a full
// row, so everything above (sort, distinct, scalar aggregation, the
// RowStream API) is unchanged.
class ColumnToRowOp : public Op {
 public:
  ColumnToRowOp(PlanContext* ctx, std::unique_ptr<ColOp> child)
      : Op(ctx), child_(std::move(child)) {
    ctx_->exec.vectorized_ops += 1;
  }

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    in_.capacity = std::max<size_t>(out->capacity, 1);
    if (!child_->Next(&in_)) return false;
    out->rows.reserve(std::min(out->capacity, in_.sel.size()));
    for (uint64_t rid : in_.sel) {
      in_.table->AppendRow(rid, &out->rows.emplace_back());
    }
    return true;
  }

  void Close() override {
    closed_ = true;
    child_->Close();
  }

 private:
  std::unique_ptr<ColOp> child_;
  ColumnBlock in_;
  bool closed_ = false;
};

// Vectorized aggregation barrier. Two shapes, mirroring AggregateOp:
// the "simple" global-aggregate list (SELECT AGG(col), ...), accumulated
// with typed per-column loops, and GROUP BY over plain columns with
// aggregate-or-group-key select items. Anything else stays on the scalar
// AggregateOp behind the ColumnToRow adapter.
class ColumnAggregateOp : public Op {
 public:
  struct Config {
    bool simple = false;
    std::vector<std::string> ops;  // per aggregate, upper-cased
    std::vector<int> arg_cols;     // per aggregate; -1 = COUNT(*)
    // Grouped shape:
    std::vector<size_t> group_cols;
    struct Item {
      bool is_group = false;  // true: group key, false: aggregate
      size_t index = 0;       // into group_cols / ops+arg_cols
    };
    std::vector<Item> items;  // grouped shape only
  };

  ColumnAggregateOp(PlanContext* ctx, std::unique_ptr<ColOp> child,
                    Config cfg)
      : Op(ctx), child_(std::move(child)), cfg_(std::move(cfg)) {
    ctx_->exec.vectorized_ops += 1;
  }

  // Typed accumulation of one aggregate over one selection. Mirrors
  // AggState::Accumulate exactly (including elementwise double-sum
  // rounding, so AVG matches the scalar path bit for bit); min/max are
  // only tracked when the op needs them. Static and side-effect free on
  // shared state, so parallel morsel workers reuse it on partial states.
  static void AccumulateColumn(const Table* table,
                               const std::vector<uint64_t>& sel, int arg_col,
                               const std::string& op, AggState* st) {
    if (arg_col < 0) {
      st->count += static_cast<int64_t>(sel.size());  // COUNT(*)
      return;
    }
    const Column& col = table->column(arg_col);
    bool want_minmax = op == "MIN" || op == "MAX";
    switch (col.value_type()) {
      case ValueType::kInt: {
        const int64_t* data = col.ints();
        for (uint64_t rid : sel) {
          if (col.IsNull(rid)) continue;
          int64_t x = data[rid];
          ++st->count;
          st->isum += x;
          st->sum += static_cast<double>(x);
          if (want_minmax) {
            if (st->min.is_null() || x < st->min.as_int()) st->min = Value(x);
            if (st->max.is_null() || x > st->max.as_int()) st->max = Value(x);
          }
        }
        return;
      }
      case ValueType::kDouble: {
        const double* data = col.doubles();
        for (uint64_t rid : sel) {
          if (col.IsNull(rid)) continue;
          double x = data[rid];
          ++st->count;
          st->sum += x;
          st->sum_is_int = false;
          if (want_minmax) {
            if (st->min.is_null() || x < st->min.as_double()) {
              st->min = Value(x);
            }
            if (st->max.is_null() || x > st->max.as_double()) {
              st->max = Value(x);
            }
          }
        }
        return;
      }
      default:
        for (uint64_t rid : sel) {
          if (!col.IsNull(rid)) st->Accumulate(col.Get(rid));
        }
        return;
    }
  }

  // Grouped accumulation of one selection into a (group key -> states)
  // map; shared with the parallel aggregate's per-worker partial maps.
  static void AccumulateGrouped(const Table* table,
                                const std::vector<uint64_t>& sel,
                                const Config& cfg,
                                std::map<Row, std::vector<AggState>>* groups) {
    for (uint64_t rid : sel) {
      Row key;
      key.reserve(cfg.group_cols.size());
      for (size_t c : cfg.group_cols) {
        key.push_back(table->column(c).Get(rid));
      }
      std::vector<AggState>& states = (*groups)[key];
      if (states.empty()) states.resize(cfg.ops.size());
      for (size_t a = 0; a < states.size(); ++a) {
        int ci = cfg.arg_cols[a];
        if (ci < 0) {
          ++states[a].count;  // COUNT(*)
        } else {
          states[a].Accumulate(table->column(ci).Get(rid));
        }
      }
    }
  }

  // Renders one group's output row per the select-item layout.
  static Row FinishGroup(const Config& cfg, const Row& key,
                         const std::vector<AggState>& states) {
    Row out;
    out.reserve(cfg.items.size());
    for (const Config::Item& item : cfg.items) {
      if (item.is_group) {
        out.push_back(key[item.index]);
      } else {
        out.push_back(states[item.index].Finish(cfg.ops[item.index]));
      }
    }
    return out;
  }

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    if (!finished_) DrainAndFinish();
    while (pos_ < output_.size() && out->rows.size() < out->capacity) {
      out->rows.push_back(std::move(output_[pos_]));
      ++pos_;
    }
    return !out->rows.empty();
  }

  void Close() override {
    closed_ = true;
    child_->Close();
    groups_.clear();
    output_.clear();
  }

 private:
  void DrainAndFinish() {
    finished_ = true;
    ColumnBlock block;
    block.capacity = ctx_->block_rows;
    if (cfg_.simple) {
      std::vector<AggState> states(cfg_.ops.size());
      while (child_->Next(&block)) {
        for (size_t a = 0; a < states.size(); ++a) {
          AccumulateColumn(block.table, block.sel, cfg_.arg_cols[a],
                           cfg_.ops[a], &states[a]);
        }
      }
      Row out;
      out.reserve(states.size());
      for (size_t a = 0; a < states.size(); ++a) {
        out.push_back(states[a].Finish(cfg_.ops[a]));
      }
      output_.push_back(std::move(out));
      return;
    }

    while (child_->Next(&block)) {
      AccumulateGrouped(block.table, block.sel, cfg_, &groups_);
    }
    for (auto& [key, states] : groups_) {
      output_.push_back(FinishGroup(cfg_, key, states));
    }
  }

  std::unique_ptr<ColOp> child_;
  Config cfg_;
  std::map<Row, std::vector<AggState>> groups_;  // deterministic output
  std::vector<Row> output_;
  bool finished_ = false;
  size_t pos_ = 0;
  bool closed_ = false;
};

// Fused parallel scan + filter + aggregate: the full-scan aggregate is
// the one shape where the barrier already owns the whole input, so the
// morsel workers skip the block protocol entirely — each task scans a
// contiguous range of morsels, narrows them through the shared KernelSet,
// and accumulates into a private partial state (vector<AggState> for the
// simple shape, an ordered group map for GROUP BY). The barrier merges
// partials in task order: COUNT/MIN/MAX and integer sums merge exactly;
// double sums reassociate deterministically for a fixed dop. Grouped
// output stays key-sorted (std::map) and therefore identical to serial.
class ParallelColumnAggregateOp : public Op {
 public:
  using Config = ColumnAggregateOp::Config;

  ParallelColumnAggregateOp(PlanContext* ctx, const Table* table,
                            const std::vector<const Expr*>& conjuncts,
                            Config cfg, int dop, OpProfile* profile)
      : Op(ctx),
        table_(table),
        cfg_(std::move(cfg)),
        dop_(dop < 1 ? 1 : dop),
        profile_(profile) {
    ctx_->exec.vectorized_ops += 1;
    kernels_.Compile(conjuncts);
    kernels_.MaterializeConstants(ctx->params);
  }

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    if (!GovernorOk(ctx_)) return false;
    DB2G_FAILPOINT_STATUS("sql.executor.block", ctx_->error);
    if (!ctx_->error.ok()) return false;
    if (!finished_) {
      DrainAndFinish();
      if (!ctx_->error.ok()) return false;
    }
    while (pos_ < output_.size() && out->rows.size() < out->capacity) {
      out->rows.push_back(std::move(output_[pos_]));
      ++pos_;
    }
    return !out->rows.empty();
  }

  void Close() override {
    closed_ = true;
    output_.clear();
  }

 private:
  struct Partial {
    std::vector<AggState> states;            // simple shape
    std::map<Row, std::vector<AggState>> groups;  // grouped shape
    uint64_t live = 0;
    uint64_t fallback = 0;
    Status status = Status::OK();
  };

  void DrainAndFinish() {
    finished_ = true;
    const uint64_t slots = table_->slot_count();
    uint64_t morsel_slots = slots / (static_cast<uint64_t>(dop_) * 4);
    if (morsel_slots < kMinMorselSlots) morsel_slots = kMinMorselSlots;
    if (morsel_slots > kMaxMorselSlots) morsel_slots = kMaxMorselSlots;
    const uint64_t morsel_count = (slots + morsel_slots - 1) / morsel_slots;
    const size_t task_count =
        static_cast<size_t>(std::min<uint64_t>(dop_, morsel_count));
    const uint64_t per_task = (morsel_count + task_count - 1) / task_count;
    std::vector<Partial> partials(task_count);
    governor::QueryContext* qc = governor::CurrentQueryContext();
    ThreadPool::Shared().RunBatch(task_count, [&](size_t t) {
      governor::ScopedQueryContext governed(qc);
      Partial& p = partials[t];
      if (cfg_.simple) p.states.resize(cfg_.ops.size());
      Row scratch;
      std::vector<uint64_t> sel;
      uint64_t m_lo = t * per_task;
      uint64_t m_hi = std::min<uint64_t>(morsel_count, m_lo + per_task);
      for (uint64_t m = m_lo; m < m_hi; ++m) {
        p.status = governor::CheckCurrent();
        if (!p.status.ok()) return;
        uint64_t lo = m * morsel_slots;
        uint64_t hi = std::min<uint64_t>(slots, lo + morsel_slots);
        sel.clear();
        for (uint64_t rid = lo; rid < hi; ++rid) {
          if (table_->IsLive(rid)) sel.push_back(rid);
        }
        p.live += sel.size();
        p.fallback += kernels_.Apply(table_, &sel, ctx_->params, &scratch);
        if (cfg_.simple) {
          for (size_t a = 0; a < p.states.size(); ++a) {
            ColumnAggregateOp::AccumulateColumn(table_, sel, cfg_.arg_cols[a],
                                                cfg_.ops[a], &p.states[a]);
          }
        } else {
          ColumnAggregateOp::AccumulateGrouped(table_, sel, cfg_, &p.groups);
        }
      }
    });
    ctx_->exec.full_scans += 1;
    ctx_->exec.dop = std::max<uint64_t>(ctx_->exec.dop,
                                        static_cast<uint64_t>(dop_));
    ctx_->exec.morsels += morsel_count;
    if (profile_ != nullptr) {
      profile_->detail += " morsels=" + std::to_string(morsel_count);
    }
    // Merge in task order (== morsel order, tasks own contiguous ranges).
    std::vector<AggState> states(cfg_.ops.size());
    std::map<Row, std::vector<AggState>> groups;
    for (Partial& p : partials) {
      if (!p.status.ok()) {
        if (ctx_->error.ok()) ctx_->error = std::move(p.status);
        return;
      }
      ctx_->exec.rows_scanned += p.live;
      ctx_->exec.vectorized_rows += p.live;
      ctx_->exec.scalar_fallback_rows += p.fallback;
      if (cfg_.simple) {
        for (size_t a = 0; a < states.size(); ++a) {
          states[a].Merge(p.states[a]);
        }
      } else {
        for (auto& [key, partial_states] : p.groups) {
          std::vector<AggState>& merged = groups[key];
          if (merged.empty()) merged.resize(cfg_.ops.size());
          for (size_t a = 0; a < merged.size(); ++a) {
            merged[a].Merge(partial_states[a]);
          }
        }
      }
    }
    if (cfg_.simple) {
      Row out;
      out.reserve(states.size());
      for (size_t a = 0; a < states.size(); ++a) {
        out.push_back(states[a].Finish(cfg_.ops[a]));
      }
      output_.push_back(std::move(out));
      return;
    }
    for (auto& [key, group_states] : groups) {
      output_.push_back(ColumnAggregateOp::FinishGroup(cfg_, key,
                                                       group_states));
    }
  }

  static constexpr uint64_t kMinMorselSlots = 256;
  static constexpr uint64_t kMaxMorselSlots = 8192;

  const Table* table_;
  Config cfg_;
  int dop_;
  OpProfile* profile_;
  KernelSet kernels_;
  std::vector<Row> output_;
  bool finished_ = false;
  size_t pos_ = 0;
  bool closed_ = false;
};

// ---------------------------------------------------------------------
// EXPLAIN ANALYZE instrumentation
// ---------------------------------------------------------------------
//
// Timing wrappers inserted around every operator when the statement runs
// profiled. micros are inclusive (each wrapper times its child's Next,
// which pulls the whole subtree); rows_in is derived after execution from
// the chain order, so the wrappers only count their own output.

class ProfiledOp : public Op {
 public:
  ProfiledOp(PlanContext* ctx, std::unique_ptr<Op> child, OpProfile* prof)
      : Op(ctx), child_(std::move(child)), prof_(prof) {}

  bool Next(RowBlock* out) override {
    uint64_t t0 = TraceClock::Default()->NowMicros();
    bool ok = child_->Next(out);
    prof_->micros += TraceClock::Default()->NowMicros() - t0;
    if (ok) {
      prof_->blocks += 1;
      prof_->rows_out += out->rows.size();
    }
    return ok;
  }

  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<Op> child_;
  OpProfile* prof_;
};

class ProfiledColOp : public ColOp {
 public:
  ProfiledColOp(PlanContext* ctx, std::unique_ptr<ColOp> child,
                OpProfile* prof)
      : ColOp(ctx), child_(std::move(child)), prof_(prof) {}

  bool Next(ColumnBlock* out) override {
    uint64_t t0 = TraceClock::Default()->NowMicros();
    bool ok = child_->Next(out);
    prof_->micros += TraceClock::Default()->NowMicros() - t0;
    if (ok) {
      prof_->blocks += 1;
      prof_->rows_out += out->sel.size();
    }
    return ok;
  }

  void Close() override { child_->Close(); }

 private:
  std::unique_ptr<ColOp> child_;
  OpProfile* prof_;
};

}  // namespace exec_ops

namespace {

// Tries to lower an aggregate configuration onto the column path: the
// simple global-aggregate list with plain-column (or *) arguments, or
// GROUP BY over plain columns where every select item is a group key or a
// bare aggregate over a plain column, with no HAVING and no ORDER BY.
bool LowerVectorizedAggregate(const exec_ops::AggregateOp::Config& agg,
                              const exec_ops::Projection& proj,
                              const SelectStmt& stmt,
                              exec_ops::ColumnAggregateOp::Config* out) {
  auto bound_col = [](const Expr* e) {
    return e != nullptr && e->kind == ExprKind::kColumnRef &&
           e->bound_index >= 0;
  };
  if (agg.simple) {
    out->simple = true;
    out->ops = agg.ops;
    for (const Expr* arg : agg.args) {
      if (arg == nullptr) {
        out->arg_cols.push_back(-1);
      } else if (bound_col(arg)) {
        out->arg_cols.push_back(arg->bound_index);
      } else {
        return false;
      }
    }
    return true;
  }
  if (!agg.has_group_by || agg.having != nullptr || !stmt.order_by.empty()) {
    return false;
  }
  for (const Expr* g : agg.group_exprs) {
    if (!bound_col(g)) return false;
    out->group_cols.push_back(static_cast<size_t>(g->bound_index));
  }
  for (const AggSpec& spec : agg.agg_specs) {
    out->ops.push_back(spec.op);
    if (spec.arg == nullptr) {
      out->arg_cols.push_back(-1);
    } else if (bound_col(spec.arg)) {
      out->arg_cols.push_back(spec.arg->bound_index);
    } else {
      return false;
    }
  }
  for (const Expr* item : proj.item_exprs) {
    exec_ops::ColumnAggregateOp::Config::Item lowered;
    bool found = false;
    if (bound_col(item)) {
      // A bare column must be one of the group keys; anything else is
      // evaluated from a data-dependent sample row on the scalar path.
      for (size_t g = 0; g < agg.group_exprs.size(); ++g) {
        if (agg.group_exprs[g]->bound_index == item->bound_index) {
          lowered.is_group = true;
          lowered.index = g;
          found = true;
          break;
        }
      }
    } else {
      for (size_t a = 0; a < agg.agg_specs.size(); ++a) {
        if (agg.agg_specs[a].node == item) {
          lowered.index = a;
          found = true;
          break;
        }
      }
    }
    if (!found) return false;
    out->items.push_back(lowered);
  }
  return true;
}

// Projection is pure column pruning when every item is a bound column
// reference or a star; `out_cols` receives the flat column offsets.
bool LowerVectorizedProjection(const exec_ops::Projection& proj,
                               std::vector<size_t>* out_cols) {
  for (size_t i = 0; i < proj.item_exprs.size(); ++i) {
    const Expr* e = proj.item_exprs[i];
    if (e->kind == ExprKind::kStar) {
      for (size_t offset : proj.star_expansion[i]) {
        out_cols->push_back(offset);
      }
    } else if (e->kind == ExprKind::kColumnRef && e->bound_index >= 0) {
      out_cols->push_back(static_cast<size_t>(e->bound_index));
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------
// SelectPlan
// ---------------------------------------------------------------------

struct SelectPlan::State {
  exec_ops::PlanContext ctx;
  std::vector<std::unique_ptr<Expr>> owned;  // bound expression clones
  std::vector<std::string> columns;
  std::unique_ptr<exec_ops::Op> root;
  // Virtual-table snapshots: operators keep raw `const Table*` pointers
  // (same as base tables), so the plan owns the backing storage.
  std::vector<std::shared_ptr<Table>> pinned;
  ExecInfo flushed;  // portion already mirrored into Database::stats()
  bool closed = false;

  // Copies the live profile nodes into ExecInfo, deriving rows_in from
  // the linear chain (each operator consumes the previous one's output).
  void FinalizeProfiles() {
    if (ctx.profiles.empty()) return;
    ctx.exec.op_profiles.assign(ctx.profiles.begin(), ctx.profiles.end());
    for (size_t i = 1; i < ctx.exec.op_profiles.size(); ++i) {
      ctx.exec.op_profiles[i].rows_in = ctx.exec.op_profiles[i - 1].rows_out;
    }
  }

  void FlushStats() {
    ExecStats& stats = ctx.db->stats();
    const ExecInfo& cur = ctx.exec;
    auto add = [](metrics::Counter& counter, uint64_t now, uint64_t before) {
      if (now > before) {
        counter.fetch_add(now - before, std::memory_order_relaxed);
      }
    };
    add(stats.index_probes, cur.index_probes, flushed.index_probes);
    add(stats.range_scans, cur.range_scans, flushed.range_scans);
    add(stats.full_scans, cur.full_scans, flushed.full_scans);
    add(stats.rows_scanned, cur.rows_scanned, flushed.rows_scanned);
    add(stats.rows_returned, cur.rows_emitted, flushed.rows_emitted);
    flushed = cur;
  }
};

SelectPlan::SelectPlan(std::unique_ptr<State> state)
    : state_(std::move(state)) {}

SelectPlan::~SelectPlan() { Close(); }

const std::vector<std::string>& SelectPlan::columns() const {
  return state_->columns;
}

const Status& SelectPlan::status() const { return state_->ctx.error; }

const ExecInfo& SelectPlan::exec() const { return state_->ctx.exec; }

bool SelectPlan::Next(RowBlock* out) {
  State* s = state_.get();
  if (s->closed || !s->ctx.error.ok()) return false;
  if (out->capacity == 0) out->capacity = s->ctx.block_rows;
  // Simulated block-allocation failure: the fault harness proves the plan
  // unwinds (Close() reaches every operator, stats flush) when memory for
  // the next block cannot be had.
  DB2G_FAILPOINT_STATUS("sql.executor.alloc", s->ctx.error);
  if (!s->ctx.error.ok()) {
    s->FlushStats();
    return false;
  }
  bool ok = s->root->Next(out);
  if (!s->ctx.error.ok()) {
    s->FlushStats();
    return false;
  }
  if (ok) s->ctx.exec.rows_emitted += out->rows.size();
  s->FlushStats();
  return ok;
}

void SelectPlan::Close() {
  State* s = state_.get();
  if (s == nullptr || s->closed) return;
  s->closed = true;
  s->root->Close();
  s->FinalizeProfiles();
  s->FlushStats();
}

Result<ResultSet> SelectPlan::Drain() {
  ResultSet result;
  result.columns = state_->columns;
  RowBlock block;
  block.capacity = state_->ctx.block_rows;
  while (Next(&block)) {
    for (Row& row : block.rows) result.rows.push_back(std::move(row));
  }
  if (!state_->ctx.error.ok()) return state_->ctx.error;
  state_->FinalizeProfiles();
  result.exec = state_->ctx.exec;
  return result;
}

// ---------------------------------------------------------------------
// SELECT compilation
// ---------------------------------------------------------------------

Result<std::unique_ptr<SelectPlan>> Executor::Compile(const SelectStmt& stmt,
                                                      size_t block_rows) {
  using exec_ops::JoinStageOp;
  using exec_ops::Op;
  using exec_ops::PlanRelation;
  using exec_ops::Projection;
  using exec_ops::StageConfig;

  db_->stats().selects.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_unique<SelectPlan::State>();
  state->ctx.db = db_;
  state->ctx.params = params_;
  state->ctx.block_rows = std::max<size_t>(block_rows, 1);

  // Resolve the statement's effective ExecConfig: process defaults <-
  // session config <- thread-local per-query override (ScopedExecConfig).
  const ExecConfig exec_cfg = db_->ResolveExecConfig();
  const int dop = exec_cfg.parallelism();
  state->ctx.dop = dop;
  if (exec_cfg.block_rows() > 0 && block_rows == kDefaultBlockRows) {
    // A config block size applies only when the caller did not ask for a
    // specific one (streaming pulls pass their own).
    state->ctx.block_rows = std::max<size_t>(exec_cfg.block_rows(), 1);
  }

  // EXPLAIN needs the operator chain recorded even without execution;
  // ANALYZE and the config's profile flag additionally time each Next().
  const bool profiled =
      stmt.explain || stmt.analyze || exec_cfg.profile();
  state->ctx.profiled = profiled;
  auto prof = [&](std::unique_ptr<exec_ops::Op> op, const char* name,
                  std::string detail) -> std::unique_ptr<exec_ops::Op> {
    if (!profiled) return op;
    OpProfile node;
    node.name = name;
    node.detail = std::move(detail);
    state->ctx.profiles.push_back(std::move(node));
    return std::make_unique<exec_ops::ProfiledOp>(
        &state->ctx, std::move(op), &state->ctx.profiles.back());
  };
  auto prof_col = [&](std::unique_ptr<exec_ops::ColOp> op, const char* name,
                      std::string detail)
      -> std::unique_ptr<exec_ops::ColOp> {
    if (!profiled) return op;
    OpProfile node;
    node.name = name;
    node.detail = std::move(detail);
    state->ctx.profiles.push_back(std::move(node));
    return std::make_unique<exec_ops::ProfiledColOp>(
        &state->ctx, std::move(op), &state->ctx.profiles.back());
  };

  // 1. Resolve all FROM-clause relations, in order.
  struct StageInput {
    PlanRelation relation;
    const Expr* on = nullptr;  // join condition (nullptr for FROM list)
    bool left = false;
  };
  std::vector<StageInput> stages;
  auto add_stage = [&](const TableRef& ref, const Expr* on,
                       bool left) -> Status {
    Result<Relation> rel = ResolveRef(ref);
    if (!rel.ok()) return rel.status();
    PlanRelation plan_rel;
    plan_rel.alias = std::move(rel->alias);
    plan_rel.columns = std::move(rel->columns);
    plan_rel.table = rel->table;
    plan_rel.rows = std::move(rel->rows);
    if (rel->owned) state->pinned.push_back(std::move(rel->owned));
    stages.push_back({std::move(plan_rel), on, left});
    return Status::OK();
  };
  for (const TableRef& ref : stmt.from) {
    DB2G_RETURN_NOT_OK(add_stage(ref, nullptr, false));
  }
  for (const JoinClause& join : stmt.joins) {
    DB2G_RETURN_NOT_OK(add_stage(join.table, join.on.get(),
                                 join.kind == JoinClause::Kind::kLeft));
  }

  // 2. Build the full scope. Prebound statements carry resolved column
  // offsets already; otherwise clone + bind against this scope. Join
  // conditions and WHERE conjuncts are bound against the FULL scope — a
  // prefix-stage row shares the offsets of its prefix, so evaluating a
  // conjunct early is safe whenever its columns resolve in the prefix.
  Scope scope;
  for (const StageInput& stage : stages) {
    scope.AddTable(stage.relation.alias, stage.relation.columns);
  }
  bool any_left = false;
  for (const StageInput& stage : stages) any_left |= stage.left;

  std::vector<std::unique_ptr<Expr>>& owned = state->owned;
  auto borrow = [&](const std::unique_ptr<Expr>& source)
      -> Result<const Expr*> {
    if (stmt.prebound) return source.get();
    std::unique_ptr<Expr> copy = source->Clone();
    Status st = BindExpr(copy.get(), scope);
    if (!st.ok()) return st;
    owned.push_back(std::move(copy));
    return static_cast<const Expr*>(owned.back().get());
  };

  const Expr* where = nullptr;
  if (stmt.where) {
    Result<const Expr*> bound = borrow(stmt.where);
    if (!bound.ok()) return bound.status();
    where = *bound;
  }
  std::vector<const Expr*> where_conjuncts;
  SplitConjuncts(where, &where_conjuncts);

  // Join ON conditions, parallel to stages.
  std::vector<const Expr*> stage_on(stages.size(), nullptr);
  for (size_t k = 0; k < stages.size(); ++k) {
    if (stages[k].on == nullptr) continue;
    if (stmt.prebound) {
      stage_on[k] = stages[k].on;
    } else {
      std::unique_ptr<Expr> copy = stages[k].on->Clone();
      DB2G_RETURN_NOT_OK(BindExpr(copy.get(), scope));
      owned.push_back(std::move(copy));
      stage_on[k] = owned.back().get();
    }
  }

  // 3. Chain join-stage operators, probing indexes where possible. A
  // single-stage base-table full scan may instead become the column
  // section of the tree (ColumnScan -> ColumnFilter), consumed in step 5.
  std::unique_ptr<Op> source =
      std::make_unique<exec_ops::SeedOp>(&state->ctx);
  std::unique_ptr<exec_ops::ColOp> col_source;
  // Column-section pieces, recorded by the vectorized gate below and
  // lowered lazily in step 5: at dop > 1 the scan (and, for eligible
  // aggregates, the whole scan+filter+aggregate pipeline) fuses into a
  // parallel operator instead of the serial ColumnScan -> ColumnFilter
  // chain.
  const Table* col_table = nullptr;
  std::vector<const Expr*> col_preds;
  std::string col_alias;
  auto build_col_source = [&]() -> std::unique_ptr<exec_ops::ColOp> {
    if (dop > 1) {
      std::unique_ptr<exec_ops::ColOp> op;
      if (profiled) {
        OpProfile node;
        node.name = "ParallelColumnScan";
        node.detail = col_alias + " dop=" + std::to_string(dop);
        if (!col_preds.empty()) {
          node.detail += " " + std::to_string(col_preds.size()) +
                         " conjunct(s)";
        }
        state->ctx.profiles.push_back(std::move(node));
        OpProfile* prof_node = &state->ctx.profiles.back();
        op = std::make_unique<exec_ops::ParallelColumnScanOp>(
            &state->ctx, col_table, col_preds, dop, prof_node);
        return std::make_unique<exec_ops::ProfiledColOp>(
            &state->ctx, std::move(op), prof_node);
      }
      return std::make_unique<exec_ops::ParallelColumnScanOp>(
          &state->ctx, col_table, col_preds, dop, nullptr);
    }
    std::unique_ptr<exec_ops::ColOp> op =
        prof_col(std::make_unique<exec_ops::ColumnScanOp>(&state->ctx,
                                                          col_table),
                 "ColumnScan", col_alias);
    if (!col_preds.empty()) {
      size_t npreds = col_preds.size();
      op = prof_col(std::make_unique<exec_ops::ColumnFilterOp>(
                        &state->ctx, std::move(op), col_preds),
                    "ColumnFilter", std::to_string(npreds) + " conjunct(s)");
    }
    return op;
  };
  Scope partial_scope;
  bool no_from = stages.empty();

  for (size_t k = 0; k < stages.size(); ++k) {
    StageInput& stage = stages[k];
    Scope before = partial_scope;
    partial_scope.AddTable(stage.relation.alias, stage.relation.columns);

    StageConfig cfg;
    cfg.left = stage.left;

    // Collect predicates applicable at this stage (borrowed pointers into
    // the already-bound where / on expressions).
    if (stage_on[k] != nullptr) cfg.preds.push_back(stage_on[k]);
    if (!any_left) {
      for (const Expr* conjunct : where_conjuncts) {
        if (BindsIn(*conjunct, partial_scope) &&
            !BindsIn(*conjunct, before)) {
          cfg.preds.push_back(conjunct);
        }
      }
    }

    // Probe-term extraction against the inner relation's base table index.
    const Table* table = stage.relation.table;
    if (table != nullptr) {
      std::vector<const Expr*> conjuncts;
      for (const Expr* pred : cfg.preds) {
        SplitConjuncts(pred, &conjuncts);
      }
      const TableSchema& schema = table->schema();
      std::vector<ProbeTerm> candidates;
      for (const Expr* conjunct : conjuncts) {
        const Expr* column_side = nullptr;
        std::vector<const Expr*> values;
        if (conjunct->kind == ExprKind::kBinary && conjunct->op == "=") {
          const Expr* lhs = conjunct->children[0].get();
          const Expr* rhs = conjunct->children[1].get();
          auto is_inner_col = [&](const Expr* e) {
            return e->kind == ExprKind::kColumnRef &&
                   (e->table_alias.empty() ||
                    EqualsIgnoreCase(e->table_alias, stage.relation.alias)) &&
                   schema.HasColumn(e->column) &&
                   // ensure it resolved into this relation, not earlier
                   !BindsIn(*e, before);
          };
          if (is_inner_col(lhs) && BindsIn(*rhs, before)) {
            column_side = lhs;
            values.push_back(rhs);
          } else if (is_inner_col(rhs) && BindsIn(*lhs, before)) {
            column_side = rhs;
            values.push_back(lhs);
          }
        } else if (conjunct->kind == ExprKind::kIn && !conjunct->negated) {
          const Expr* lhs = conjunct->children[0].get();
          if (lhs->kind == ExprKind::kColumnRef &&
              (lhs->table_alias.empty() ||
               EqualsIgnoreCase(lhs->table_alias, stage.relation.alias)) &&
              schema.HasColumn(lhs->column) && !BindsIn(*lhs, before)) {
            bool all_outer = true;
            for (size_t i = 1; i < conjunct->children.size(); ++i) {
              all_outer &= BindsIn(*conjunct->children[i], before);
            }
            if (all_outer) {
              column_side = lhs;
              for (size_t i = 1; i < conjunct->children.size(); ++i) {
                values.push_back(conjunct->children[i].get());
              }
            }
          }
        }
        if (column_side != nullptr) {
          ProbeTerm term;
          term.column_index = *schema.ColumnIndex(column_side->column);
          term.values = std::move(values);
          candidates.push_back(std::move(term));
        }
      }
      // Index preference (multi-column exact cover, then first
      // single-column candidate) lives in ChooseProbeIndex, shared with
      // the graph layer's multi-hop collapse legality check.
      std::vector<ProbeCandidate> shapes;
      shapes.reserve(candidates.size());
      for (const ProbeTerm& term : candidates) {
        shapes.push_back({term.column_index, term.values.size()});
      }
      ProbeChoice choice = ChooseProbeIndex(*table, shapes);
      cfg.index = choice.index;
      for (size_t i : choice.term_indexes) {
        cfg.probe_terms.push_back(candidates[i]);
      }
    }

    // Hash-join candidate: an equality term with no backing index
    // (materialized relations — subqueries, views, table functions — or
    // unindexed base tables). Whether the hash table is actually built is
    // decided at runtime, once the stage has seen more than one outer row.
    if (cfg.index == nullptr) {
      std::vector<const Expr*> conjuncts;
      for (const Expr* pred : cfg.preds) SplitConjuncts(pred, &conjuncts);
      for (const Expr* conjunct : conjuncts) {
        if (conjunct->kind != ExprKind::kBinary || conjunct->op != "=") {
          continue;
        }
        const Expr* lhs = conjunct->children[0].get();
        const Expr* rhs = conjunct->children[1].get();
        auto inner_col = [&](const Expr* e) -> int {
          if (e->kind != ExprKind::kColumnRef) return -1;
          if (!e->table_alias.empty() &&
              !EqualsIgnoreCase(e->table_alias, stage.relation.alias)) {
            return -1;
          }
          if (BindsIn(*e, before)) return -1;
          for (size_t c = 0; c < stage.relation.columns.size(); ++c) {
            if (EqualsIgnoreCase(stage.relation.columns[c], e->column)) {
              return static_cast<int>(c);
            }
          }
          return -1;
        };
        int col = inner_col(lhs);
        if (col >= 0 && BindsIn(*rhs, before)) {
          cfg.has_hash = true;
          cfg.hash_column = static_cast<size_t>(col);
          cfg.hash_key = rhs;
          break;
        }
        col = inner_col(rhs);
        if (col >= 0 && BindsIn(*lhs, before)) {
          cfg.has_hash = true;
          cfg.hash_column = static_cast<size_t>(col);
          cfg.hash_key = lhs;
          break;
        }
      }
    }

    // Ordered-index range path: a range conjunct (col < / <= / > / >= v)
    // on a column with an ORDERED INDEX scans only the matching key range.
    // Used at runtime only when neither the index probe nor the hash join
    // applies.
    if (cfg.index == nullptr && table != nullptr) {
      std::vector<const Expr*> conjuncts;
      for (const Expr* pred : cfg.preds) SplitConjuncts(pred, &conjuncts);
      const TableSchema& schema = table->schema();
      for (const Expr* conjunct : conjuncts) {
        if (conjunct->kind != ExprKind::kBinary) continue;
        const std::string& op = conjunct->op;
        if (op != "<" && op != "<=" && op != ">" && op != ">=") continue;
        const Expr* lhs = conjunct->children[0].get();
        const Expr* rhs = conjunct->children[1].get();
        auto inner_col = [&](const Expr* e) {
          return e->kind == ExprKind::kColumnRef &&
                 (e->table_alias.empty() ||
                  EqualsIgnoreCase(e->table_alias, stage.relation.alias)) &&
                 schema.HasColumn(e->column) && !BindsIn(*e, before);
        };
        const Expr* column_side = nullptr;
        const Expr* value_side = nullptr;
        bool upper = false;  // column < value?
        if (inner_col(lhs) && BindsIn(*rhs, before)) {
          column_side = lhs;
          value_side = rhs;
          upper = op == "<" || op == "<=";
        } else if (inner_col(rhs) && BindsIn(*lhs, before)) {
          column_side = rhs;
          value_side = lhs;
          upper = op == ">" || op == ">=";  // v > col  <=>  col < v
        } else {
          continue;
        }
        size_t col = *schema.ColumnIndex(column_side->column);
        const OrderedIndex* candidate = table->FindOrderedIndexOn(col);
        if (candidate == nullptr) continue;
        if (cfg.range_index != nullptr && candidate != cfg.range_index) {
          continue;
        }
        cfg.range_index = candidate;
        bool exclusive = op == "<" || op == ">";
        if (upper) {
          cfg.range_hi = value_side;
          cfg.range_hi_excl = exclusive;
        } else {
          cfg.range_lo = value_side;
          cfg.range_lo_excl = exclusive;
        }
      }
      if (cfg.range_lo == nullptr && cfg.range_hi == nullptr) {
        cfg.range_index = nullptr;
      }
    }

    // Vectorized path: a single-stage full scan over a base table — no
    // index probe, no range scan (the transient hash join never builds
    // against the one-row seed, so it would full-scan too) — runs
    // column-at-a-time, with the WHERE conjuncts compiled to kernels.
    if (k == 0 && stages.size() == 1 && !cfg.left &&
        stage.relation.table != nullptr && cfg.index == nullptr &&
        cfg.range_index == nullptr && exec_cfg.vectorized()) {
      col_table = stage.relation.table;
      col_preds = cfg.preds;
      col_alias = stage.relation.alias;
      continue;
    }

    std::string stage_detail = stage.relation.alias;
    if (cfg.index != nullptr) {
      stage_detail += " index probe";
    } else if (cfg.range_index != nullptr) {
      stage_detail += " range scan";
    } else if (cfg.has_hash) {
      stage_detail += " hash candidate";
    } else if (stage.relation.table != nullptr) {
      stage_detail += " scan";
    } else {
      stage_detail += " materialized";
    }
    cfg.relation = std::move(stage.relation);
    source = prof(std::make_unique<JoinStageOp>(&state->ctx,
                                                std::move(source),
                                                std::move(cfg)),
                  k == 0 ? "Scan" : "Join", std::move(stage_detail));
  }

  // 4. Residual WHERE (needed with LEFT JOINs; idempotent otherwise).
  if (where != nullptr && (any_left || no_from)) {
    source = prof(std::make_unique<exec_ops::FilterOp>(
                      &state->ctx, std::move(source), where),
                  "Filter", where->ToString());
  }

  // 5. Projection / aggregation.
  bool has_aggregate = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    has_aggregate |= ContainsAggregate(*item.expr);
  }

  Projection proj;
  for (const SelectItem& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      std::vector<size_t> offsets =
          scope.StarOffsets(item.expr->table_alias);
      if (offsets.empty() && !item.expr->table_alias.empty()) {
        return Status::NotFound("unknown alias in " +
                                item.expr->table_alias + ".*");
      }
      for (size_t offset : offsets) {
        state->columns.push_back(scope.NameAt(offset));
      }
      proj.star_expansion.push_back(std::move(offsets));
      proj.item_exprs.push_back(item.expr.get());
      continue;
    }
    Result<const Expr*> bound = borrow(item.expr);
    if (!bound.ok()) return bound.status();
    state->columns.push_back(OutputName(item));
    proj.star_expansion.emplace_back();
    proj.item_exprs.push_back(*bound);
  }

  if (has_aggregate) {
    exec_ops::AggregateOp::Config agg;
    // Fast path for the pushdown shape "SELECT AGG(..), AGG(..) FROM ..."
    // with no grouping: single pass, no hash map, no tree rewriting.
    bool simple = stmt.group_by.empty() && !stmt.distinct &&
                  stmt.order_by.empty() && stmt.having == nullptr;
    if (simple) {
      for (const Expr* expr : proj.item_exprs) {
        simple &= expr->kind == ExprKind::kFuncCall &&
                  IsAggregateName(expr->op);
      }
    }
    agg.simple = simple;
    if (simple) {
      for (const Expr* expr : proj.item_exprs) {
        agg.ops.push_back(ToUpper(expr->op));
        agg.args.push_back(!expr->children.empty() &&
                                   expr->children[0]->kind != ExprKind::kStar
                               ? expr->children[0].get()
                               : nullptr);
      }
    } else {
      for (const auto& g : stmt.group_by) {
        Result<const Expr*> bound = borrow(g);
        if (!bound.ok()) return bound.status();
        agg.group_exprs.push_back(*bound);
      }
      agg.has_group_by = !stmt.group_by.empty();
      if (stmt.having) {
        Result<const Expr*> bound = borrow(stmt.having);
        if (!bound.ok()) return bound.status();
        agg.having = *bound;
      }
      for (const Expr* expr : proj.item_exprs) {
        CollectAggregates(expr, &agg.agg_specs);
      }
      if (agg.having != nullptr) {
        CollectAggregates(agg.having, &agg.agg_specs);
      }
      agg.order_by = &stmt.order_by;
      agg.columns = &state->columns;
    }
    bool lowered = false;
    if (col_table != nullptr) {
      exec_ops::ColumnAggregateOp::Config vagg;
      if (LowerVectorizedAggregate(agg, proj, stmt, &vagg)) {
        const char* vdetail = vagg.simple ? "simple" : "grouped";
        if (dop > 1) {
          // Fused parallel scan+filter+aggregate: the barrier owns the
          // whole input, so the morsel workers aggregate directly into
          // per-worker partial states merged in morsel order.
          std::string pdetail =
              std::string(vdetail) + " dop=" + std::to_string(dop);
          if (profiled) {
            OpProfile node;
            node.name = "ParallelColumnAggregate";
            node.detail = std::move(pdetail);
            state->ctx.profiles.push_back(std::move(node));
            OpProfile* prof_node = &state->ctx.profiles.back();
            std::unique_ptr<exec_ops::Op> op =
                std::make_unique<exec_ops::ParallelColumnAggregateOp>(
                    &state->ctx, col_table, col_preds, std::move(vagg), dop,
                    prof_node);
            source = std::make_unique<exec_ops::ProfiledOp>(
                &state->ctx, std::move(op), prof_node);
          } else {
            source = std::make_unique<exec_ops::ParallelColumnAggregateOp>(
                &state->ctx, col_table, col_preds, std::move(vagg), dop,
                nullptr);
          }
        } else {
          source = prof(std::make_unique<exec_ops::ColumnAggregateOp>(
                            &state->ctx, build_col_source(),
                            std::move(vagg)),
                        "ColumnAggregate", vdetail);
        }
        lowered = true;
      } else {
        // Aggregate shape without a vectorized lowering: materialize rows
        // and keep the scalar barrier ("mixed" mode in profile()).
        source = prof(std::make_unique<exec_ops::ColumnToRowOp>(
                          &state->ctx, build_col_source()),
                      "ColumnToRow", "");
      }
    }
    if (!lowered) {
      const char* adetail = agg.simple ? "simple" : "grouped";
      agg.proj = std::move(proj);
      source = prof(std::make_unique<exec_ops::AggregateOp>(
                        &state->ctx, std::move(source), std::move(agg)),
                    "Aggregate", adetail);
    }
  } else {
    // Plain projection, with optional ORDER BY over source rows.
    std::vector<const Expr*> order_exprs;
    std::vector<bool> order_desc;
    for (const OrderItem& item : stmt.order_by) {
      order_desc.push_back(item.descending);
      if (stmt.prebound) {
        order_exprs.push_back(item.expr.get());
        continue;
      }
      std::unique_ptr<Expr> expr = item.expr->Clone();
      // ORDER BY may reference a select alias.
      bool rebound = false;
      if (expr->kind == ExprKind::kColumnRef && expr->table_alias.empty()) {
        for (size_t i = 0; i < stmt.items.size(); ++i) {
          if (EqualsIgnoreCase(stmt.items[i].alias, expr->column)) {
            order_exprs.push_back(proj.item_exprs[i]);
            rebound = true;
            break;
          }
        }
      }
      if (rebound) continue;
      DB2G_RETURN_NOT_OK(BindExpr(expr.get(), scope));
      owned.push_back(std::move(expr));
      order_exprs.push_back(owned.back().get());
    }
    bool lowered = false;
    std::vector<size_t> out_cols;
    if (col_table != nullptr) col_source = build_col_source();
    if (col_source != nullptr && order_exprs.empty() &&
        LowerVectorizedProjection(proj, &out_cols)) {
      size_t ncols = out_cols.size();
      source = prof(std::make_unique<exec_ops::ColumnProjectOp>(
                        &state->ctx, std::move(col_source),
                        std::move(out_cols)),
                    "ColumnProject", "cols=" + std::to_string(ncols));
      lowered = true;
    } else if (col_source != nullptr) {
      // Computed select items or ORDER BY: materialize rows and keep the
      // scalar projection/sort ("mixed" mode in profile()).
      source = prof(std::make_unique<exec_ops::ColumnToRowOp>(
                        &state->ctx, std::move(col_source)),
                    "ColumnToRow", "");
    }
    if (!lowered) {
      size_t nitems = proj.item_exprs.size();
      if (!order_exprs.empty()) {
        size_t nkeys = order_exprs.size();
        source = prof(std::make_unique<exec_ops::SortProjectOp>(
                          &state->ctx, std::move(source), std::move(proj),
                          std::move(order_exprs), std::move(order_desc)),
                      "SortProject", "keys=" + std::to_string(nkeys));
      } else {
        source = prof(std::make_unique<exec_ops::ProjectOp>(
                          &state->ctx, std::move(source), std::move(proj)),
                      "Project", "cols=" + std::to_string(nitems));
      }
    }
  }

  // 6. DISTINCT, LIMIT.
  if (stmt.distinct) {
    source = prof(std::make_unique<exec_ops::DistinctOp>(&state->ctx,
                                                         std::move(source)),
                  "Distinct", "");
  }
  if (stmt.limit >= 0) {
    source = prof(std::make_unique<exec_ops::LimitOp>(
                      &state->ctx, std::move(source),
                      static_cast<uint64_t>(stmt.limit)),
                  "Limit", std::to_string(stmt.limit));
  }

  state->root = std::move(source);
  return std::unique_ptr<SelectPlan>(new SelectPlan(std::move(state)));
}

Result<ResultSet> Executor::Select(const SelectStmt& stmt) {
  Result<std::unique_ptr<SelectPlan>> plan = Compile(stmt);
  if (!plan.ok()) return plan.status();
  if (!stmt.explain) return (*plan)->Drain();

  // EXPLAIN [ANALYZE]: return the rendered operator tree, one row per
  // line, instead of the query's rows. ANALYZE runs the query first so
  // the nodes carry actual blocks/rows/micros; plain EXPLAIN only
  // compiles, leaving the counters zero (and unrendered).
  ResultSet out;
  out.columns = {"plan"};
  if (stmt.analyze) {
    Result<ResultSet> executed = (*plan)->Drain();
    if (!executed.ok()) return executed.status();
    out.exec = executed->exec;
  } else {
    (*plan)->Close();
    out.exec = (*plan)->exec();
  }
  std::string tree = RenderPlanTree(out.exec.op_profiles, stmt.analyze);
  size_t start = 0;
  while (start < tree.size()) {
    size_t end = tree.find('\n', start);
    if (end == std::string::npos) end = tree.size();
    out.rows.push_back({Value(tree.substr(start, end - start))});
    start = end + 1;
  }
  return out;
}

// ---------------------------------------------------------------------
// Prebinding (Database::Prepare fast path)
// ---------------------------------------------------------------------

bool PrebindSelect(Database* db, SelectStmt* stmt) {
  // Build the scope from catalog metadata only.
  Scope scope;
  auto add_ref = [&](const TableRef& ref) -> bool {
    Result<std::vector<ColumnDef>> cols = RelationColumns(db, ref);
    if (!cols.ok()) return false;
    std::vector<std::string> names;
    for (const ColumnDef& c : *cols) names.push_back(c.name);
    scope.AddTable(ref.alias, names);
    return true;
  };
  for (const TableRef& ref : stmt->from) {
    if (!add_ref(ref)) return false;
  }
  for (const JoinClause& join : stmt->joins) {
    if (!add_ref(join.table)) return false;
  }

  if (stmt->where && !BindExpr(stmt->where.get(), scope).ok()) return false;
  for (JoinClause& join : stmt->joins) {
    if (join.on && !BindExpr(join.on.get(), scope).ok()) return false;
  }
  for (SelectItem& item : stmt->items) {
    if (item.expr->kind == ExprKind::kStar) continue;
    if (!BindExpr(item.expr.get(), scope).ok()) return false;
  }
  for (auto& g : stmt->group_by) {
    if (!BindExpr(g.get(), scope).ok()) return false;
  }
  if (stmt->having && !BindExpr(stmt->having.get(), scope).ok()) {
    return false;
  }
  for (OrderItem& item : stmt->order_by) {
    // Rewrite select-alias references to the underlying expression so
    // execution needs no alias logic.
    if (item.expr->kind == ExprKind::kColumnRef &&
        item.expr->table_alias.empty()) {
      bool rewritten = false;
      for (SelectItem& sel : stmt->items) {
        if (EqualsIgnoreCase(sel.alias, item.expr->column) &&
            sel.expr->kind != ExprKind::kStar) {
          item.expr = sel.expr->Clone();
          rewritten = true;
          break;
        }
      }
      if (rewritten) continue;  // already bound via the item
    }
    if (!BindExpr(item.expr.get(), scope).ok()) return false;
  }
  stmt->prebound = true;
  return true;
}

// ---------------------------------------------------------------------
// Schema derivation (CREATE VIEW)
// ---------------------------------------------------------------------

Result<std::vector<ColumnDef>> RelationColumns(Database* db,
                                               const TableRef& ref) {
  switch (ref.kind) {
    case TableRef::Kind::kTable: {
      const TableSchema* schema = db->GetSchema(ref.table);
      if (schema == nullptr) {
        return Status::NotFound("unknown table or view: " + ref.table);
      }
      return schema->columns;
    }
    case TableRef::Kind::kSubquery:
      return DeriveSelectColumns(db, *ref.subquery);
    case TableRef::Kind::kTableFunction:
      return ref.function_columns;
  }
  return Status::Internal("unreachable");
}

Result<std::vector<ColumnDef>> DeriveSelectColumns(Database* db,
                                                   const SelectStmt& stmt) {
  // Build a scope plus a parallel type map.
  Scope scope;
  std::vector<ColumnType> types;
  auto add_ref = [&](const TableRef& ref) -> Status {
    Result<std::vector<ColumnDef>> cols = RelationColumns(db, ref);
    if (!cols.ok()) return cols.status();
    std::vector<std::string> names;
    for (const ColumnDef& c : *cols) {
      names.push_back(c.name);
      types.push_back(c.type);
    }
    scope.AddTable(ref.alias, names);
    return Status::OK();
  };
  for (const TableRef& ref : stmt.from) {
    DB2G_RETURN_NOT_OK(add_ref(ref));
  }
  for (const JoinClause& join : stmt.joins) {
    DB2G_RETURN_NOT_OK(add_ref(join.table));
  }

  std::vector<ColumnDef> out;
  for (const SelectItem& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      for (size_t offset : scope.StarOffsets(item.expr->table_alias)) {
        ColumnDef col;
        col.name = scope.NameAt(offset);
        col.type = types[offset];
        out.push_back(std::move(col));
      }
      continue;
    }
    ColumnDef col;
    col.name = !item.alias.empty()
                   ? item.alias
                   : (item.expr->kind == ExprKind::kColumnRef
                          ? item.expr->column
                          : item.expr->ToString());
    col.type = ColumnType::kString;
    if (item.expr->kind == ExprKind::kColumnRef) {
      Result<size_t> offset =
          scope.Resolve(item.expr->table_alias, item.expr->column);
      if (!offset.ok()) return offset.status();
      col.type = types[*offset];
    } else if (item.expr->kind == ExprKind::kFuncCall &&
               EqualsIgnoreCase(item.expr->op, "COUNT")) {
      col.type = ColumnType::kInt;
    } else if (item.expr->kind == ExprKind::kFuncCall &&
               (EqualsIgnoreCase(item.expr->op, "AVG") ||
                EqualsIgnoreCase(item.expr->op, "SUM"))) {
      col.type = ColumnType::kDouble;
    } else if (item.expr->kind == ExprKind::kLiteral) {
      switch (item.expr->literal.type()) {
        case ValueType::kInt:
          col.type = ColumnType::kInt;
          break;
        case ValueType::kDouble:
          col.type = ColumnType::kDouble;
          break;
        case ValueType::kBool:
          col.type = ColumnType::kBool;
          break;
        default:
          col.type = ColumnType::kString;
      }
    }
    out.push_back(std::move(col));
  }
  return out;
}

}  // namespace db2graph::sql
