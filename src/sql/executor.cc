#include "sql/executor.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "sql/database.h"
#include "sql/expr.h"
#include "sql/table.h"

namespace db2graph::sql {

namespace {

// ---------------------------------------------------------------------
// Predicate decomposition helpers
// ---------------------------------------------------------------------

// Splits a boolean expression into its top-level AND conjuncts.
void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary && expr->op == "AND") {
    SplitConjuncts(expr->children[0].get(), out);
    SplitConjuncts(expr->children[1].get(), out);
    return;
  }
  out->push_back(expr);
}

// True when every column reference in `expr` resolves in `scope`.
bool BindsIn(const Expr& expr, const Scope& scope) {
  if (expr.kind == ExprKind::kColumnRef) {
    return scope.Resolve(expr.table_alias, expr.column).ok();
  }
  if (expr.kind == ExprKind::kStar) return false;
  for (const auto& child : expr.children) {
    if (!BindsIn(*child, scope)) return false;
  }
  return true;
}

// A predicate usable for index probing on the newly joined relation:
// `column` belongs to that relation and every `value` expression binds in
// the pre-join scope (so it is computable per outer row).
struct ProbeTerm {
  size_t column_index;                   // within the inner relation
  std::vector<const Expr*> values;       // 1 = equality, >1 = IN list
};

}  // namespace

// ---------------------------------------------------------------------
// Relation resolution
// ---------------------------------------------------------------------

Result<Executor::Relation> Executor::ResolveRef(const TableRef& ref) {
  Relation rel;
  rel.alias = ref.alias;
  switch (ref.kind) {
    case TableRef::Kind::kTable: {
      if (!skip_access_checks_) {
        DB2G_RETURN_NOT_OK(db_->CheckAccess(ref.table, /*write=*/false));
      }
      if (Table* table = db_->GetTable(ref.table)) {
        rel.table = table;
        rel.columns = table->schema().ColumnNames();
        return rel;
      }
      if (db_->IsView(ref.table)) {
        // Expand the non-materialized view by executing its definition.
        const TableSchema* schema = db_->GetSchema(ref.table);
        SelectStmt* view_select = nullptr;
        {
          auto it = db_->views_.find(CatalogKey(ref.table));
          view_select = it->second.select.get();
        }
        Executor sub(db_, nullptr);
        sub.set_skip_access_checks(true);  // definer's rights
        Result<ResultSet> rs = sub.Select(*view_select);
        if (!rs.ok()) return rs.status();
        rel.columns = schema->ColumnNames();
        rel.rows = std::move(rs->rows);
        return rel;
      }
      return Status::NotFound("unknown table or view: " + ref.table);
    }
    case TableRef::Kind::kSubquery: {
      Executor sub(db_, params_);
      Result<ResultSet> rs = sub.Select(*ref.subquery);
      if (!rs.ok()) return rs.status();
      rel.columns = rs->columns;
      rel.rows = std::move(rs->rows);
      return rel;
    }
    case TableRef::Kind::kTableFunction: {
      const Database::TableFunction* fn =
          db_->FindTableFunction(ref.function_name);
      if (fn == nullptr) {
        return Status::NotFound("unknown table function: " +
                                ref.function_name);
      }
      std::vector<Value> args;
      Row empty;
      for (const auto& arg : ref.function_args) {
        args.push_back(EvalExpr(*arg, empty, params_));
      }
      Result<ResultSet> rs = (*fn)(args);
      if (!rs.ok()) return rs.status();
      // The declared column list names (and truncates/pads) the output.
      for (const ColumnDef& c : ref.function_columns) {
        rel.columns.push_back(c.name);
      }
      rel.rows.reserve(rs->rows.size());
      for (Row& row : rs->rows) {
        row.resize(ref.function_columns.size());
        rel.rows.push_back(std::move(row));
      }
      return rel;
    }
  }
  return Status::Internal("unreachable table ref kind");
}

// ---------------------------------------------------------------------
// Aggregation machinery
// ---------------------------------------------------------------------

namespace {

struct AggSpec {
  const Expr* node;   // the aggregate kFuncCall node
  std::string op;     // upper-cased
  const Expr* arg;    // nullptr for COUNT(*)
};

void CollectAggregates(const Expr* expr, std::vector<AggSpec>* out) {
  if (expr->kind == ExprKind::kFuncCall && IsAggregateName(expr->op)) {
    AggSpec spec;
    spec.node = expr;
    spec.op = ToUpper(expr->op);
    spec.arg = expr->children.empty() ||
                       expr->children[0]->kind == ExprKind::kStar
                   ? nullptr
                   : expr->children[0].get();
    out->push_back(spec);
    return;  // no nested aggregates
  }
  for (const auto& child : expr->children) {
    CollectAggregates(child.get(), out);
  }
}

struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value min;
  Value max;

  void Accumulate(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.is_numeric()) {
      sum += v.NumericValue();
      if (v.is_int()) {
        isum += v.as_int();
      } else {
        sum_is_int = false;
      }
    } else {
      sum_is_int = false;
    }
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || v > max) max = v;
  }

  Value Finish(const std::string& op) const {
    if (op == "COUNT") return Value(count);
    if (count == 0) return Value::Null();
    if (op == "SUM") return sum_is_int ? Value(isum) : Value(sum);
    if (op == "AVG") return Value(sum / static_cast<double>(count));
    if (op == "MIN") return min;
    if (op == "MAX") return max;
    return Value::Null();
  }
};

// Evaluates an expression in which aggregate nodes have precomputed values.
Value EvalWithAggregates(
    const Expr& expr, const Row& row, const std::vector<Value>* params,
    const std::unordered_map<const Expr*, Value>& agg_values) {
  auto it = agg_values.find(&expr);
  if (it != agg_values.end()) return it->second;
  if (!ContainsAggregate(expr)) return EvalExpr(expr, row, params);
  // Recurse through composite nodes that contain aggregates below.
  Expr shallow;
  shallow.kind = expr.kind;
  shallow.op = expr.op;
  shallow.negated = expr.negated;
  shallow.literal = expr.literal;
  shallow.param_index = expr.param_index;
  shallow.bound_index = expr.bound_index;
  for (const auto& child : expr.children) {
    shallow.children.push_back(
        MakeLiteral(EvalWithAggregates(*child, row, params, agg_values)));
  }
  return EvalExpr(shallow, row, params);
}

std::string OutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column;
  return item.expr->ToString();
}

}  // namespace

// ---------------------------------------------------------------------
// SELECT execution
// ---------------------------------------------------------------------

Result<ResultSet> Executor::Select(const SelectStmt& stmt) {
  db_->stats().selects.fetch_add(1, std::memory_order_relaxed);
  // Per-statement access-path attribution, mirrored into the global
  // ExecStats at each increment site and returned on the ResultSet.
  ExecInfo exec_info;

  // 1. Resolve all FROM-clause relations, in order.
  struct Stage {
    Relation relation;
    const Expr* on = nullptr;  // join condition (nullptr for FROM list)
    bool left = false;
  };
  std::vector<Stage> stages;
  for (const TableRef& ref : stmt.from) {
    Result<Relation> rel = ResolveRef(ref);
    if (!rel.ok()) return rel.status();
    stages.push_back({std::move(*rel), nullptr, false});
  }
  for (const JoinClause& join : stmt.joins) {
    Result<Relation> rel = ResolveRef(join.table);
    if (!rel.ok()) return rel.status();
    stages.push_back({std::move(*rel), join.on.get(),
                      join.kind == JoinClause::Kind::kLeft});
  }

  // 2. Build the full scope. Prebound statements carry resolved column
  // offsets already; otherwise clone + bind against this scope. Join
  // conditions and WHERE conjuncts are bound against the FULL scope — a
  // prefix-stage row shares the offsets of its prefix, so evaluating a
  // conjunct early is safe whenever its columns resolve in the prefix.
  Scope scope;
  for (const Stage& stage : stages) {
    scope.AddTable(stage.relation.alias, stage.relation.columns);
  }
  bool any_left = false;
  for (const Stage& stage : stages) any_left |= stage.left;

  std::vector<std::unique_ptr<Expr>> owned;  // keeps per-call clones alive
  auto borrow = [&](const std::unique_ptr<Expr>& source)
      -> Result<const Expr*> {
    if (stmt.prebound) return source.get();
    std::unique_ptr<Expr> copy = source->Clone();
    Status st = BindExpr(copy.get(), scope);
    if (!st.ok()) return st;
    owned.push_back(std::move(copy));
    return static_cast<const Expr*>(owned.back().get());
  };

  const Expr* where = nullptr;
  if (stmt.where) {
    Result<const Expr*> bound = borrow(stmt.where);
    if (!bound.ok()) return bound.status();
    where = *bound;
  }
  std::vector<const Expr*> where_conjuncts;
  SplitConjuncts(where, &where_conjuncts);

  // Join ON conditions, parallel to stages.
  std::vector<const Expr*> stage_on(stages.size(), nullptr);
  for (size_t k = 0; k < stages.size(); ++k) {
    if (stages[k].on == nullptr) continue;
    // stages[k].on points into stmt; bind/borrow like where.
    if (stmt.prebound) {
      stage_on[k] = stages[k].on;
    } else {
      std::unique_ptr<Expr> copy = stages[k].on->Clone();
      DB2G_RETURN_NOT_OK(BindExpr(copy.get(), scope));
      owned.push_back(std::move(copy));
      stage_on[k] = owned.back().get();
    }
  }

  // 3. Iteratively join stages, probing indexes where possible.
  std::vector<Row> acc;
  acc.emplace_back();  // one empty row seeds the pipeline
  Scope partial_scope;
  bool no_from = stages.empty();

  for (size_t k = 0; k < stages.size(); ++k) {
    Stage& stage = stages[k];
    Scope before = partial_scope;
    partial_scope.AddTable(stage.relation.alias, stage.relation.columns);

    // Collect predicates applicable at this stage (borrowed pointers into
    // the already-bound where / on expressions).
    std::vector<const Expr*> stage_preds;
    if (stage_on[k] != nullptr) stage_preds.push_back(stage_on[k]);
    if (!any_left) {
      for (const Expr* conjunct : where_conjuncts) {
        if (BindsIn(*conjunct, partial_scope) &&
            !BindsIn(*conjunct, before)) {
          stage_preds.push_back(conjunct);
        }
      }
    }

    // Probe-term extraction against the inner relation's base table index.
    const Table* table = stage.relation.table;
    const Index* index = nullptr;
    std::vector<ProbeTerm> probe_terms;
    if (table != nullptr) {
      std::vector<const Expr*> conjuncts;
      for (const Expr* pred : stage_preds) {
        SplitConjuncts(pred, &conjuncts);
      }
      const TableSchema& schema = table->schema();
      std::vector<ProbeTerm> candidates;
      for (const Expr* conjunct : conjuncts) {
        const Expr* column_side = nullptr;
        std::vector<const Expr*> values;
        if (conjunct->kind == ExprKind::kBinary && conjunct->op == "=") {
          const Expr* lhs = conjunct->children[0].get();
          const Expr* rhs = conjunct->children[1].get();
          auto is_inner_col = [&](const Expr* e) {
            return e->kind == ExprKind::kColumnRef &&
                   (e->table_alias.empty() ||
                    EqualsIgnoreCase(e->table_alias, stage.relation.alias)) &&
                   schema.HasColumn(e->column) &&
                   // ensure it resolved into this relation, not earlier
                   !BindsIn(*e, before);
          };
          if (is_inner_col(lhs) && BindsIn(*rhs, before)) {
            column_side = lhs;
            values.push_back(rhs);
          } else if (is_inner_col(rhs) && BindsIn(*lhs, before)) {
            column_side = rhs;
            values.push_back(lhs);
          }
        } else if (conjunct->kind == ExprKind::kIn && !conjunct->negated) {
          const Expr* lhs = conjunct->children[0].get();
          if (lhs->kind == ExprKind::kColumnRef &&
              (lhs->table_alias.empty() ||
               EqualsIgnoreCase(lhs->table_alias, stage.relation.alias)) &&
              schema.HasColumn(lhs->column) && !BindsIn(*lhs, before)) {
            bool all_outer = true;
            for (size_t i = 1; i < conjunct->children.size(); ++i) {
              all_outer &= BindsIn(*conjunct->children[i], before);
            }
            if (all_outer) {
              column_side = lhs;
              for (size_t i = 1; i < conjunct->children.size(); ++i) {
                values.push_back(conjunct->children[i].get());
              }
            }
          }
        }
        if (column_side != nullptr) {
          ProbeTerm term;
          term.column_index = *schema.ColumnIndex(column_side->column);
          term.values = std::move(values);
          candidates.push_back(std::move(term));
        }
      }
      // Prefer a multi-column index exactly covered by equality terms, then
      // any single-column index on one term.
      std::vector<size_t> eq_columns;
      for (const ProbeTerm& term : candidates) {
        if (term.values.size() == 1) eq_columns.push_back(term.column_index);
      }
      if (!eq_columns.empty()) {
        index = table->FindIndexOn(eq_columns);
        if (index != nullptr) {
          for (size_t col : index->column_indexes()) {
            for (const ProbeTerm& term : candidates) {
              if (term.values.size() == 1 && term.column_index == col) {
                probe_terms.push_back(term);
                break;
              }
            }
          }
        }
      }
      if (index == nullptr) {
        for (const ProbeTerm& term : candidates) {
          const Index* single = table->FindIndexOn({term.column_index});
          if (single != nullptr) {
            index = single;
            probe_terms.push_back(term);
            break;
          }
        }
      }
    }

    // Hash-join fallback: when there is an equality term but no backing
    // index (materialized relations — subqueries, views, table functions —
    // or unindexed base tables) and several outer rows, build a transient
    // hash table over the inner side instead of rescanning it per row.
    ProbeTerm hash_term_storage;
    bool use_hash_join = false;
    std::unordered_multimap<Value, size_t, ValueHash> hash_join;
    if (index == nullptr && acc.size() > 1) {
      std::vector<const Expr*> conjuncts;
      for (const Expr* pred : stage_preds) SplitConjuncts(pred, &conjuncts);
      // Recompute candidates for the materialized case (the block above
      // only ran for base tables).
      std::vector<ProbeTerm> candidates;
      for (const Expr* conjunct : conjuncts) {
        if (conjunct->kind != ExprKind::kBinary || conjunct->op != "=") {
          continue;
        }
        const Expr* lhs = conjunct->children[0].get();
        const Expr* rhs = conjunct->children[1].get();
        auto inner_col = [&](const Expr* e) -> int {
          if (e->kind != ExprKind::kColumnRef) return -1;
          if (!e->table_alias.empty() &&
              !EqualsIgnoreCase(e->table_alias, stage.relation.alias)) {
            return -1;
          }
          if (BindsIn(*e, before)) return -1;
          for (size_t c = 0; c < stage.relation.columns.size(); ++c) {
            if (EqualsIgnoreCase(stage.relation.columns[c], e->column)) {
              return static_cast<int>(c);
            }
          }
          return -1;
        };
        int col = inner_col(lhs);
        if (col >= 0 && BindsIn(*rhs, before)) {
          candidates.push_back(
              {static_cast<size_t>(col), {rhs}});
        } else {
          col = inner_col(rhs);
          if (col >= 0 && BindsIn(*lhs, before)) {
            candidates.push_back({static_cast<size_t>(col), {lhs}});
          }
        }
      }
      if (!candidates.empty()) {
        hash_term_storage = candidates[0];
        use_hash_join = true;
        if (stage.relation.materialized()) {
          for (size_t r = 0; r < stage.relation.rows.size(); ++r) {
            hash_join.emplace(
                stage.relation.rows[r][hash_term_storage.column_index], r);
          }
        } else {
          for (RowId rid = 0; rid < table->slot_count(); ++rid) {
            if (!table->IsLive(rid)) continue;
            hash_join.emplace(
                table->GetRow(rid)[hash_term_storage.column_index], rid);
          }
        }
      }
    }

    // Ordered-index range path: a range conjunct (col < / <= / > / >= v)
    // on a column with an ORDERED INDEX scans only the matching key range.
    const OrderedIndex* range_index = nullptr;
    const Expr* range_lo = nullptr;
    const Expr* range_hi = nullptr;
    bool range_lo_excl = false;
    bool range_hi_excl = false;
    if (index == nullptr && !use_hash_join && table != nullptr) {
      std::vector<const Expr*> conjuncts;
      for (const Expr* pred : stage_preds) SplitConjuncts(pred, &conjuncts);
      const TableSchema& schema = table->schema();
      for (const Expr* conjunct : conjuncts) {
        if (conjunct->kind != ExprKind::kBinary) continue;
        const std::string& op = conjunct->op;
        if (op != "<" && op != "<=" && op != ">" && op != ">=") continue;
        const Expr* lhs = conjunct->children[0].get();
        const Expr* rhs = conjunct->children[1].get();
        auto inner_col = [&](const Expr* e) {
          return e->kind == ExprKind::kColumnRef &&
                 (e->table_alias.empty() ||
                  EqualsIgnoreCase(e->table_alias, stage.relation.alias)) &&
                 schema.HasColumn(e->column) && !BindsIn(*e, before);
        };
        const Expr* column_side = nullptr;
        const Expr* value_side = nullptr;
        bool upper = false;  // column < value?
        if (inner_col(lhs) && BindsIn(*rhs, before)) {
          column_side = lhs;
          value_side = rhs;
          upper = op == "<" || op == "<=";
        } else if (inner_col(rhs) && BindsIn(*lhs, before)) {
          column_side = rhs;
          value_side = lhs;
          upper = op == ">" || op == ">=";  // v > col  <=>  col < v
        } else {
          continue;
        }
        size_t col = *schema.ColumnIndex(column_side->column);
        const OrderedIndex* candidate = table->FindOrderedIndexOn(col);
        if (candidate == nullptr) continue;
        if (range_index != nullptr && candidate != range_index) continue;
        range_index = candidate;
        bool exclusive = op == "<" || op == ">";
        if (upper) {
          range_hi = value_side;
          range_hi_excl = exclusive;
        } else {
          range_lo = value_side;
          range_lo_excl = exclusive;
        }
      }
      if (range_lo == nullptr && range_hi == nullptr) range_index = nullptr;
    }

    std::vector<Row> next;
    const size_t inner_width = stage.relation.columns.size();
    auto emit_if_match = [&](const Row& outer, const Row& inner) -> bool {
      Row joined;
      joined.reserve(outer.size() + inner.size());
      joined.insert(joined.end(), outer.begin(), outer.end());
      joined.insert(joined.end(), inner.begin(), inner.end());
      for (const Expr* pred : stage_preds) {
        Value v = EvalExpr(*pred, joined, params_);
        if (v.is_null() || !v.Truthy()) return false;
      }
      next.push_back(std::move(joined));
      return true;
    };

    auto& stats = db_->stats();
    for (const Row& outer : acc) {
      bool matched = false;
      if (table != nullptr && index != nullptr) {
        // Index probe: enumerate the cartesian product of probe values
        // (IN-lists contribute several keys).
        std::vector<Row> keys;
        keys.emplace_back();
        for (size_t c : index->column_indexes()) {
          const ProbeTerm* term = nullptr;
          for (const ProbeTerm& t : probe_terms) {
            if (t.column_index == c) {
              term = &t;
              break;
            }
          }
          std::vector<Row> expanded;
          for (const Row& partial : keys) {
            for (const Expr* value_expr : term->values) {
              Row key = partial;
              key.push_back(EvalExpr(*value_expr, outer, params_));
              expanded.push_back(std::move(key));
            }
          }
          keys = std::move(expanded);
        }
        // Duplicate IN-list values must not duplicate result rows.
        std::sort(keys.begin(), keys.end());
        keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
        std::vector<RowId> rids;
        for (const Row& key : keys) {
          index->Lookup(key, &rids);
        }
        stats.index_probes.fetch_add(keys.size(), std::memory_order_relaxed);
        stats.rows_scanned.fetch_add(rids.size(), std::memory_order_relaxed);
        exec_info.index_probes += keys.size();
        exec_info.rows_scanned += rids.size();
        for (RowId rid : rids) {
          matched |= emit_if_match(outer, table->GetRow(rid));
        }
      } else if (range_index != nullptr) {
        Value lo_value;
        Value hi_value;
        if (range_lo != nullptr) lo_value = EvalExpr(*range_lo, outer, params_);
        if (range_hi != nullptr) hi_value = EvalExpr(*range_hi, outer, params_);
        std::vector<RowId> rids;
        range_index->RangeLookup(range_lo != nullptr ? &lo_value : nullptr,
                                 range_lo_excl,
                                 range_hi != nullptr ? &hi_value : nullptr,
                                 range_hi_excl, &rids);
        stats.range_scans.fetch_add(1, std::memory_order_relaxed);
        stats.rows_scanned.fetch_add(rids.size(), std::memory_order_relaxed);
        exec_info.range_scans += 1;
        exec_info.rows_scanned += rids.size();
        for (RowId rid : rids) {
          matched |= emit_if_match(outer, table->GetRow(rid));
        }
      } else if (use_hash_join) {
        Value key = EvalExpr(*hash_term_storage.values[0], outer, params_);
        auto [begin, end] = hash_join.equal_range(key);
        stats.index_probes.fetch_add(1, std::memory_order_relaxed);
        exec_info.index_probes += 1;
        for (auto it = begin; it != end; ++it) {
          stats.rows_scanned.fetch_add(1, std::memory_order_relaxed);
          exec_info.rows_scanned += 1;
          const Row& inner = stage.relation.materialized()
                                 ? stage.relation.rows[it->second]
                                 : table->GetRow(it->second);
          matched |= emit_if_match(outer, inner);
        }
      } else if (table != nullptr) {
        stats.full_scans.fetch_add(1, std::memory_order_relaxed);
        stats.rows_scanned.fetch_add(table->row_count(),
                                     std::memory_order_relaxed);
        exec_info.full_scans += 1;
        exec_info.rows_scanned += table->row_count();
        for (RowId rid = 0; rid < table->slot_count(); ++rid) {
          if (!table->IsLive(rid)) continue;
          matched |= emit_if_match(outer, table->GetRow(rid));
        }
      } else {
        stats.rows_scanned.fetch_add(stage.relation.rows.size(),
                                     std::memory_order_relaxed);
        exec_info.rows_scanned += stage.relation.rows.size();
        for (const Row& inner : stage.relation.rows) {
          matched |= emit_if_match(outer, inner);
        }
      }
      if (!matched && stage.left) {
        Row joined = outer;
        joined.resize(joined.size() + inner_width);  // null extension
        next.push_back(std::move(joined));
      }
    }
    acc = std::move(next);
  }

  // 4. Residual WHERE (needed with LEFT JOINs; idempotent otherwise).
  if (where != nullptr && (any_left || no_from)) {
    std::vector<Row> filtered;
    for (Row& row : acc) {
      Value v = EvalExpr(*where, row, params_);
      if (!v.is_null() && v.Truthy()) filtered.push_back(std::move(row));
    }
    acc = std::move(filtered);
  }

  // 5. Projection / aggregation.
  bool has_aggregate = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    has_aggregate |= ContainsAggregate(*item.expr);
  }

  ResultSet result;
  result.exec = exec_info;
  std::vector<const Expr*> item_exprs;
  std::vector<std::vector<size_t>> star_expansion;  // per item (kStar only)
  for (const SelectItem& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      std::vector<size_t> offsets =
          scope.StarOffsets(item.expr->table_alias);
      if (offsets.empty() && !item.expr->table_alias.empty()) {
        return Status::NotFound("unknown alias in " +
                                item.expr->table_alias + ".*");
      }
      for (size_t offset : offsets) {
        result.columns.push_back(scope.NameAt(offset));
      }
      star_expansion.push_back(std::move(offsets));
      item_exprs.push_back(item.expr.get());
      continue;
    }
    Result<const Expr*> bound = borrow(item.expr);
    if (!bound.ok()) return bound.status();
    result.columns.push_back(OutputName(item));
    star_expansion.emplace_back();
    item_exprs.push_back(*bound);
  }

  if (has_aggregate) {
    // Fast path for the pushdown shape "SELECT AGG(..), AGG(..) FROM ..."
    // with no grouping: single pass, no hash map, no tree rewriting.
    bool simple = stmt.group_by.empty() && !stmt.distinct &&
                  stmt.order_by.empty() && stmt.having == nullptr;
    if (simple) {
      for (const Expr* expr : item_exprs) {
        simple &= expr->kind == ExprKind::kFuncCall &&
                  IsAggregateName(expr->op);
      }
    }
    if (simple) {
      std::vector<AggState> states(item_exprs.size());
      std::vector<const Expr*> args(item_exprs.size(), nullptr);
      std::vector<std::string> ops(item_exprs.size());
      for (size_t i = 0; i < item_exprs.size(); ++i) {
        ops[i] = ToUpper(item_exprs[i]->op);
        if (!item_exprs[i]->children.empty() &&
            item_exprs[i]->children[0]->kind != ExprKind::kStar) {
          args[i] = item_exprs[i]->children[0].get();
        }
      }
      for (const Row& row : acc) {
        for (size_t i = 0; i < states.size(); ++i) {
          if (args[i] == nullptr) {
            ++states[i].count;
          } else {
            states[i].Accumulate(EvalExpr(*args[i], row, params_));
          }
        }
      }
      Row out;
      out.reserve(states.size());
      for (size_t i = 0; i < states.size(); ++i) {
        out.push_back(states[i].Finish(ops[i]));
      }
      result.rows.push_back(std::move(out));
      db_->stats().rows_returned.fetch_add(1, std::memory_order_relaxed);
      return result;
    }

    // General grouped aggregation.
    std::vector<const Expr*> group_exprs;
    for (const auto& g : stmt.group_by) {
      Result<const Expr*> bound = borrow(g);
      if (!bound.ok()) return bound.status();
      group_exprs.push_back(*bound);
    }
    const Expr* having = nullptr;
    if (stmt.having) {
      Result<const Expr*> bound = borrow(stmt.having);
      if (!bound.ok()) return bound.status();
      having = *bound;
    }
    std::vector<AggSpec> agg_specs;
    for (const Expr* expr : item_exprs) {
      CollectAggregates(expr, &agg_specs);
    }
    if (having != nullptr) CollectAggregates(having, &agg_specs);
    struct Group {
      Row sample;
      std::vector<AggState> states;
    };
    std::map<Row, Group> groups;  // ordered for deterministic output
    for (const Row& row : acc) {
      Row key;
      key.reserve(group_exprs.size());
      for (const Expr* g : group_exprs) {
        key.push_back(EvalExpr(*g, row, params_));
      }
      Group& group = groups[key];
      if (group.states.empty()) {
        group.states.resize(agg_specs.size());
        group.sample = row;
      }
      for (size_t a = 0; a < agg_specs.size(); ++a) {
        if (agg_specs[a].arg == nullptr) {
          ++group.states[a].count;  // COUNT(*)
        } else {
          group.states[a].Accumulate(
              EvalExpr(*agg_specs[a].arg, row, params_));
        }
      }
    }
    // A global aggregate over zero rows still yields one output row.
    if (groups.empty() && stmt.group_by.empty()) {
      Group& group = groups[Row()];
      group.states.resize(agg_specs.size());
    }
    for (auto& [key, group] : groups) {
      (void)key;
      std::unordered_map<const Expr*, Value> agg_values;
      for (size_t a = 0; a < agg_specs.size(); ++a) {
        agg_values[agg_specs[a].node] =
            group.states[a].Finish(agg_specs[a].op);
      }
      if (having != nullptr) {
        Value keep =
            EvalWithAggregates(*having, group.sample, params_, agg_values);
        if (keep.is_null() || !keep.Truthy()) continue;
      }
      Row out;
      for (const Expr* expr : item_exprs) {
        if (expr->kind == ExprKind::kStar) {
          return Status::Unsupported("SELECT * with aggregation");
        }
        out.push_back(
            EvalWithAggregates(*expr, group.sample, params_, agg_values));
      }
      result.rows.push_back(std::move(out));
    }
    // ORDER BY over aggregated output: match items by name or position.
    if (!stmt.order_by.empty()) {
      std::vector<std::pair<int, bool>> keys;
      for (const OrderItem& item : stmt.order_by) {
        int idx = -1;
        if (item.expr->kind == ExprKind::kColumnRef) {
          idx = result.ColumnIndex(item.expr->column);
        } else if (item.expr->kind == ExprKind::kLiteral &&
                   item.expr->literal.is_int()) {
          idx = static_cast<int>(item.expr->literal.as_int()) - 1;
        }
        if (idx < 0 || idx >= static_cast<int>(result.columns.size())) {
          return Status::Unsupported(
              "ORDER BY with aggregation must name an output column");
        }
        keys.emplace_back(idx, item.descending);
      }
      std::stable_sort(result.rows.begin(), result.rows.end(),
                       [&](const Row& a, const Row& b) {
                         for (auto [idx, desc] : keys) {
                           int c = a[idx].Compare(b[idx]);
                           if (c != 0) return desc ? c > 0 : c < 0;
                         }
                         return false;
                       });
    }
  } else {
    // Plain projection, with optional ORDER BY over source rows.
    std::vector<const Expr*> order_exprs;
    for (const OrderItem& item : stmt.order_by) {
      if (stmt.prebound) {
        order_exprs.push_back(item.expr.get());
        continue;
      }
      std::unique_ptr<Expr> expr = item.expr->Clone();
      // ORDER BY may reference a select alias.
      bool rebound = false;
      if (expr->kind == ExprKind::kColumnRef && expr->table_alias.empty()) {
        for (size_t i = 0; i < stmt.items.size(); ++i) {
          if (EqualsIgnoreCase(stmt.items[i].alias, expr->column)) {
            order_exprs.push_back(item_exprs[i]);
            rebound = true;
            break;
          }
        }
      }
      if (rebound) continue;
      DB2G_RETURN_NOT_OK(BindExpr(expr.get(), scope));
      owned.push_back(std::move(expr));
      order_exprs.push_back(owned.back().get());
    }
    struct Projected {
      Row out;
      Row sort_keys;
    };
    std::vector<Projected> projected;
    projected.reserve(acc.size());
    for (const Row& row : acc) {
      Projected p;
      for (size_t i = 0; i < item_exprs.size(); ++i) {
        if (item_exprs[i]->kind == ExprKind::kStar) {
          for (size_t offset : star_expansion[i]) {
            p.out.push_back(row[offset]);
          }
        } else {
          p.out.push_back(EvalExpr(*item_exprs[i], row, params_));
        }
      }
      for (const Expr* expr : order_exprs) {
        p.sort_keys.push_back(EvalExpr(*expr, row, params_));
      }
      projected.push_back(std::move(p));
      // Fast-path limit when no sorting/distinct is requested.
      if (stmt.limit >= 0 && !stmt.distinct && order_exprs.empty() &&
          projected.size() >= static_cast<size_t>(stmt.limit)) {
        break;
      }
    }
    if (!order_exprs.empty()) {
      std::stable_sort(projected.begin(), projected.end(),
                       [&](const Projected& a, const Projected& b) {
                         for (size_t i = 0; i < order_exprs.size(); ++i) {
                           int c = a.sort_keys[i].Compare(b.sort_keys[i]);
                           if (c != 0) {
                             return stmt.order_by[i].descending ? c > 0
                                                                : c < 0;
                           }
                         }
                         return false;
                       });
    }
    for (Projected& p : projected) {
      result.rows.push_back(std::move(p.out));
    }
  }

  // 6. DISTINCT, LIMIT.
  if (stmt.distinct) {
    std::unordered_set<Row, RowHash> seen;
    std::vector<Row> unique;
    for (Row& row : result.rows) {
      if (seen.insert(row).second) unique.push_back(std::move(row));
    }
    result.rows = std::move(unique);
  }
  if (stmt.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(stmt.limit)) {
    result.rows.resize(stmt.limit);
  }

  db_->stats().rows_returned.fetch_add(result.rows.size(),
                                       std::memory_order_relaxed);
  return result;
}

// ---------------------------------------------------------------------
// Prebinding (Database::Prepare fast path)
// ---------------------------------------------------------------------

bool PrebindSelect(Database* db, SelectStmt* stmt) {
  // Build the scope from catalog metadata only.
  Scope scope;
  auto add_ref = [&](const TableRef& ref) -> bool {
    Result<std::vector<ColumnDef>> cols = RelationColumns(db, ref);
    if (!cols.ok()) return false;
    std::vector<std::string> names;
    for (const ColumnDef& c : *cols) names.push_back(c.name);
    scope.AddTable(ref.alias, names);
    return true;
  };
  for (const TableRef& ref : stmt->from) {
    if (!add_ref(ref)) return false;
  }
  for (const JoinClause& join : stmt->joins) {
    if (!add_ref(join.table)) return false;
  }

  if (stmt->where && !BindExpr(stmt->where.get(), scope).ok()) return false;
  for (JoinClause& join : stmt->joins) {
    if (join.on && !BindExpr(join.on.get(), scope).ok()) return false;
  }
  for (SelectItem& item : stmt->items) {
    if (item.expr->kind == ExprKind::kStar) continue;
    if (!BindExpr(item.expr.get(), scope).ok()) return false;
  }
  for (auto& g : stmt->group_by) {
    if (!BindExpr(g.get(), scope).ok()) return false;
  }
  if (stmt->having && !BindExpr(stmt->having.get(), scope).ok()) {
    return false;
  }
  for (OrderItem& item : stmt->order_by) {
    // Rewrite select-alias references to the underlying expression so
    // execution needs no alias logic.
    if (item.expr->kind == ExprKind::kColumnRef &&
        item.expr->table_alias.empty()) {
      bool rewritten = false;
      for (SelectItem& sel : stmt->items) {
        if (EqualsIgnoreCase(sel.alias, item.expr->column) &&
            sel.expr->kind != ExprKind::kStar) {
          item.expr = sel.expr->Clone();
          rewritten = true;
          break;
        }
      }
      if (rewritten) continue;  // already bound via the item
    }
    if (!BindExpr(item.expr.get(), scope).ok()) return false;
  }
  stmt->prebound = true;
  return true;
}

// ---------------------------------------------------------------------
// Schema derivation (CREATE VIEW)
// ---------------------------------------------------------------------

Result<std::vector<ColumnDef>> RelationColumns(Database* db,
                                               const TableRef& ref) {
  switch (ref.kind) {
    case TableRef::Kind::kTable: {
      const TableSchema* schema = db->GetSchema(ref.table);
      if (schema == nullptr) {
        return Status::NotFound("unknown table or view: " + ref.table);
      }
      return schema->columns;
    }
    case TableRef::Kind::kSubquery:
      return DeriveSelectColumns(db, *ref.subquery);
    case TableRef::Kind::kTableFunction:
      return ref.function_columns;
  }
  return Status::Internal("unreachable");
}

Result<std::vector<ColumnDef>> DeriveSelectColumns(Database* db,
                                                   const SelectStmt& stmt) {
  // Build a scope plus a parallel type map.
  Scope scope;
  std::vector<ColumnType> types;
  auto add_ref = [&](const TableRef& ref) -> Status {
    Result<std::vector<ColumnDef>> cols = RelationColumns(db, ref);
    if (!cols.ok()) return cols.status();
    std::vector<std::string> names;
    for (const ColumnDef& c : *cols) {
      names.push_back(c.name);
      types.push_back(c.type);
    }
    scope.AddTable(ref.alias, names);
    return Status::OK();
  };
  for (const TableRef& ref : stmt.from) {
    DB2G_RETURN_NOT_OK(add_ref(ref));
  }
  for (const JoinClause& join : stmt.joins) {
    DB2G_RETURN_NOT_OK(add_ref(join.table));
  }

  std::vector<ColumnDef> out;
  for (const SelectItem& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      for (size_t offset : scope.StarOffsets(item.expr->table_alias)) {
        ColumnDef col;
        col.name = scope.NameAt(offset);
        col.type = types[offset];
        out.push_back(std::move(col));
      }
      continue;
    }
    ColumnDef col;
    col.name = !item.alias.empty()
                   ? item.alias
                   : (item.expr->kind == ExprKind::kColumnRef
                          ? item.expr->column
                          : item.expr->ToString());
    col.type = ColumnType::kString;
    if (item.expr->kind == ExprKind::kColumnRef) {
      Result<size_t> offset =
          scope.Resolve(item.expr->table_alias, item.expr->column);
      if (!offset.ok()) return offset.status();
      col.type = types[*offset];
    } else if (item.expr->kind == ExprKind::kFuncCall &&
               EqualsIgnoreCase(item.expr->op, "COUNT")) {
      col.type = ColumnType::kInt;
    } else if (item.expr->kind == ExprKind::kFuncCall &&
               (EqualsIgnoreCase(item.expr->op, "AVG") ||
                EqualsIgnoreCase(item.expr->op, "SUM"))) {
      col.type = ColumnType::kDouble;
    } else if (item.expr->kind == ExprKind::kLiteral) {
      switch (item.expr->literal.type()) {
        case ValueType::kInt:
          col.type = ColumnType::kInt;
          break;
        case ValueType::kDouble:
          col.type = ColumnType::kDouble;
          break;
        case ValueType::kBool:
          col.type = ColumnType::kBool;
          break;
        default:
          col.type = ColumnType::kString;
      }
    }
    out.push_back(std::move(col));
  }
  return out;
}

}  // namespace db2graph::sql
