#include "sql/executor.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "sql/database.h"
#include "sql/expr.h"
#include "sql/table.h"

namespace db2graph::sql {

namespace {

// ---------------------------------------------------------------------
// Predicate decomposition helpers
// ---------------------------------------------------------------------

// Splits a boolean expression into its top-level AND conjuncts.
void SplitConjuncts(const Expr* expr, std::vector<const Expr*>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary && expr->op == "AND") {
    SplitConjuncts(expr->children[0].get(), out);
    SplitConjuncts(expr->children[1].get(), out);
    return;
  }
  out->push_back(expr);
}

// True when every column reference in `expr` resolves in `scope`.
bool BindsIn(const Expr& expr, const Scope& scope) {
  if (expr.kind == ExprKind::kColumnRef) {
    return scope.Resolve(expr.table_alias, expr.column).ok();
  }
  if (expr.kind == ExprKind::kStar) return false;
  for (const auto& child : expr.children) {
    if (!BindsIn(*child, scope)) return false;
  }
  return true;
}

// A predicate usable for index probing on the newly joined relation:
// `column` belongs to that relation and every `value` expression binds in
// the pre-join scope (so it is computable per outer row).
struct ProbeTerm {
  size_t column_index;                   // within the inner relation
  std::vector<const Expr*> values;       // 1 = equality, >1 = IN list
};

}  // namespace

// ---------------------------------------------------------------------
// Relation resolution
// ---------------------------------------------------------------------

Result<Executor::Relation> Executor::ResolveRef(const TableRef& ref) {
  Relation rel;
  rel.alias = ref.alias;
  switch (ref.kind) {
    case TableRef::Kind::kTable: {
      if (!skip_access_checks_) {
        DB2G_RETURN_NOT_OK(db_->CheckAccess(ref.table, /*write=*/false));
      }
      if (Table* table = db_->GetTable(ref.table)) {
        rel.table = table;
        rel.columns = table->schema().ColumnNames();
        return rel;
      }
      if (db_->IsView(ref.table)) {
        // Expand the non-materialized view by executing its definition.
        const TableSchema* schema = db_->GetSchema(ref.table);
        SelectStmt* view_select = nullptr;
        {
          auto it = db_->views_.find(CatalogKey(ref.table));
          view_select = it->second.select.get();
        }
        Executor sub(db_, nullptr);
        sub.set_skip_access_checks(true);  // definer's rights
        Result<ResultSet> rs = sub.Select(*view_select);
        if (!rs.ok()) return rs.status();
        rel.columns = schema->ColumnNames();
        rel.rows = std::move(rs->rows);
        return rel;
      }
      return Status::NotFound("unknown table or view: " + ref.table);
    }
    case TableRef::Kind::kSubquery: {
      Executor sub(db_, params_);
      Result<ResultSet> rs = sub.Select(*ref.subquery);
      if (!rs.ok()) return rs.status();
      rel.columns = rs->columns;
      rel.rows = std::move(rs->rows);
      return rel;
    }
    case TableRef::Kind::kTableFunction: {
      const Database::TableFunction* fn =
          db_->FindTableFunction(ref.function_name);
      if (fn == nullptr) {
        return Status::NotFound("unknown table function: " +
                                ref.function_name);
      }
      std::vector<Value> args;
      Row empty;
      for (const auto& arg : ref.function_args) {
        args.push_back(EvalExpr(*arg, empty, params_));
      }
      Result<ResultSet> rs = (*fn)(args);
      if (!rs.ok()) return rs.status();
      // The declared column list names (and truncates/pads) the output.
      for (const ColumnDef& c : ref.function_columns) {
        rel.columns.push_back(c.name);
      }
      rel.rows.reserve(rs->rows.size());
      for (Row& row : rs->rows) {
        row.resize(ref.function_columns.size());
        rel.rows.push_back(std::move(row));
      }
      return rel;
    }
  }
  return Status::Internal("unreachable table ref kind");
}

// ---------------------------------------------------------------------
// Aggregation machinery
// ---------------------------------------------------------------------

namespace {

struct AggSpec {
  const Expr* node;   // the aggregate kFuncCall node
  std::string op;     // upper-cased
  const Expr* arg;    // nullptr for COUNT(*)
};

void CollectAggregates(const Expr* expr, std::vector<AggSpec>* out) {
  if (expr->kind == ExprKind::kFuncCall && IsAggregateName(expr->op)) {
    AggSpec spec;
    spec.node = expr;
    spec.op = ToUpper(expr->op);
    spec.arg = expr->children.empty() ||
                       expr->children[0]->kind == ExprKind::kStar
                   ? nullptr
                   : expr->children[0].get();
    out->push_back(spec);
    return;  // no nested aggregates
  }
  for (const auto& child : expr->children) {
    CollectAggregates(child.get(), out);
  }
}

struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value min;
  Value max;

  void Accumulate(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.is_numeric()) {
      sum += v.NumericValue();
      if (v.is_int()) {
        isum += v.as_int();
      } else {
        sum_is_int = false;
      }
    } else {
      sum_is_int = false;
    }
    if (min.is_null() || v < min) min = v;
    if (max.is_null() || v > max) max = v;
  }

  Value Finish(const std::string& op) const {
    if (op == "COUNT") return Value(count);
    if (count == 0) return Value::Null();
    if (op == "SUM") return sum_is_int ? Value(isum) : Value(sum);
    if (op == "AVG") return Value(sum / static_cast<double>(count));
    if (op == "MIN") return min;
    if (op == "MAX") return max;
    return Value::Null();
  }
};

// Evaluates an expression in which aggregate nodes have precomputed values.
Value EvalWithAggregates(
    const Expr& expr, const Row& row, const std::vector<Value>* params,
    const std::unordered_map<const Expr*, Value>& agg_values) {
  auto it = agg_values.find(&expr);
  if (it != agg_values.end()) return it->second;
  if (!ContainsAggregate(expr)) return EvalExpr(expr, row, params);
  // Recurse through composite nodes that contain aggregates below.
  Expr shallow;
  shallow.kind = expr.kind;
  shallow.op = expr.op;
  shallow.negated = expr.negated;
  shallow.literal = expr.literal;
  shallow.param_index = expr.param_index;
  shallow.bound_index = expr.bound_index;
  for (const auto& child : expr.children) {
    shallow.children.push_back(
        MakeLiteral(EvalWithAggregates(*child, row, params, agg_values)));
  }
  return EvalExpr(shallow, row, params);
}

std::string OutputName(const SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column;
  return item.expr->ToString();
}

}  // namespace

// ---------------------------------------------------------------------
// Operator tree
// ---------------------------------------------------------------------
//
// Compile() turns a SELECT into a chain of pull operators:
//
//   Seed -> JoinStage* -> Filter? -> (Aggregate | SortProject | Project)
//        -> Distinct? -> Limit?
//
// Every operator obeys the RowSource block contract. JoinStage covers both
// the scan of the first FROM relation (its upstream is the one-empty-row
// Seed) and each subsequent join, with the same access-path selection as
// the materialized executor had: index probe, then (for materialized or
// unindexed relations with >1 outer row) a transient hash join, then an
// ordered-index range scan, then a full scan. Counters are incremented per
// row actually visited, so early termination is visible in ExecInfo.

namespace exec_ops {

struct PlanContext {
  Database* db = nullptr;
  const std::vector<Value>* params = nullptr;
  size_t block_rows = kDefaultBlockRows;
  ExecInfo exec;
  Status error = Status::OK();
};

class Op {
 public:
  explicit Op(PlanContext* ctx) : ctx_(ctx) {}
  virtual ~Op() = default;
  virtual bool Next(RowBlock* out) = 0;
  virtual void Close() = 0;

 protected:
  PlanContext* ctx_;
};

// Emits a single empty row: the seed the first join stage crosses with.
class SeedOp : public Op {
 public:
  using Op::Op;
  bool Next(RowBlock* out) override {
    out->Clear();
    if (done_) return false;
    done_ = true;
    out->rows.emplace_back();
    return true;
  }
  void Close() override { done_ = true; }

 private:
  bool done_ = false;
};

// The relation a join stage reads (mirror of Executor::Relation, moved in
// so the operator owns materialized rows).
struct PlanRelation {
  std::string alias;
  std::vector<std::string> columns;
  const Table* table = nullptr;
  std::vector<Row> rows;
  bool materialized() const { return table == nullptr; }
};

struct StageConfig {
  PlanRelation relation;
  std::vector<const Expr*> preds;  // ON + eligible WHERE conjuncts
  bool left = false;

  // Index-probe access path.
  const Index* index = nullptr;
  std::vector<ProbeTerm> probe_terms;

  // Hash-join candidate (used when no index and >1 outer row).
  bool has_hash = false;
  size_t hash_column = 0;          // inner column
  const Expr* hash_key = nullptr;  // outer-side expression

  // Ordered-index range access path.
  const OrderedIndex* range_index = nullptr;
  const Expr* range_lo = nullptr;
  const Expr* range_hi = nullptr;
  bool range_lo_excl = false;
  bool range_hi_excl = false;
};

class JoinStageOp : public Op {
 public:
  JoinStageOp(PlanContext* ctx, std::unique_ptr<Op> child, StageConfig cfg)
      : Op(ctx), child_(std::move(child)), cfg_(std::move(cfg)) {}

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    pull_cap_ = std::min(ctx_->block_rows, std::max<size_t>(out->capacity, 1));
    EnsureDecided();
    while (out->rows.size() < out->capacity) {
      if (phase_ == Phase::kNeedOuter) {
        if (!FetchNextOuter()) break;
        StartCursor();
        matched_ = false;
        phase_ = Phase::kDraining;
      } else if (phase_ == Phase::kDraining) {
        const Row* inner = CursorNextRow();
        if (inner == nullptr) {
          phase_ = (!matched_ && cfg_.left) ? Phase::kPendingLeft
                                            : Phase::kNeedOuter;
          continue;
        }
        EmitIfMatch(*inner, out);
      } else {  // kPendingLeft: null-extend the unmatched outer row
        Row joined = outer_;
        joined.resize(joined.size() + cfg_.relation.columns.size());
        out->rows.push_back(std::move(joined));
        phase_ = Phase::kNeedOuter;
      }
    }
    return !out->rows.empty();
  }

  void Close() override {
    if (closed_) return;
    closed_ = true;
    child_->Close();
    hash_table_.clear();
    outer_buffer_.clear();
    rids_.clear();
  }

 private:
  enum class Phase { kNeedOuter, kDraining, kPendingLeft };
  enum class CursorKind { kRids, kHash, kScan, kRows };

  void PullChild() {
    child_block_.capacity = pull_cap_;
    if (child_->Next(&child_block_)) {
      for (Row& r : child_block_.rows) outer_buffer_.push_back(std::move(r));
    } else {
      child_eof_ = true;
    }
  }

  // Decides nested-loop vs hash once, mirroring the materialized rule
  // "hash only with more than one outer row": buffer outer rows until two
  // arrive (or upstream ends), then build the table if they did.
  void EnsureDecided() {
    if (decided_) return;
    decided_ = true;
    if (cfg_.index != nullptr || !cfg_.has_hash) return;
    while (outer_buffer_.size() < 2 && !child_eof_) PullChild();
    if (outer_buffer_.size() < 2) return;
    hash_mode_ = true;
    const PlanRelation& rel = cfg_.relation;
    if (rel.materialized()) {
      for (size_t r = 0; r < rel.rows.size(); ++r) {
        hash_table_.emplace(rel.rows[r][cfg_.hash_column], r);
      }
    } else {
      for (RowId rid = 0; rid < rel.table->slot_count(); ++rid) {
        if (!rel.table->IsLive(rid)) continue;
        hash_table_.emplace(rel.table->GetRow(rid)[cfg_.hash_column], rid);
      }
    }
  }

  bool FetchNextOuter() {
    while (outer_buffer_.empty() && !child_eof_) PullChild();
    if (outer_buffer_.empty()) return false;
    outer_ = std::move(outer_buffer_.front());
    outer_buffer_.pop_front();
    return true;
  }

  void StartCursor() {
    const PlanRelation& rel = cfg_.relation;
    rids_.clear();
    rid_pos_ = 0;
    if (cfg_.index != nullptr) {
      cursor_ = CursorKind::kRids;
      // Index probe: enumerate the cartesian product of probe values
      // (IN-lists contribute several keys).
      std::vector<Row> keys;
      keys.emplace_back();
      for (size_t c : cfg_.index->column_indexes()) {
        const ProbeTerm* term = nullptr;
        for (const ProbeTerm& t : cfg_.probe_terms) {
          if (t.column_index == c) {
            term = &t;
            break;
          }
        }
        std::vector<Row> expanded;
        for (const Row& partial : keys) {
          for (const Expr* value_expr : term->values) {
            Row key = partial;
            key.push_back(EvalExpr(*value_expr, outer_, ctx_->params));
            expanded.push_back(std::move(key));
          }
        }
        keys = std::move(expanded);
      }
      // Duplicate IN-list values must not duplicate result rows.
      std::sort(keys.begin(), keys.end());
      keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
      for (const Row& key : keys) {
        cfg_.index->Lookup(key, &rids_);
      }
      ctx_->exec.index_probes += keys.size();
      return;
    }
    if (hash_mode_) {
      cursor_ = CursorKind::kHash;
      Value key = EvalExpr(*cfg_.hash_key, outer_, ctx_->params);
      auto range = hash_table_.equal_range(key);
      hash_it_ = range.first;
      hash_end_ = range.second;
      ctx_->exec.index_probes += 1;
      return;
    }
    if (cfg_.range_index != nullptr) {
      cursor_ = CursorKind::kRids;
      Value lo_value;
      Value hi_value;
      if (cfg_.range_lo != nullptr) {
        lo_value = EvalExpr(*cfg_.range_lo, outer_, ctx_->params);
      }
      if (cfg_.range_hi != nullptr) {
        hi_value = EvalExpr(*cfg_.range_hi, outer_, ctx_->params);
      }
      cfg_.range_index->RangeLookup(
          cfg_.range_lo != nullptr ? &lo_value : nullptr, cfg_.range_lo_excl,
          cfg_.range_hi != nullptr ? &hi_value : nullptr, cfg_.range_hi_excl,
          &rids_);
      ctx_->exec.range_scans += 1;
      return;
    }
    if (rel.table != nullptr) {
      cursor_ = CursorKind::kScan;
      scan_rid_ = 0;
      ctx_->exec.full_scans += 1;
      return;
    }
    cursor_ = CursorKind::kRows;
    rows_pos_ = 0;
  }

  // Yields the next inner row of the current cursor (nullptr at the end),
  // counting each visited row.
  const Row* CursorNextRow() {
    const PlanRelation& rel = cfg_.relation;
    switch (cursor_) {
      case CursorKind::kRids:
        if (rid_pos_ >= rids_.size()) return nullptr;
        ctx_->exec.rows_scanned += 1;
        return &rel.table->GetRow(rids_[rid_pos_++]);
      case CursorKind::kHash: {
        if (hash_it_ == hash_end_) return nullptr;
        ctx_->exec.rows_scanned += 1;
        size_t slot = hash_it_->second;
        ++hash_it_;
        return rel.materialized() ? &rel.rows[slot]
                                  : &rel.table->GetRow(slot);
      }
      case CursorKind::kScan:
        while (scan_rid_ < rel.table->slot_count() &&
               !rel.table->IsLive(scan_rid_)) {
          ++scan_rid_;
        }
        if (scan_rid_ >= rel.table->slot_count()) return nullptr;
        ctx_->exec.rows_scanned += 1;
        return &rel.table->GetRow(scan_rid_++);
      case CursorKind::kRows:
        if (rows_pos_ >= rel.rows.size()) return nullptr;
        ctx_->exec.rows_scanned += 1;
        return &rel.rows[rows_pos_++];
    }
    return nullptr;
  }

  void EmitIfMatch(const Row& inner, RowBlock* out) {
    Row joined;
    joined.reserve(outer_.size() + inner.size());
    joined.insert(joined.end(), outer_.begin(), outer_.end());
    joined.insert(joined.end(), inner.begin(), inner.end());
    for (const Expr* pred : cfg_.preds) {
      Value v = EvalExpr(*pred, joined, ctx_->params);
      if (v.is_null() || !v.Truthy()) return;
    }
    out->rows.push_back(std::move(joined));
    matched_ = true;
  }

  std::unique_ptr<Op> child_;
  StageConfig cfg_;

  bool decided_ = false;
  bool hash_mode_ = false;
  std::unordered_multimap<Value, size_t, ValueHash> hash_table_;

  RowBlock child_block_;
  std::deque<Row> outer_buffer_;
  bool child_eof_ = false;
  bool closed_ = false;
  size_t pull_cap_ = kDefaultBlockRows;

  Phase phase_ = Phase::kNeedOuter;
  Row outer_;
  bool matched_ = false;

  CursorKind cursor_ = CursorKind::kRows;
  std::vector<RowId> rids_;
  size_t rid_pos_ = 0;
  std::unordered_multimap<Value, size_t, ValueHash>::const_iterator hash_it_;
  std::unordered_multimap<Value, size_t, ValueHash>::const_iterator hash_end_;
  RowId scan_rid_ = 0;
  size_t rows_pos_ = 0;
};

// Residual WHERE (needed with LEFT JOINs; idempotent otherwise).
class FilterOp : public Op {
 public:
  FilterOp(PlanContext* ctx, std::unique_ptr<Op> child, const Expr* where)
      : Op(ctx), child_(std::move(child)), where_(where) {}

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    in_.capacity = std::max<size_t>(out->capacity, 1);
    while (child_->Next(&in_)) {
      for (Row& row : in_.rows) {
        Value v = EvalExpr(*where_, row, ctx_->params);
        if (!v.is_null() && v.Truthy()) out->rows.push_back(std::move(row));
      }
      if (!out->rows.empty()) return true;
    }
    return false;
  }

  void Close() override {
    closed_ = true;
    child_->Close();
  }

 private:
  std::unique_ptr<Op> child_;
  const Expr* where_;
  RowBlock in_;
  bool closed_ = false;
};

// Select-list shape shared by the projection operators.
struct Projection {
  std::vector<const Expr*> item_exprs;
  std::vector<std::vector<size_t>> star_expansion;  // per item (kStar only)

  Row Apply(const Row& row, const std::vector<Value>* params) const {
    Row out;
    for (size_t i = 0; i < item_exprs.size(); ++i) {
      if (item_exprs[i]->kind == ExprKind::kStar) {
        for (size_t offset : star_expansion[i]) {
          out.push_back(row[offset]);
        }
      } else {
        out.push_back(EvalExpr(*item_exprs[i], row, params));
      }
    }
    return out;
  }
};

// Streaming projection (no ORDER BY).
class ProjectOp : public Op {
 public:
  ProjectOp(PlanContext* ctx, std::unique_ptr<Op> child, Projection proj)
      : Op(ctx), child_(std::move(child)), proj_(std::move(proj)) {}

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    in_.capacity = std::max<size_t>(out->capacity, 1);
    if (!child_->Next(&in_)) return false;
    for (const Row& row : in_.rows) {
      out->rows.push_back(proj_.Apply(row, ctx_->params));
    }
    return true;
  }

  void Close() override {
    closed_ = true;
    child_->Close();
  }

 private:
  std::unique_ptr<Op> child_;
  Projection proj_;
  RowBlock in_;
  bool closed_ = false;
};

// Barrier: drains its input, projects with sort keys, stable-sorts, then
// emits blocks.
class SortProjectOp : public Op {
 public:
  SortProjectOp(PlanContext* ctx, std::unique_ptr<Op> child, Projection proj,
                std::vector<const Expr*> order_exprs,
                std::vector<bool> descending)
      : Op(ctx),
        child_(std::move(child)),
        proj_(std::move(proj)),
        order_exprs_(std::move(order_exprs)),
        descending_(std::move(descending)) {}

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    if (!drained_) Drain();
    while (pos_ < sorted_.size() && out->rows.size() < out->capacity) {
      out->rows.push_back(std::move(sorted_[pos_].out));
      ++pos_;
    }
    return !out->rows.empty();
  }

  void Close() override {
    closed_ = true;
    child_->Close();
    sorted_.clear();
  }

 private:
  struct Projected {
    Row out;
    Row sort_keys;
  };

  void Drain() {
    drained_ = true;
    RowBlock block;
    block.capacity = ctx_->block_rows;
    while (child_->Next(&block)) {
      for (const Row& row : block.rows) {
        Projected p;
        p.out = proj_.Apply(row, ctx_->params);
        for (const Expr* expr : order_exprs_) {
          p.sort_keys.push_back(EvalExpr(*expr, row, ctx_->params));
        }
        sorted_.push_back(std::move(p));
      }
    }
    std::stable_sort(sorted_.begin(), sorted_.end(),
                     [&](const Projected& a, const Projected& b) {
                       for (size_t i = 0; i < order_exprs_.size(); ++i) {
                         int c = a.sort_keys[i].Compare(b.sort_keys[i]);
                         if (c != 0) return descending_[i] ? c > 0 : c < 0;
                       }
                       return false;
                     });
  }

  std::unique_ptr<Op> child_;
  Projection proj_;
  std::vector<const Expr*> order_exprs_;
  std::vector<bool> descending_;
  std::vector<Projected> sorted_;
  bool drained_ = false;
  size_t pos_ = 0;
  bool closed_ = false;
};

// Barrier: accumulates aggregate state block by block, then emits the
// grouped (or global) output. HAVING, the SELECT-*-with-aggregation check,
// and ORDER-BY-over-aggregates resolution run at finish time, with the
// same data-dependent semantics the materialized executor had.
class AggregateOp : public Op {
 public:
  struct Config {
    Projection proj;
    bool simple = false;
    // Simple path ("SELECT AGG(..), AGG(..)" with no grouping):
    std::vector<std::string> ops;
    std::vector<const Expr*> args;  // nullptr = COUNT(*)
    // General grouped path:
    std::vector<const Expr*> group_exprs;
    bool has_group_by = false;
    const Expr* having = nullptr;
    std::vector<AggSpec> agg_specs;
    const std::vector<OrderItem>* order_by = nullptr;  // may be empty
    const std::vector<std::string>* columns = nullptr;  // output names
  };

  AggregateOp(PlanContext* ctx, std::unique_ptr<Op> child, Config cfg)
      : Op(ctx), child_(std::move(child)), cfg_(std::move(cfg)) {}

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    if (!finished_) {
      Status st = DrainAndFinish();
      if (!st.ok()) {
        ctx_->error = st;
        Close();
        return false;
      }
    }
    while (pos_ < output_.size() && out->rows.size() < out->capacity) {
      out->rows.push_back(std::move(output_[pos_]));
      ++pos_;
    }
    return !out->rows.empty();
  }

  void Close() override {
    closed_ = true;
    child_->Close();
    groups_.clear();
    output_.clear();
  }

 private:
  struct Group {
    Row sample;
    std::vector<AggState> states;
  };

  Status DrainAndFinish() {
    finished_ = true;
    RowBlock block;
    block.capacity = ctx_->block_rows;
    if (cfg_.simple) {
      std::vector<AggState> states(cfg_.args.size());
      while (child_->Next(&block)) {
        for (const Row& row : block.rows) {
          for (size_t i = 0; i < states.size(); ++i) {
            if (cfg_.args[i] == nullptr) {
              ++states[i].count;
            } else {
              states[i].Accumulate(EvalExpr(*cfg_.args[i], row, ctx_->params));
            }
          }
        }
      }
      Row out;
      out.reserve(states.size());
      for (size_t i = 0; i < states.size(); ++i) {
        out.push_back(states[i].Finish(cfg_.ops[i]));
      }
      output_.push_back(std::move(out));
      return Status::OK();
    }

    while (child_->Next(&block)) {
      for (const Row& row : block.rows) {
        Row key;
        key.reserve(cfg_.group_exprs.size());
        for (const Expr* g : cfg_.group_exprs) {
          key.push_back(EvalExpr(*g, row, ctx_->params));
        }
        Group& group = groups_[key];
        if (group.states.empty()) {
          group.states.resize(cfg_.agg_specs.size());
          group.sample = row;
        }
        for (size_t a = 0; a < cfg_.agg_specs.size(); ++a) {
          if (cfg_.agg_specs[a].arg == nullptr) {
            ++group.states[a].count;  // COUNT(*)
          } else {
            group.states[a].Accumulate(
                EvalExpr(*cfg_.agg_specs[a].arg, row, ctx_->params));
          }
        }
      }
    }
    // A global aggregate over zero rows still yields one output row.
    if (groups_.empty() && !cfg_.has_group_by) {
      Group& group = groups_[Row()];
      group.states.resize(cfg_.agg_specs.size());
    }
    for (auto& [key, group] : groups_) {
      (void)key;
      std::unordered_map<const Expr*, Value> agg_values;
      for (size_t a = 0; a < cfg_.agg_specs.size(); ++a) {
        agg_values[cfg_.agg_specs[a].node] =
            group.states[a].Finish(cfg_.agg_specs[a].op);
      }
      if (cfg_.having != nullptr) {
        Value keep = EvalWithAggregates(*cfg_.having, group.sample,
                                        ctx_->params, agg_values);
        if (keep.is_null() || !keep.Truthy()) continue;
      }
      Row out;
      for (const Expr* expr : cfg_.proj.item_exprs) {
        if (expr->kind == ExprKind::kStar) {
          return Status::Unsupported("SELECT * with aggregation");
        }
        out.push_back(EvalWithAggregates(*expr, group.sample, ctx_->params,
                                         agg_values));
      }
      output_.push_back(std::move(out));
    }
    // ORDER BY over aggregated output: match items by name or position.
    if (cfg_.order_by != nullptr && !cfg_.order_by->empty()) {
      std::vector<std::pair<int, bool>> keys;
      for (const OrderItem& item : *cfg_.order_by) {
        int idx = -1;
        if (item.expr->kind == ExprKind::kColumnRef) {
          idx = ColumnIndexOf(item.expr->column);
        } else if (item.expr->kind == ExprKind::kLiteral &&
                   item.expr->literal.is_int()) {
          idx = static_cast<int>(item.expr->literal.as_int()) - 1;
        }
        if (idx < 0 || idx >= static_cast<int>(cfg_.columns->size())) {
          return Status::Unsupported(
              "ORDER BY with aggregation must name an output column");
        }
        keys.emplace_back(idx, item.descending);
      }
      std::stable_sort(output_.begin(), output_.end(),
                       [&](const Row& a, const Row& b) {
                         for (auto [idx, desc] : keys) {
                           int c = a[idx].Compare(b[idx]);
                           if (c != 0) return desc ? c > 0 : c < 0;
                         }
                         return false;
                       });
    }
    return Status::OK();
  }

  int ColumnIndexOf(const std::string& name) const {
    for (size_t i = 0; i < cfg_.columns->size(); ++i) {
      if (EqualsIgnoreCase((*cfg_.columns)[i], name)) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  std::unique_ptr<Op> child_;
  Config cfg_;
  std::map<Row, Group> groups_;  // ordered for deterministic output
  std::vector<Row> output_;
  bool finished_ = false;
  size_t pos_ = 0;
  bool closed_ = false;
};

// Streaming DISTINCT: keeps first occurrences.
class DistinctOp : public Op {
 public:
  DistinctOp(PlanContext* ctx, std::unique_ptr<Op> child)
      : Op(ctx), child_(std::move(child)) {}

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_) return false;
    in_.capacity = std::max<size_t>(out->capacity, 1);
    while (child_->Next(&in_)) {
      for (Row& row : in_.rows) {
        if (seen_.insert(row).second) out->rows.push_back(std::move(row));
      }
      if (!out->rows.empty()) return true;
    }
    return false;
  }

  void Close() override {
    closed_ = true;
    child_->Close();
    seen_.clear();
  }

 private:
  std::unique_ptr<Op> child_;
  std::unordered_set<Row, RowHash> seen_;
  RowBlock in_;
  bool closed_ = false;
};

// Caps total output; shrinks the requested capacity so upstream scans
// stop at the budget, and closes the child as soon as it is met — the
// early-termination signal the whole pipeline is built around.
class LimitOp : public Op {
 public:
  LimitOp(PlanContext* ctx, std::unique_ptr<Op> child, uint64_t limit)
      : Op(ctx), child_(std::move(child)), remaining_(limit) {}

  bool Next(RowBlock* out) override {
    out->Clear();
    if (closed_ || remaining_ == 0) {
      CloseChild();
      return false;
    }
    size_t saved = out->capacity;
    out->capacity = static_cast<size_t>(
        std::min<uint64_t>(std::max<size_t>(saved, 1), remaining_));
    bool ok = child_->Next(out);
    out->capacity = saved;
    if (!ok) return false;
    if (out->rows.size() > remaining_) out->rows.resize(remaining_);
    remaining_ -= out->rows.size();
    if (remaining_ == 0) CloseChild();
    return !out->rows.empty();
  }

  void Close() override {
    closed_ = true;
    CloseChild();
  }

 private:
  void CloseChild() {
    if (child_closed_) return;
    child_closed_ = true;
    child_->Close();
  }

  std::unique_ptr<Op> child_;
  uint64_t remaining_;
  bool closed_ = false;
  bool child_closed_ = false;
};

}  // namespace exec_ops

// ---------------------------------------------------------------------
// SelectPlan
// ---------------------------------------------------------------------

struct SelectPlan::State {
  exec_ops::PlanContext ctx;
  std::vector<std::unique_ptr<Expr>> owned;  // bound expression clones
  std::vector<std::string> columns;
  std::unique_ptr<exec_ops::Op> root;
  ExecInfo flushed;  // portion already mirrored into Database::stats()
  bool closed = false;

  void FlushStats() {
    ExecStats& stats = ctx.db->stats();
    const ExecInfo& cur = ctx.exec;
    auto add = [](metrics::Counter& counter, uint64_t now, uint64_t before) {
      if (now > before) {
        counter.fetch_add(now - before, std::memory_order_relaxed);
      }
    };
    add(stats.index_probes, cur.index_probes, flushed.index_probes);
    add(stats.range_scans, cur.range_scans, flushed.range_scans);
    add(stats.full_scans, cur.full_scans, flushed.full_scans);
    add(stats.rows_scanned, cur.rows_scanned, flushed.rows_scanned);
    add(stats.rows_returned, cur.rows_emitted, flushed.rows_emitted);
    flushed = cur;
  }
};

SelectPlan::SelectPlan(std::unique_ptr<State> state)
    : state_(std::move(state)) {}

SelectPlan::~SelectPlan() { Close(); }

const std::vector<std::string>& SelectPlan::columns() const {
  return state_->columns;
}

const Status& SelectPlan::status() const { return state_->ctx.error; }

const ExecInfo& SelectPlan::exec() const { return state_->ctx.exec; }

bool SelectPlan::Next(RowBlock* out) {
  State* s = state_.get();
  if (s->closed || !s->ctx.error.ok()) return false;
  if (out->capacity == 0) out->capacity = s->ctx.block_rows;
  bool ok = s->root->Next(out);
  if (!s->ctx.error.ok()) {
    s->FlushStats();
    return false;
  }
  if (ok) s->ctx.exec.rows_emitted += out->rows.size();
  s->FlushStats();
  return ok;
}

void SelectPlan::Close() {
  State* s = state_.get();
  if (s == nullptr || s->closed) return;
  s->closed = true;
  s->root->Close();
  s->FlushStats();
}

Result<ResultSet> SelectPlan::Drain() {
  ResultSet result;
  result.columns = state_->columns;
  RowBlock block;
  block.capacity = state_->ctx.block_rows;
  while (Next(&block)) {
    for (Row& row : block.rows) result.rows.push_back(std::move(row));
  }
  if (!state_->ctx.error.ok()) return state_->ctx.error;
  result.exec = state_->ctx.exec;
  return result;
}

// ---------------------------------------------------------------------
// SELECT compilation
// ---------------------------------------------------------------------

Result<std::unique_ptr<SelectPlan>> Executor::Compile(const SelectStmt& stmt,
                                                      size_t block_rows) {
  using exec_ops::JoinStageOp;
  using exec_ops::Op;
  using exec_ops::PlanRelation;
  using exec_ops::Projection;
  using exec_ops::StageConfig;

  db_->stats().selects.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_unique<SelectPlan::State>();
  state->ctx.db = db_;
  state->ctx.params = params_;
  state->ctx.block_rows = std::max<size_t>(block_rows, 1);

  // 1. Resolve all FROM-clause relations, in order.
  struct StageInput {
    PlanRelation relation;
    const Expr* on = nullptr;  // join condition (nullptr for FROM list)
    bool left = false;
  };
  std::vector<StageInput> stages;
  auto add_stage = [&](const TableRef& ref, const Expr* on,
                       bool left) -> Status {
    Result<Relation> rel = ResolveRef(ref);
    if (!rel.ok()) return rel.status();
    PlanRelation plan_rel;
    plan_rel.alias = std::move(rel->alias);
    plan_rel.columns = std::move(rel->columns);
    plan_rel.table = rel->table;
    plan_rel.rows = std::move(rel->rows);
    stages.push_back({std::move(plan_rel), on, left});
    return Status::OK();
  };
  for (const TableRef& ref : stmt.from) {
    DB2G_RETURN_NOT_OK(add_stage(ref, nullptr, false));
  }
  for (const JoinClause& join : stmt.joins) {
    DB2G_RETURN_NOT_OK(add_stage(join.table, join.on.get(),
                                 join.kind == JoinClause::Kind::kLeft));
  }

  // 2. Build the full scope. Prebound statements carry resolved column
  // offsets already; otherwise clone + bind against this scope. Join
  // conditions and WHERE conjuncts are bound against the FULL scope — a
  // prefix-stage row shares the offsets of its prefix, so evaluating a
  // conjunct early is safe whenever its columns resolve in the prefix.
  Scope scope;
  for (const StageInput& stage : stages) {
    scope.AddTable(stage.relation.alias, stage.relation.columns);
  }
  bool any_left = false;
  for (const StageInput& stage : stages) any_left |= stage.left;

  std::vector<std::unique_ptr<Expr>>& owned = state->owned;
  auto borrow = [&](const std::unique_ptr<Expr>& source)
      -> Result<const Expr*> {
    if (stmt.prebound) return source.get();
    std::unique_ptr<Expr> copy = source->Clone();
    Status st = BindExpr(copy.get(), scope);
    if (!st.ok()) return st;
    owned.push_back(std::move(copy));
    return static_cast<const Expr*>(owned.back().get());
  };

  const Expr* where = nullptr;
  if (stmt.where) {
    Result<const Expr*> bound = borrow(stmt.where);
    if (!bound.ok()) return bound.status();
    where = *bound;
  }
  std::vector<const Expr*> where_conjuncts;
  SplitConjuncts(where, &where_conjuncts);

  // Join ON conditions, parallel to stages.
  std::vector<const Expr*> stage_on(stages.size(), nullptr);
  for (size_t k = 0; k < stages.size(); ++k) {
    if (stages[k].on == nullptr) continue;
    if (stmt.prebound) {
      stage_on[k] = stages[k].on;
    } else {
      std::unique_ptr<Expr> copy = stages[k].on->Clone();
      DB2G_RETURN_NOT_OK(BindExpr(copy.get(), scope));
      owned.push_back(std::move(copy));
      stage_on[k] = owned.back().get();
    }
  }

  // 3. Chain join-stage operators, probing indexes where possible.
  std::unique_ptr<Op> source =
      std::make_unique<exec_ops::SeedOp>(&state->ctx);
  Scope partial_scope;
  bool no_from = stages.empty();

  for (size_t k = 0; k < stages.size(); ++k) {
    StageInput& stage = stages[k];
    Scope before = partial_scope;
    partial_scope.AddTable(stage.relation.alias, stage.relation.columns);

    StageConfig cfg;
    cfg.left = stage.left;

    // Collect predicates applicable at this stage (borrowed pointers into
    // the already-bound where / on expressions).
    if (stage_on[k] != nullptr) cfg.preds.push_back(stage_on[k]);
    if (!any_left) {
      for (const Expr* conjunct : where_conjuncts) {
        if (BindsIn(*conjunct, partial_scope) &&
            !BindsIn(*conjunct, before)) {
          cfg.preds.push_back(conjunct);
        }
      }
    }

    // Probe-term extraction against the inner relation's base table index.
    const Table* table = stage.relation.table;
    if (table != nullptr) {
      std::vector<const Expr*> conjuncts;
      for (const Expr* pred : cfg.preds) {
        SplitConjuncts(pred, &conjuncts);
      }
      const TableSchema& schema = table->schema();
      std::vector<ProbeTerm> candidates;
      for (const Expr* conjunct : conjuncts) {
        const Expr* column_side = nullptr;
        std::vector<const Expr*> values;
        if (conjunct->kind == ExprKind::kBinary && conjunct->op == "=") {
          const Expr* lhs = conjunct->children[0].get();
          const Expr* rhs = conjunct->children[1].get();
          auto is_inner_col = [&](const Expr* e) {
            return e->kind == ExprKind::kColumnRef &&
                   (e->table_alias.empty() ||
                    EqualsIgnoreCase(e->table_alias, stage.relation.alias)) &&
                   schema.HasColumn(e->column) &&
                   // ensure it resolved into this relation, not earlier
                   !BindsIn(*e, before);
          };
          if (is_inner_col(lhs) && BindsIn(*rhs, before)) {
            column_side = lhs;
            values.push_back(rhs);
          } else if (is_inner_col(rhs) && BindsIn(*lhs, before)) {
            column_side = rhs;
            values.push_back(lhs);
          }
        } else if (conjunct->kind == ExprKind::kIn && !conjunct->negated) {
          const Expr* lhs = conjunct->children[0].get();
          if (lhs->kind == ExprKind::kColumnRef &&
              (lhs->table_alias.empty() ||
               EqualsIgnoreCase(lhs->table_alias, stage.relation.alias)) &&
              schema.HasColumn(lhs->column) && !BindsIn(*lhs, before)) {
            bool all_outer = true;
            for (size_t i = 1; i < conjunct->children.size(); ++i) {
              all_outer &= BindsIn(*conjunct->children[i], before);
            }
            if (all_outer) {
              column_side = lhs;
              for (size_t i = 1; i < conjunct->children.size(); ++i) {
                values.push_back(conjunct->children[i].get());
              }
            }
          }
        }
        if (column_side != nullptr) {
          ProbeTerm term;
          term.column_index = *schema.ColumnIndex(column_side->column);
          term.values = std::move(values);
          candidates.push_back(std::move(term));
        }
      }
      // Prefer a multi-column index exactly covered by equality terms, then
      // any single-column index on one term.
      std::vector<size_t> eq_columns;
      for (const ProbeTerm& term : candidates) {
        if (term.values.size() == 1) eq_columns.push_back(term.column_index);
      }
      if (!eq_columns.empty()) {
        cfg.index = table->FindIndexOn(eq_columns);
        if (cfg.index != nullptr) {
          for (size_t col : cfg.index->column_indexes()) {
            for (const ProbeTerm& term : candidates) {
              if (term.values.size() == 1 && term.column_index == col) {
                cfg.probe_terms.push_back(term);
                break;
              }
            }
          }
        }
      }
      if (cfg.index == nullptr) {
        for (const ProbeTerm& term : candidates) {
          const Index* single = table->FindIndexOn({term.column_index});
          if (single != nullptr) {
            cfg.index = single;
            cfg.probe_terms.push_back(term);
            break;
          }
        }
      }
    }

    // Hash-join candidate: an equality term with no backing index
    // (materialized relations — subqueries, views, table functions — or
    // unindexed base tables). Whether the hash table is actually built is
    // decided at runtime, once the stage has seen more than one outer row.
    if (cfg.index == nullptr) {
      std::vector<const Expr*> conjuncts;
      for (const Expr* pred : cfg.preds) SplitConjuncts(pred, &conjuncts);
      for (const Expr* conjunct : conjuncts) {
        if (conjunct->kind != ExprKind::kBinary || conjunct->op != "=") {
          continue;
        }
        const Expr* lhs = conjunct->children[0].get();
        const Expr* rhs = conjunct->children[1].get();
        auto inner_col = [&](const Expr* e) -> int {
          if (e->kind != ExprKind::kColumnRef) return -1;
          if (!e->table_alias.empty() &&
              !EqualsIgnoreCase(e->table_alias, stage.relation.alias)) {
            return -1;
          }
          if (BindsIn(*e, before)) return -1;
          for (size_t c = 0; c < stage.relation.columns.size(); ++c) {
            if (EqualsIgnoreCase(stage.relation.columns[c], e->column)) {
              return static_cast<int>(c);
            }
          }
          return -1;
        };
        int col = inner_col(lhs);
        if (col >= 0 && BindsIn(*rhs, before)) {
          cfg.has_hash = true;
          cfg.hash_column = static_cast<size_t>(col);
          cfg.hash_key = rhs;
          break;
        }
        col = inner_col(rhs);
        if (col >= 0 && BindsIn(*lhs, before)) {
          cfg.has_hash = true;
          cfg.hash_column = static_cast<size_t>(col);
          cfg.hash_key = lhs;
          break;
        }
      }
    }

    // Ordered-index range path: a range conjunct (col < / <= / > / >= v)
    // on a column with an ORDERED INDEX scans only the matching key range.
    // Used at runtime only when neither the index probe nor the hash join
    // applies.
    if (cfg.index == nullptr && table != nullptr) {
      std::vector<const Expr*> conjuncts;
      for (const Expr* pred : cfg.preds) SplitConjuncts(pred, &conjuncts);
      const TableSchema& schema = table->schema();
      for (const Expr* conjunct : conjuncts) {
        if (conjunct->kind != ExprKind::kBinary) continue;
        const std::string& op = conjunct->op;
        if (op != "<" && op != "<=" && op != ">" && op != ">=") continue;
        const Expr* lhs = conjunct->children[0].get();
        const Expr* rhs = conjunct->children[1].get();
        auto inner_col = [&](const Expr* e) {
          return e->kind == ExprKind::kColumnRef &&
                 (e->table_alias.empty() ||
                  EqualsIgnoreCase(e->table_alias, stage.relation.alias)) &&
                 schema.HasColumn(e->column) && !BindsIn(*e, before);
        };
        const Expr* column_side = nullptr;
        const Expr* value_side = nullptr;
        bool upper = false;  // column < value?
        if (inner_col(lhs) && BindsIn(*rhs, before)) {
          column_side = lhs;
          value_side = rhs;
          upper = op == "<" || op == "<=";
        } else if (inner_col(rhs) && BindsIn(*lhs, before)) {
          column_side = rhs;
          value_side = lhs;
          upper = op == ">" || op == ">=";  // v > col  <=>  col < v
        } else {
          continue;
        }
        size_t col = *schema.ColumnIndex(column_side->column);
        const OrderedIndex* candidate = table->FindOrderedIndexOn(col);
        if (candidate == nullptr) continue;
        if (cfg.range_index != nullptr && candidate != cfg.range_index) {
          continue;
        }
        cfg.range_index = candidate;
        bool exclusive = op == "<" || op == ">";
        if (upper) {
          cfg.range_hi = value_side;
          cfg.range_hi_excl = exclusive;
        } else {
          cfg.range_lo = value_side;
          cfg.range_lo_excl = exclusive;
        }
      }
      if (cfg.range_lo == nullptr && cfg.range_hi == nullptr) {
        cfg.range_index = nullptr;
      }
    }

    cfg.relation = std::move(stage.relation);
    source = std::make_unique<JoinStageOp>(&state->ctx, std::move(source),
                                           std::move(cfg));
  }

  // 4. Residual WHERE (needed with LEFT JOINs; idempotent otherwise).
  if (where != nullptr && (any_left || no_from)) {
    source = std::make_unique<exec_ops::FilterOp>(&state->ctx,
                                                  std::move(source), where);
  }

  // 5. Projection / aggregation.
  bool has_aggregate = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    has_aggregate |= ContainsAggregate(*item.expr);
  }

  Projection proj;
  for (const SelectItem& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      std::vector<size_t> offsets =
          scope.StarOffsets(item.expr->table_alias);
      if (offsets.empty() && !item.expr->table_alias.empty()) {
        return Status::NotFound("unknown alias in " +
                                item.expr->table_alias + ".*");
      }
      for (size_t offset : offsets) {
        state->columns.push_back(scope.NameAt(offset));
      }
      proj.star_expansion.push_back(std::move(offsets));
      proj.item_exprs.push_back(item.expr.get());
      continue;
    }
    Result<const Expr*> bound = borrow(item.expr);
    if (!bound.ok()) return bound.status();
    state->columns.push_back(OutputName(item));
    proj.star_expansion.emplace_back();
    proj.item_exprs.push_back(*bound);
  }

  if (has_aggregate) {
    exec_ops::AggregateOp::Config agg;
    // Fast path for the pushdown shape "SELECT AGG(..), AGG(..) FROM ..."
    // with no grouping: single pass, no hash map, no tree rewriting.
    bool simple = stmt.group_by.empty() && !stmt.distinct &&
                  stmt.order_by.empty() && stmt.having == nullptr;
    if (simple) {
      for (const Expr* expr : proj.item_exprs) {
        simple &= expr->kind == ExprKind::kFuncCall &&
                  IsAggregateName(expr->op);
      }
    }
    agg.simple = simple;
    if (simple) {
      for (const Expr* expr : proj.item_exprs) {
        agg.ops.push_back(ToUpper(expr->op));
        agg.args.push_back(!expr->children.empty() &&
                                   expr->children[0]->kind != ExprKind::kStar
                               ? expr->children[0].get()
                               : nullptr);
      }
    } else {
      for (const auto& g : stmt.group_by) {
        Result<const Expr*> bound = borrow(g);
        if (!bound.ok()) return bound.status();
        agg.group_exprs.push_back(*bound);
      }
      agg.has_group_by = !stmt.group_by.empty();
      if (stmt.having) {
        Result<const Expr*> bound = borrow(stmt.having);
        if (!bound.ok()) return bound.status();
        agg.having = *bound;
      }
      for (const Expr* expr : proj.item_exprs) {
        CollectAggregates(expr, &agg.agg_specs);
      }
      if (agg.having != nullptr) {
        CollectAggregates(agg.having, &agg.agg_specs);
      }
      agg.order_by = &stmt.order_by;
      agg.columns = &state->columns;
    }
    agg.proj = std::move(proj);
    source = std::make_unique<exec_ops::AggregateOp>(
        &state->ctx, std::move(source), std::move(agg));
  } else {
    // Plain projection, with optional ORDER BY over source rows.
    std::vector<const Expr*> order_exprs;
    std::vector<bool> order_desc;
    for (const OrderItem& item : stmt.order_by) {
      order_desc.push_back(item.descending);
      if (stmt.prebound) {
        order_exprs.push_back(item.expr.get());
        continue;
      }
      std::unique_ptr<Expr> expr = item.expr->Clone();
      // ORDER BY may reference a select alias.
      bool rebound = false;
      if (expr->kind == ExprKind::kColumnRef && expr->table_alias.empty()) {
        for (size_t i = 0; i < stmt.items.size(); ++i) {
          if (EqualsIgnoreCase(stmt.items[i].alias, expr->column)) {
            order_exprs.push_back(proj.item_exprs[i]);
            rebound = true;
            break;
          }
        }
      }
      if (rebound) continue;
      DB2G_RETURN_NOT_OK(BindExpr(expr.get(), scope));
      owned.push_back(std::move(expr));
      order_exprs.push_back(owned.back().get());
    }
    if (!order_exprs.empty()) {
      source = std::make_unique<exec_ops::SortProjectOp>(
          &state->ctx, std::move(source), std::move(proj),
          std::move(order_exprs), std::move(order_desc));
    } else {
      source = std::make_unique<exec_ops::ProjectOp>(
          &state->ctx, std::move(source), std::move(proj));
    }
  }

  // 6. DISTINCT, LIMIT.
  if (stmt.distinct) {
    source = std::make_unique<exec_ops::DistinctOp>(&state->ctx,
                                                    std::move(source));
  }
  if (stmt.limit >= 0) {
    source = std::make_unique<exec_ops::LimitOp>(
        &state->ctx, std::move(source), static_cast<uint64_t>(stmt.limit));
  }

  state->root = std::move(source);
  return std::unique_ptr<SelectPlan>(new SelectPlan(std::move(state)));
}

Result<ResultSet> Executor::Select(const SelectStmt& stmt) {
  Result<std::unique_ptr<SelectPlan>> plan = Compile(stmt);
  if (!plan.ok()) return plan.status();
  return (*plan)->Drain();
}

// ---------------------------------------------------------------------
// Prebinding (Database::Prepare fast path)
// ---------------------------------------------------------------------

bool PrebindSelect(Database* db, SelectStmt* stmt) {
  // Build the scope from catalog metadata only.
  Scope scope;
  auto add_ref = [&](const TableRef& ref) -> bool {
    Result<std::vector<ColumnDef>> cols = RelationColumns(db, ref);
    if (!cols.ok()) return false;
    std::vector<std::string> names;
    for (const ColumnDef& c : *cols) names.push_back(c.name);
    scope.AddTable(ref.alias, names);
    return true;
  };
  for (const TableRef& ref : stmt->from) {
    if (!add_ref(ref)) return false;
  }
  for (const JoinClause& join : stmt->joins) {
    if (!add_ref(join.table)) return false;
  }

  if (stmt->where && !BindExpr(stmt->where.get(), scope).ok()) return false;
  for (JoinClause& join : stmt->joins) {
    if (join.on && !BindExpr(join.on.get(), scope).ok()) return false;
  }
  for (SelectItem& item : stmt->items) {
    if (item.expr->kind == ExprKind::kStar) continue;
    if (!BindExpr(item.expr.get(), scope).ok()) return false;
  }
  for (auto& g : stmt->group_by) {
    if (!BindExpr(g.get(), scope).ok()) return false;
  }
  if (stmt->having && !BindExpr(stmt->having.get(), scope).ok()) {
    return false;
  }
  for (OrderItem& item : stmt->order_by) {
    // Rewrite select-alias references to the underlying expression so
    // execution needs no alias logic.
    if (item.expr->kind == ExprKind::kColumnRef &&
        item.expr->table_alias.empty()) {
      bool rewritten = false;
      for (SelectItem& sel : stmt->items) {
        if (EqualsIgnoreCase(sel.alias, item.expr->column) &&
            sel.expr->kind != ExprKind::kStar) {
          item.expr = sel.expr->Clone();
          rewritten = true;
          break;
        }
      }
      if (rewritten) continue;  // already bound via the item
    }
    if (!BindExpr(item.expr.get(), scope).ok()) return false;
  }
  stmt->prebound = true;
  return true;
}

// ---------------------------------------------------------------------
// Schema derivation (CREATE VIEW)
// ---------------------------------------------------------------------

Result<std::vector<ColumnDef>> RelationColumns(Database* db,
                                               const TableRef& ref) {
  switch (ref.kind) {
    case TableRef::Kind::kTable: {
      const TableSchema* schema = db->GetSchema(ref.table);
      if (schema == nullptr) {
        return Status::NotFound("unknown table or view: " + ref.table);
      }
      return schema->columns;
    }
    case TableRef::Kind::kSubquery:
      return DeriveSelectColumns(db, *ref.subquery);
    case TableRef::Kind::kTableFunction:
      return ref.function_columns;
  }
  return Status::Internal("unreachable");
}

Result<std::vector<ColumnDef>> DeriveSelectColumns(Database* db,
                                                   const SelectStmt& stmt) {
  // Build a scope plus a parallel type map.
  Scope scope;
  std::vector<ColumnType> types;
  auto add_ref = [&](const TableRef& ref) -> Status {
    Result<std::vector<ColumnDef>> cols = RelationColumns(db, ref);
    if (!cols.ok()) return cols.status();
    std::vector<std::string> names;
    for (const ColumnDef& c : *cols) {
      names.push_back(c.name);
      types.push_back(c.type);
    }
    scope.AddTable(ref.alias, names);
    return Status::OK();
  };
  for (const TableRef& ref : stmt.from) {
    DB2G_RETURN_NOT_OK(add_ref(ref));
  }
  for (const JoinClause& join : stmt.joins) {
    DB2G_RETURN_NOT_OK(add_ref(join.table));
  }

  std::vector<ColumnDef> out;
  for (const SelectItem& item : stmt.items) {
    if (item.expr->kind == ExprKind::kStar) {
      for (size_t offset : scope.StarOffsets(item.expr->table_alias)) {
        ColumnDef col;
        col.name = scope.NameAt(offset);
        col.type = types[offset];
        out.push_back(std::move(col));
      }
      continue;
    }
    ColumnDef col;
    col.name = !item.alias.empty()
                   ? item.alias
                   : (item.expr->kind == ExprKind::kColumnRef
                          ? item.expr->column
                          : item.expr->ToString());
    col.type = ColumnType::kString;
    if (item.expr->kind == ExprKind::kColumnRef) {
      Result<size_t> offset =
          scope.Resolve(item.expr->table_alias, item.expr->column);
      if (!offset.ok()) return offset.status();
      col.type = types[*offset];
    } else if (item.expr->kind == ExprKind::kFuncCall &&
               EqualsIgnoreCase(item.expr->op, "COUNT")) {
      col.type = ColumnType::kInt;
    } else if (item.expr->kind == ExprKind::kFuncCall &&
               (EqualsIgnoreCase(item.expr->op, "AVG") ||
                EqualsIgnoreCase(item.expr->op, "SUM"))) {
      col.type = ColumnType::kDouble;
    } else if (item.expr->kind == ExprKind::kLiteral) {
      switch (item.expr->literal.type()) {
        case ValueType::kInt:
          col.type = ColumnType::kInt;
          break;
        case ValueType::kDouble:
          col.type = ColumnType::kDouble;
          break;
        case ValueType::kBool:
          col.type = ColumnType::kBool;
          break;
        default:
          col.type = ColumnType::kString;
      }
    }
    out.push_back(std::move(col));
  }
  return out;
}

}  // namespace db2graph::sql
