// Copyright (c) 2026 The db2graph-repro Authors.
//
// Table schemas with primary-key and foreign-key constraints. The catalog
// metadata here is what AutoOverlay (paper Section 5.1, Algorithms 1 & 2)
// consumes to infer vertex and edge tables.

#ifndef DB2GRAPH_SQL_SCHEMA_H_
#define DB2GRAPH_SQL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace db2graph::sql {

/// Declared column type of the SQL subset.
enum class ColumnType { kBool, kInt, kDouble, kString };

const char* ColumnTypeName(ColumnType t);

/// Returns the runtime value type a column type stores.
ValueType ColumnValueType(ColumnType t);

/// One column declaration.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kString;
  bool not_null = false;
};

/// A FOREIGN KEY (columns) REFERENCES ref_table (ref_columns) constraint.
struct ForeignKey {
  std::vector<std::string> columns;
  std::string ref_table;
  std::vector<std::string> ref_columns;
};

/// Schema of a base table (or of a view's result shape).
struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<std::string> primary_key;  // empty when no PK declared
  std::vector<ForeignKey> foreign_keys;

  bool has_primary_key() const { return !primary_key.empty(); }

  /// Case-insensitive column lookup; nullopt when absent.
  std::optional<size_t> ColumnIndex(const std::string& column) const;

  bool HasColumn(const std::string& column) const {
    return ColumnIndex(column).has_value();
  }

  /// All column names in declaration order.
  std::vector<std::string> ColumnNames() const;
};

}  // namespace db2graph::sql

#endif  // DB2GRAPH_SQL_SCHEMA_H_
