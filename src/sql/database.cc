#include "sql/database.h"

#include <unordered_map>

#include "common/query_log.h"
#include "common/strings.h"
#include "common/trace.h"
#include "common/workload_governor.h"
#include "sql/executor.h"
#include "sql/expr.h"
#include "sql/parser.h"
#include "sql/sysmon.h"

namespace db2graph::sql {

std::string CatalogKey(const std::string& name) { return ToLower(name); }

namespace {

// Reader reentrancy: a table function invoked inside a SELECT (e.g. the
// graphQuery function) issues further SELECTs against the same database on
// the same thread. A plain shared_mutex would self-deadlock, so we track a
// per-thread shared-lock depth per database instance and only lock at depth
// zero. Table functions must be read-only (as the paper's graphQuery is).
thread_local std::unordered_map<const void*, int> tls_read_depth;

class ReadLock {
 public:
  explicit ReadLock(const Database* db, std::shared_mutex* mutex)
      : db_(db), mutex_(mutex) {
    if (tls_read_depth[db_]++ == 0) mutex_->lock_shared();
  }
  ~ReadLock() {
    if (--tls_read_depth[db_] == 0) {
      mutex_->unlock_shared();
      tls_read_depth.erase(db_);
    }
  }

 private:
  const Database* db_;
  std::shared_mutex* mutex_;
};

class WriteLock {
 public:
  explicit WriteLock(std::shared_mutex* mutex) : mutex_(mutex) {
    mutex_->lock();
  }
  ~WriteLock() { mutex_->unlock(); }

 private:
  std::shared_mutex* mutex_;
};

bool IsReadOnly(const Statement& stmt) {
  return stmt.kind == StatementKind::kSelect;
}

// Compact script label for sysmon.query_log entries. ExecuteStatement only
// sees the parsed AST (prepared statements never carry their text), so the
// label is synthesized: statement kind plus the relations it touches.
std::string DescribeStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect: {
      std::string s = stmt.select->explain
                          ? (stmt.select->analyze ? "EXPLAIN ANALYZE SELECT"
                                                  : "EXPLAIN SELECT")
                          : "SELECT";
      for (size_t i = 0; i < stmt.select->from.size(); ++i) {
        const TableRef& ref = stmt.select->from[i];
        s += i == 0 ? " FROM " : ", ";
        switch (ref.kind) {
          case TableRef::Kind::kTable:
            s += ref.table;
            break;
          case TableRef::Kind::kTableFunction:
            s += "TABLE(" + ref.function_name + ")";
            break;
          case TableRef::Kind::kSubquery:
            s += "(subquery)";
            break;
        }
      }
      return s;
    }
    case StatementKind::kInsert:
      return "INSERT INTO " + stmt.insert->table;
    case StatementKind::kUpdate:
      return "UPDATE " + stmt.update->table;
    case StatementKind::kDelete:
      return "DELETE FROM " + stmt.del->table;
    case StatementKind::kCreateTable:
      return "CREATE TABLE " + stmt.create_table->schema.name;
    case StatementKind::kCreateIndex:
      return "CREATE INDEX " + stmt.create_index->index_name;
    case StatementKind::kCreateView:
      return "CREATE VIEW " + stmt.create_view->name;
    case StatementKind::kDropTable:
      return "DROP " + stmt.drop_table->table;
    case StatementKind::kGrant:
    case StatementKind::kRevoke:
      return stmt.grant->is_revoke ? "REVOKE" : "GRANT";
    case StatementKind::kBegin:
      return "BEGIN";
    case StatementKind::kCommit:
      return "COMMIT";
    case StatementKind::kRollback:
      return "ROLLBACK";
  }
  return "UNKNOWN";
}

// Files one sysmon.query_log entry for a finished statement.
void RecordQueryLog(const Statement& stmt, const Result<ResultSet>& result,
                    uint64_t micros) {
  QueryLog::Entry entry;
  entry.layer = "sql";
  entry.script = DescribeStatement(stmt);
  entry.micros = micros;
  if (result.ok()) {
    entry.exec_mode = result->exec.ExecMode();
    entry.access_path = result->exec.AccessPath();
    entry.dop = result->exec.dop;
    entry.morsels = result->exec.morsels;
    entry.rows_scanned = result->exec.rows_scanned;
    entry.rows_emitted = result->rows.empty() && result->affected > 0
                             ? static_cast<uint64_t>(result->affected)
                             : result->exec.rows_emitted;
    if (!result->exec.op_profiles.empty()) {
      entry.plan = RenderPlanTree(result->exec.op_profiles, /*analyzed=*/true);
    }
  } else {
    entry.error = true;
    entry.error_message = result.status().message();
  }
  entry.reason = governor::TerminationReason(result.status());
  QueryLog::Global().Record(std::move(entry));
}

}  // namespace

Database::Database() { RegisterSysmonTables(this); }
Database::~Database() = default;

// ---------------------------------------------------------------------
// Streaming execution
// ---------------------------------------------------------------------

// Member order matters: the read lock is declared first so it is destroyed
// last, after the plan (which touches table storage) is gone.
struct RowStream::Impl {
  ReadLock lock;
  std::shared_ptr<Statement> stmt;  // keeps bound expressions alive
  std::vector<Value> params;        // the plan points at this copy
  std::unique_ptr<SelectPlan> plan;

  Impl(const Database* db, std::shared_mutex* mutex,
       std::shared_ptr<Statement> stmt_in, std::vector<Value> params_in)
      : lock(db, mutex),
        stmt(std::move(stmt_in)),
        params(std::move(params_in)) {}
};

RowStream::RowStream(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {
  columns_ = impl_->plan->columns();
}

RowStream::~RowStream() { Close(); }

bool RowStream::Next(RowBlock* out) {
  if (impl_ == nullptr) return false;
  bool ok = impl_->plan->Next(out);
  status_ = impl_->plan->status();
  exec_ = impl_->plan->exec();
  return ok;
}

void RowStream::Close() {
  if (impl_ == nullptr) return;
  impl_->plan->Close();
  status_ = impl_->plan->status();
  exec_ = impl_->plan->exec();
  impl_.reset();  // releases the plan, the AST, and the read lock
}

Result<std::unique_ptr<RowStream>> Database::ExecuteStreaming(
    const std::string& sql, size_t block_rows) {
  Result<std::unique_ptr<Statement>> stmt = ParseSql(sql);
  if (!stmt.ok()) return stmt.status();
  return ExecuteStatementStreaming(
      std::shared_ptr<Statement>(std::move(*stmt)), {}, block_rows);
}

Result<std::unique_ptr<RowStream>> Database::ExecuteStatementStreaming(
    std::shared_ptr<Statement> stmt, const std::vector<Value>& params,
    size_t block_rows) {
  if (stmt == nullptr || stmt->kind != StatementKind::kSelect) {
    return Status::InvalidArgument(
        "streaming execution supports SELECT statements only");
  }
  auto impl = std::make_unique<RowStream::Impl>(this, &mutex_,
                                                std::move(stmt), params);
  Executor executor(this, &impl->params);
  Result<std::unique_ptr<SelectPlan>> plan =
      executor.Compile(*impl->stmt->select, block_rows);
  if (!plan.ok()) return plan.status();  // Impl dtor releases the lock
  impl->plan = std::move(*plan);
  return std::unique_ptr<RowStream>(new RowStream(std::move(impl)));
}

Result<ResultSet> PreparedStatement::Execute(
    const std::vector<Value>& params) const {
  if (static_cast<int>(params.size()) != param_count_) {
    return Status::InvalidArgument(
        "prepared statement expects " + std::to_string(param_count_) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  return db_->ExecuteStatement(*stmt_, params);
}

Result<std::unique_ptr<RowStream>> PreparedStatement::ExecuteStreaming(
    const std::vector<Value>& params, size_t block_rows) const {
  if (static_cast<int>(params.size()) != param_count_) {
    return Status::InvalidArgument(
        "prepared statement expects " + std::to_string(param_count_) +
        " parameter(s), got " + std::to_string(params.size()));
  }
  return db_->ExecuteStatementStreaming(stmt_, params, block_rows);
}

Result<ResultSet> Database::Execute(const std::string& sql) {
  Result<std::unique_ptr<Statement>> stmt = ParseSql(sql);
  if (!stmt.ok()) return stmt.status();
  return ExecuteStatement(**stmt, {});
}

Status Database::ExecuteScript(const std::string& script) {
  // Split on ';' at top level (quotes respected).
  std::vector<std::string> statements;
  std::string current;
  bool in_string = false;
  for (size_t i = 0; i < script.size(); ++i) {
    char c = script[i];
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      statements.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  statements.push_back(current);
  for (const std::string& text : statements) {
    if (Trim(text).empty()) continue;
    Result<ResultSet> rs = Execute(text);
    if (!rs.ok()) {
      return Status(rs.status().code(),
                    rs.status().message() + " (in statement: " + Trim(text) +
                        ")");
    }
  }
  return Status::OK();
}

Result<PreparedStatement> Database::Prepare(const std::string& sql) {
  int param_count = 0;
  Result<std::unique_ptr<Statement>> stmt = ParseSql(sql, &param_count);
  if (!stmt.ok()) return stmt.status();
  if ((*stmt)->kind == StatementKind::kSelect) {
    // Resolve column references once; repeated executions then skip the
    // per-call clone-and-bind pass. Falls back silently when the shape
    // cannot be prebound.
    ReadLock lock(this, &mutex_);
    (void)PrebindSelect(this, (*stmt)->select.get());
  }
  return PreparedStatement(this, std::shared_ptr<Statement>(std::move(*stmt)),
                           param_count);
}

Result<ResultSet> Database::ExecuteStatement(const Statement& stmt,
                                             const std::vector<Value>& params) {
  const bool log = QueryLog::Global().enabled();
  if (IsReadOnly(stmt)) {
    ReadLock lock(this, &mutex_);
    Executor executor(this, &params);
    if (!log) return executor.Select(*stmt.select);
    uint64_t start = TraceClock::Default()->NowMicros();
    Result<ResultSet> result = executor.Select(*stmt.select);
    RecordQueryLog(stmt, result, TraceClock::Default()->NowMicros() - start);
    return result;
  }
  WriteLock lock(&mutex_);
  // Bumped under the exclusive lock: readers that observe the new epoch are
  // serialized after this write, so data they fetch and tag with it cannot
  // be stale. (Bumping outside the lock would let a reader tag pre-write
  // data with the post-write epoch.)
  write_epoch_.fetch_add(1, std::memory_order_acq_rel);
  stats_.writes.fetch_add(1, std::memory_order_relaxed);
  if (!log) return ExecuteLocked(stmt, params);
  uint64_t start = TraceClock::Default()->NowMicros();
  Result<ResultSet> result = ExecuteLocked(stmt, params);
  RecordQueryLog(stmt, result, TraceClock::Default()->NowMicros() - start);
  return result;
}

uint64_t Database::stats_epoch() const {
  ReadLock lock(this, &mutex_);
  uint64_t epoch = 0;
  for (const auto& [key, table] : tables_) {
    (void)key;
    epoch += table->stats_version();
  }
  return epoch;
}

bool Database::SnapshotTableStats(const std::string& name,
                                  TableStats* out) const {
  ReadLock lock(this, &mutex_);
  auto it = tables_.find(CatalogKey(name));
  if (it == tables_.end()) return false;
  const Table& table = *it->second;
  out->row_count = table.row_count();
  out->columns.clear();
  out->columns.reserve(table.column_count());
  for (size_t c = 0; c < table.column_count(); ++c) {
    out->columns.push_back(table.GetColumnStats(c));
  }
  return true;
}

bool Database::ReadLockHeldByThisThread() const {
  auto it = tls_read_depth.find(this);
  return it != tls_read_depth.end() && it->second > 0;
}

void Database::SetExecConfig(const ExecConfig& config) {
  {
    std::lock_guard<std::mutex> lock(exec_config_mutex_);
    session_exec_config_ = config;
  }
  // Mirror the resolved monitoring-visible fields into the lock-free
  // atomics (resolved through the process default so an env-seeded
  // DB2G_VECTORIZED=0 shows even when the session leaves it unset).
  ExecConfig resolved = ExecConfig::ProcessDefault().OverlaidBy(config);
  vectorized_execution_.store(resolved.vectorized(),
                              std::memory_order_relaxed);
  profile_execution_.store(resolved.profile(), std::memory_order_relaxed);
}

ExecConfig Database::exec_config() const {
  std::lock_guard<std::mutex> lock(exec_config_mutex_);
  return session_exec_config_;
}

ExecConfig Database::ResolveExecConfig() const {
  return ExecConfig::ProcessDefault()
      .OverlaidBy(exec_config())
      .OverlaidBy(ExecConfig::Current());
}

void Database::SetCurrentUser(std::string user) {
  current_user_ = ToLower(user);
}

void Database::Grant(const std::string& user, const std::string& relation,
                     bool select_only) {
  Privilege& p = grants_[{ToLower(user), CatalogKey(relation)}];
  p.select = true;
  if (!select_only) p.modify = true;
}

void Database::Revoke(const std::string& user, const std::string& relation) {
  grants_.erase({ToLower(user), CatalogKey(relation)});
}

Status Database::CheckAccess(const std::string& relation, bool write) const {
  if (!access_control_ || current_user_.empty()) return Status::OK();
  auto it = grants_.find({current_user_, CatalogKey(relation)});
  bool allowed = it != grants_.end() &&
                 (write ? it->second.modify : it->second.select);
  if (allowed) return Status::OK();
  return Status::ConstraintViolation(
      "user '" + current_user_ + "' lacks " +
      (write ? "MODIFY" : "SELECT") + " privilege on " + relation);
}

Result<ResultSet> Database::ExecuteLocked(const Statement& stmt,
                                          const std::vector<Value>& params) {
  switch (stmt.kind) {
    case StatementKind::kGrant:
    case StatementKind::kRevoke:
      // Only the superuser administers grants.
      if (access_control_ && !current_user_.empty()) {
        return Status::ConstraintViolation(
            "only the superuser can GRANT/REVOKE");
      }
      if (stmt.grant->is_revoke) {
        Revoke(stmt.grant->user, stmt.grant->table);
      } else {
        Grant(stmt.grant->user, stmt.grant->table,
              stmt.grant->select_only);
      }
      return ResultSet{};
    case StatementKind::kCreateTable:
      return ExecuteCreateTable(*stmt.create_table);
    case StatementKind::kCreateIndex:
      return ExecuteCreateIndex(*stmt.create_index);
    case StatementKind::kCreateView:
      return ExecuteCreateView(*stmt.create_view);
    case StatementKind::kDropTable:
      return ExecuteDropTable(*stmt.drop_table);
    case StatementKind::kInsert:
      return ExecuteInsert(*stmt.insert, params);
    case StatementKind::kUpdate:
      return ExecuteUpdate(*stmt.update, params);
    case StatementKind::kDelete:
      return ExecuteDelete(*stmt.del, params);
    case StatementKind::kBegin:
      if (in_transaction_) {
        return Status::InvalidArgument("transaction already in progress");
      }
      in_transaction_ = true;
      undo_log_.clear();
      return ResultSet{};
    case StatementKind::kCommit:
      if (!in_transaction_) {
        return Status::InvalidArgument("no transaction in progress");
      }
      in_transaction_ = false;
      undo_log_.clear();
      return ResultSet{};
    case StatementKind::kRollback:
      if (!in_transaction_) {
        return Status::InvalidArgument("no transaction in progress");
      }
      RollbackLocked();
      in_transaction_ = false;
      return ResultSet{};
    case StatementKind::kSelect:
      return Status::Internal("select reached write path");
  }
  return Status::Internal("unknown statement kind");
}

Result<ResultSet> Database::ExecuteCreateTable(const CreateTableStmt& stmt) {
  ddl_version_.fetch_add(1, std::memory_order_release);
  std::string key = CatalogKey(stmt.schema.name);
  if (tables_.count(key) > 0 || views_.count(key) > 0) {
    if (stmt.if_not_exists) return ResultSet{};
    return Status::AlreadyExists("relation " + stmt.schema.name +
                                 " already exists");
  }
  // Validate PK/FK column references.
  for (const std::string& pk : stmt.schema.primary_key) {
    if (!stmt.schema.HasColumn(pk)) {
      return Status::NotFound("PRIMARY KEY column " + pk + " not in table");
    }
  }
  for (const ForeignKey& fk : stmt.schema.foreign_keys) {
    for (const std::string& c : fk.columns) {
      if (!stmt.schema.HasColumn(c)) {
        return Status::NotFound("FOREIGN KEY column " + c + " not in table");
      }
    }
    auto ref = tables_.find(CatalogKey(fk.ref_table));
    if (ref == tables_.end()) {
      return Status::NotFound("FOREIGN KEY references unknown table " +
                              fk.ref_table);
    }
    for (const std::string& c : fk.ref_columns) {
      if (!ref->second->schema().HasColumn(c)) {
        return Status::NotFound("FOREIGN KEY references unknown column " +
                                fk.ref_table + "." + c);
      }
    }
  }
  auto table = std::make_unique<Table>(stmt.schema);
  if (stmt.schema.has_primary_key()) {
    DB2G_RETURN_NOT_OK(table->CreateIndex("pk_" + stmt.schema.name,
                                          stmt.schema.primary_key,
                                          /*unique=*/true));
  }
  tables_.emplace(key, std::move(table));
  return ResultSet{};
}

Result<ResultSet> Database::ExecuteCreateIndex(const CreateIndexStmt& stmt) {
  ddl_version_.fetch_add(1, std::memory_order_release);
  auto it = tables_.find(CatalogKey(stmt.table));
  if (it == tables_.end()) {
    return Status::NotFound("unknown table: " + stmt.table);
  }
  if (stmt.ordered) {
    if (stmt.columns.size() != 1) {
      return Status::Unsupported(
          "ORDERED INDEX supports exactly one column");
    }
    if (stmt.unique) {
      return Status::Unsupported("ORDERED INDEX cannot be UNIQUE");
    }
    DB2G_RETURN_NOT_OK(
        it->second->CreateOrderedIndex(stmt.index_name, stmt.columns[0]));
    return ResultSet{};
  }
  DB2G_RETURN_NOT_OK(
      it->second->CreateIndex(stmt.index_name, stmt.columns, stmt.unique));
  return ResultSet{};
}

Result<ResultSet> Database::ExecuteCreateView(const CreateViewStmt& stmt) {
  ddl_version_.fetch_add(1, std::memory_order_release);
  std::string key = CatalogKey(stmt.name);
  if (tables_.count(key) > 0 || views_.count(key) > 0) {
    return Status::AlreadyExists("relation " + stmt.name + " already exists");
  }
  Result<std::vector<ColumnDef>> columns =
      DeriveSelectColumns(this, *stmt.select);
  if (!columns.ok()) return columns.status();
  ViewDef def;
  def.select = stmt.select;
  def.select_text = stmt.select_text;
  def.derived_schema.name = stmt.name;
  def.derived_schema.columns = std::move(*columns);
  views_.emplace(key, std::move(def));
  return ResultSet{};
}

Result<ResultSet> Database::ExecuteDropTable(const DropTableStmt& stmt) {
  ddl_version_.fetch_add(1, std::memory_order_release);
  std::string key = CatalogKey(stmt.table);
  if (tables_.erase(key) > 0 || views_.erase(key) > 0) return ResultSet{};
  if (stmt.if_exists) return ResultSet{};
  return Status::NotFound("unknown relation: " + stmt.table);
}

Status Database::CheckForeignKeysOnInsert(const Table& table,
                                          const Row& row) {
  for (const ForeignKey& fk : table.schema().foreign_keys) {
    auto ref_it = tables_.find(CatalogKey(fk.ref_table));
    if (ref_it == tables_.end()) continue;  // referenced table dropped
    Table* ref = ref_it->second.get();
    // NULL FK values are exempt.
    Row key;
    bool has_null = false;
    for (const std::string& c : fk.columns) {
      const Value& v = row[*table.schema().ColumnIndex(c)];
      if (v.is_null()) {
        has_null = true;
        break;
      }
      key.push_back(v);
    }
    if (has_null) continue;
    std::vector<size_t> ref_cols;
    for (const std::string& c : fk.ref_columns) {
      auto idx = ref->schema().ColumnIndex(c);
      if (!idx) return Status::Internal("dangling FK reference column");
      ref_cols.push_back(*idx);
    }
    const Index* index = ref->FindIndexOn(ref_cols);
    bool found = false;
    if (index != nullptr &&
        index->column_indexes() == ref_cols) {  // same order required
      found = index->Contains(key);
    } else {
      for (RowId rid = 0; rid < ref->slot_count() && !found; ++rid) {
        if (!ref->IsLive(rid)) continue;
        const Row& candidate = ref->GetRow(rid);
        bool match = true;
        for (size_t i = 0; i < ref_cols.size(); ++i) {
          if (candidate[ref_cols[i]] != key[i]) {
            match = false;
            break;
          }
        }
        found = match;
      }
    }
    if (!found) {
      return Status::ConstraintViolation(
          "foreign key violation: no row in " + fk.ref_table +
          " matches (" + Join(fk.columns, ", ") + ") of " +
          table.schema().name);
    }
  }
  return Status::OK();
}

Result<ResultSet> Database::ExecuteInsert(const InsertStmt& stmt,
                                          const std::vector<Value>& params) {
  DB2G_RETURN_NOT_OK(CheckAccess(stmt.table, /*write=*/true));
  auto it = tables_.find(CatalogKey(stmt.table));
  if (it == tables_.end()) {
    return Status::NotFound("unknown table: " + stmt.table);
  }
  Table* table = it->second.get();
  const TableSchema& schema = table->schema();
  // Map provided columns to schema positions.
  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema.columns.size(); ++i) positions.push_back(i);
  } else {
    for (const std::string& c : stmt.columns) {
      auto idx = schema.ColumnIndex(c);
      if (!idx) {
        return Status::NotFound("unknown column " + c + " in " + stmt.table);
      }
      positions.push_back(*idx);
    }
  }
  ResultSet result;
  Row empty;
  for (const auto& exprs : stmt.rows) {
    if (exprs.size() != positions.size()) {
      return Status::InvalidArgument("VALUES arity mismatch for " +
                                     stmt.table);
    }
    Row row(schema.columns.size());
    for (size_t i = 0; i < exprs.size(); ++i) {
      row[positions[i]] = EvalExpr(*exprs[i], empty, &params);
    }
    DB2G_RETURN_NOT_OK(CheckForeignKeysOnInsert(*table, row));
    Result<RowId> rid = table->Insert(std::move(row));
    if (!rid.ok()) return rid.status();
    if (in_transaction_) {
      LogUndo({UndoRecord::Kind::kInsert, CatalogKey(stmt.table), *rid, {}});
    }
    ++result.affected;
  }
  table->PublishColumnStats();
  return result;
}

Result<ResultSet> Database::ExecuteUpdate(const UpdateStmt& stmt,
                                          const std::vector<Value>& params) {
  DB2G_RETURN_NOT_OK(CheckAccess(stmt.table, /*write=*/true));
  auto it = tables_.find(CatalogKey(stmt.table));
  if (it == tables_.end()) {
    return Status::NotFound("unknown table: " + stmt.table);
  }
  Table* table = it->second.get();
  const TableSchema& schema = table->schema();

  Scope scope;
  scope.AddTable(stmt.table, schema.ColumnNames());
  std::unique_ptr<Expr> where;
  if (stmt.where) {
    where = stmt.where->Clone();
    DB2G_RETURN_NOT_OK(BindExpr(where.get(), scope));
  }
  std::vector<std::pair<size_t, std::unique_ptr<Expr>>> assignments;
  for (const auto& [column, expr] : stmt.assignments) {
    auto idx = schema.ColumnIndex(column);
    if (!idx) {
      return Status::NotFound("unknown column " + column + " in " +
                              stmt.table);
    }
    std::unique_ptr<Expr> bound = expr->Clone();
    DB2G_RETURN_NOT_OK(BindExpr(bound.get(), scope));
    assignments.emplace_back(*idx, std::move(bound));
  }

  ResultSet result;
  for (RowId rid = 0; rid < table->slot_count(); ++rid) {
    if (!table->IsLive(rid)) continue;
    const Row& row = table->GetRow(rid);
    if (where) {
      Value v = EvalExpr(*where, row, &params);
      if (v.is_null() || !v.Truthy()) continue;
    }
    Row updated = row;
    for (const auto& [idx, expr] : assignments) {
      updated[idx] = EvalExpr(*expr, row, &params);
    }
    Result<Row> before = table->Update(rid, std::move(updated));
    if (!before.ok()) return before.status();
    if (in_transaction_) {
      LogUndo({UndoRecord::Kind::kUpdate, CatalogKey(stmt.table), rid,
               std::move(*before)});
    }
    ++result.affected;
  }
  table->PublishColumnStats();
  return result;
}

Result<ResultSet> Database::ExecuteDelete(const DeleteStmt& stmt,
                                          const std::vector<Value>& params) {
  DB2G_RETURN_NOT_OK(CheckAccess(stmt.table, /*write=*/true));
  auto it = tables_.find(CatalogKey(stmt.table));
  if (it == tables_.end()) {
    return Status::NotFound("unknown table: " + stmt.table);
  }
  Table* table = it->second.get();
  Scope scope;
  scope.AddTable(stmt.table, table->schema().ColumnNames());
  std::unique_ptr<Expr> where;
  if (stmt.where) {
    where = stmt.where->Clone();
    DB2G_RETURN_NOT_OK(BindExpr(where.get(), scope));
  }
  std::vector<RowId> to_delete;
  for (RowId rid = 0; rid < table->slot_count(); ++rid) {
    if (!table->IsLive(rid)) continue;
    if (where) {
      Value v = EvalExpr(*where, table->GetRow(rid), &params);
      if (v.is_null() || !v.Truthy()) continue;
    }
    to_delete.push_back(rid);
  }
  ResultSet result;
  for (RowId rid : to_delete) {
    Result<Row> image = table->Delete(rid);
    if (!image.ok()) return image.status();
    if (in_transaction_) {
      LogUndo({UndoRecord::Kind::kDelete, CatalogKey(stmt.table), rid,
               std::move(*image)});
    }
    ++result.affected;
  }
  table->PublishColumnStats();
  return result;
}

void Database::LogUndo(UndoRecord record) {
  undo_log_.push_back(std::move(record));
}

void Database::RollbackLocked() {
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    auto table_it = tables_.find(it->table);
    if (table_it == tables_.end()) continue;  // table dropped mid-txn
    Table* table = table_it->second.get();
    switch (it->kind) {
      case UndoRecord::Kind::kInsert:
        table->EraseSlot(it->rid);
        break;
      case UndoRecord::Kind::kDelete:
        table->RestoreSlot(it->rid, std::move(it->before));
        break;
      case UndoRecord::Kind::kUpdate:
        (void)table->Update(it->rid, std::move(it->before));
        break;
    }
  }
  undo_log_.clear();
}

std::vector<std::string> Database::TableNames() const {
  ReadLock lock(this, &mutex_);
  std::vector<std::string> names;
  for (const auto& [key, table] : tables_) {
    (void)key;
    names.push_back(table->schema().name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<std::string> Database::ViewNames() const {
  ReadLock lock(this, &mutex_);
  std::vector<std::string> names;
  for (const auto& [key, view] : views_) {
    (void)key;
    names.push_back(view.derived_schema.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

const TableSchema* Database::GetSchema(const std::string& name) const {
  auto it = tables_.find(CatalogKey(name));
  if (it != tables_.end()) return &it->second->schema();
  auto vit = views_.find(CatalogKey(name));
  if (vit != views_.end()) return &vit->second.derived_schema;
  auto vtit = virtual_tables_.find(CatalogKey(name));
  if (vtit != virtual_tables_.end()) return &vtit->second.schema;
  return nullptr;
}

bool Database::HasRelation(const std::string& name) const {
  return GetSchema(name) != nullptr;
}

bool Database::IsView(const std::string& name) const {
  return views_.count(CatalogKey(name)) > 0;
}

Table* Database::GetTable(const std::string& name) {
  auto it = tables_.find(CatalogKey(name));
  return it != tables_.end() ? it->second.get() : nullptr;
}

const Table* Database::GetTable(const std::string& name) const {
  auto it = tables_.find(CatalogKey(name));
  return it != tables_.end() ? it->second.get() : nullptr;
}

void Database::RegisterTableFunction(const std::string& name,
                                     TableFunction fn) {
  WriteLock lock(&mutex_);
  table_functions_[CatalogKey(name)] = std::move(fn);
}

const Database::TableFunction* Database::FindTableFunction(
    const std::string& name) const {
  auto it = table_functions_.find(CatalogKey(name));
  return it != table_functions_.end() ? &it->second : nullptr;
}

void Database::RegisterVirtualTable(VirtualTableDef def) {
  WriteLock lock(&mutex_);
  virtual_tables_[CatalogKey(def.schema.name)] = std::move(def);
}

const VirtualTableDef* Database::FindVirtualTable(
    const std::string& name) const {
  auto it = virtual_tables_.find(CatalogKey(name));
  return it != virtual_tables_.end() ? &it->second : nullptr;
}

std::vector<std::string> Database::VirtualTableNames() const {
  ReadLock lock(this, &mutex_);
  std::vector<std::string> names;
  for (const auto& [key, def] : virtual_tables_) {
    (void)key;
    names.push_back(def.schema.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

size_t Database::ApproxBytes() const {
  ReadLock lock(this, &mutex_);
  size_t bytes = 0;
  for (const auto& [key, table] : tables_) {
    (void)key;
    bytes += table->ApproxBytes();
  }
  return bytes;
}

size_t Database::ApproxDiskBytes() const {
  ReadLock lock(this, &mutex_);
  size_t bytes = 0;
  for (const auto& [key, table] : tables_) {
    (void)key;
    bytes += table->ApproxDiskBytes();
  }
  return bytes;
}

}  // namespace db2graph::sql
