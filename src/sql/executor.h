// Copyright (c) 2026 The db2graph-repro Authors.
//
// SELECT execution: FROM resolution (tables, views, subqueries, table
// functions), index-assisted joins, filtering, grouping/aggregation,
// DISTINCT, ORDER BY and LIMIT. Simple by design, but with the access-path
// behaviours the paper's optimizations rely on: equality and IN predicates
// on indexed columns become index probes instead of scans.
//
// Execution is organized as a pull-based operator tree over RowBlocks
// (scan -> filter -> join -> project -> aggregate/sort -> limit). Compile()
// builds the tree; Next() streams blocks from the root, with LIMIT
// shrinking upstream block capacities so scans stop at the row budget;
// Select() is the materializing Compile()+Drain() convenience that existing
// callers use.

#ifndef DB2GRAPH_SQL_EXECUTOR_H_
#define DB2GRAPH_SQL_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/result_set.h"
#include "sql/row_source.h"

namespace db2graph::sql {

class Database;

/// A compiled SELECT: the operator tree plus everything it borrows
/// (bound expression clones, materialized FROM relations). Pull blocks
/// with Next() or materialize everything with Drain(). The caller must
/// hold the database read lock for the plan's whole lifetime and keep the
/// source SelectStmt alive (bound expressions point into it).
class SelectPlan : public RowSource {
 public:
  ~SelectPlan() override;
  SelectPlan(SelectPlan&&) = delete;
  SelectPlan& operator=(SelectPlan&&) = delete;

  const std::vector<std::string>& columns() const;

  /// Pulls the next block from the root operator. Returns false on
  /// exhaustion or error; check status() to distinguish.
  bool Next(RowBlock* out) override;

  /// Releases operator state eagerly (idempotent; also run by the dtor).
  void Close() override;

  /// OK unless execution failed mid-stream.
  const Status& status() const;

  /// Access-path counters accumulated so far (complete after exhaustion).
  const ExecInfo& exec() const;

  /// Pulls everything and returns the materialized result — the
  /// compatibility adapter Database::Execute sits on.
  Result<ResultSet> Drain();

 private:
  friend class Executor;
  struct State;
  explicit SelectPlan(std::unique_ptr<State> state);
  std::unique_ptr<State> state_;
};

/// Executes one SELECT against a database. The caller must already hold the
/// database lock (Database::Execute does).
class Executor {
 public:
  Executor(Database* db, const std::vector<Value>* params)
      : db_(db), params_(params) {}

  /// View expansion runs with definer's rights: a grant on the view is
  /// enough, so the inner executor skips per-table checks.
  void set_skip_access_checks(bool skip) { skip_access_checks_ = skip; }

  /// Builds the streaming operator tree for `stmt`. The returned plan
  /// captures db and params pointers; both must outlive it.
  Result<std::unique_ptr<SelectPlan>> Compile(const SelectStmt& stmt,
                                              size_t block_rows =
                                                  kDefaultBlockRows);

  Result<ResultSet> Select(const SelectStmt& stmt);

 private:
  struct Relation {
    std::string alias;
    std::vector<std::string> columns;
    const class Table* table = nullptr;  // base table access path
    std::vector<Row> rows;               // materialized otherwise
    /// Set for virtual tables: the snapshot Table `table` points into.
    /// The plan pins it so scans (row or vectorized) can keep raw
    /// pointers; base tables are owned by the catalog and leave it null.
    std::shared_ptr<class Table> owned;
    bool materialized() const { return table == nullptr; }
  };

  Result<Relation> ResolveRef(const TableRef& ref);

  Database* db_;
  const std::vector<Value>* params_;
  bool skip_access_checks_ = false;
};

/// Binds every expression of `stmt` against its own FROM scope and sets
/// stmt->prebound on success (used by Database::Prepare so repeated
/// executions skip per-call clone+bind). Returns false when the statement
/// shape cannot be prebound (e.g. ORDER BY aliases); execution then falls
/// back to per-call binding.
bool PrebindSelect(Database* db, SelectStmt* stmt);

/// Derives the output column shape of a SELECT without executing it
/// (used for CREATE VIEW schemas). Best-effort types.
Result<std::vector<ColumnDef>> DeriveSelectColumns(Database* db,
                                                   const SelectStmt& stmt);

/// Column shape a FROM-clause reference exposes.
Result<std::vector<ColumnDef>> RelationColumns(Database* db,
                                               const TableRef& ref);

}  // namespace db2graph::sql

#endif  // DB2GRAPH_SQL_EXECUTOR_H_
