// Copyright (c) 2026 The db2graph-repro Authors.
//
// Recursive-descent parser for the SQL subset (see ast.h).

#ifndef DB2GRAPH_SQL_PARSER_H_
#define DB2GRAPH_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "sql/ast.h"

namespace db2graph::sql {

/// Parses one SQL statement (an optional trailing ';' is allowed).
/// `param_count`, when non-null, receives the number of '?' placeholders.
Result<std::unique_ptr<Statement>> ParseSql(const std::string& sql,
                                            int* param_count = nullptr);

}  // namespace db2graph::sql

#endif  // DB2GRAPH_SQL_PARSER_H_
