// Copyright (c) 2026 The db2graph-repro Authors.
//
// Statement AST for the SQL subset. Besides ordinary DML/DDL, FROM clauses
// may contain TABLE(func(...)) AS alias (cols...) — the polymorphic table
// function mechanism the paper uses for graphQuery (Section 4).

#ifndef DB2GRAPH_SQL_AST_H_
#define DB2GRAPH_SQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "sql/expr.h"
#include "sql/schema.h"

namespace db2graph::sql {

enum class StatementKind {
  kGrant,
  kRevoke,
  kCreateTable,
  kCreateIndex,
  kCreateView,
  kDropTable,
  kInsert,
  kUpdate,
  kDelete,
  kSelect,
  kBegin,
  kCommit,
  kRollback,
};

struct SelectStmt;

/// A reference in a FROM clause: a base table / view, a parenthesized
/// subquery, or a TABLE(function(...)) invocation.
struct TableRef {
  enum class Kind { kTable, kSubquery, kTableFunction };
  Kind kind = Kind::kTable;
  std::string table;  // kTable: table or view name
  std::string alias;  // exposed alias (defaults to table name)
  std::shared_ptr<SelectStmt> subquery;            // kSubquery
  std::string function_name;                       // kTableFunction
  std::vector<std::unique_ptr<Expr>> function_args;
  std::vector<ColumnDef> function_columns;  // declared output shape
};

struct JoinClause {
  enum class Kind { kInner, kLeft };
  Kind kind = Kind::kInner;
  TableRef table;
  std::unique_ptr<Expr> on;
};

struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;
};

struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool descending = false;
};

struct SelectStmt {
  /// Set by Database::Prepare after a successful bind pass: every
  /// expression's column references are resolved against the statement's
  /// own FROM scope, so execution can skip per-call cloning and binding.
  /// Invalidated (not tracked) by DDL on the referenced tables.
  bool prebound = false;
  /// EXPLAIN SELECT ...: compile (and for analyze, run) the statement but
  /// return the operator tree as a one-column "plan" result instead of
  /// the query's rows.
  bool explain = false;
  /// EXPLAIN ANALYZE: execute fully with per-operator instrumentation so
  /// the rendered plan carries actual blocks/rows/micros.
  bool analyze = false;
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;  // comma-list = cross join
  std::vector<JoinClause> joins;
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = unlimited
};

struct CreateTableStmt {
  TableSchema schema;
  bool if_not_exists = false;
};

struct CreateIndexStmt {
  std::string index_name;
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;
  bool ordered = false;  // CREATE ORDERED INDEX: range-scannable
};

struct CreateViewStmt {
  std::string name;
  std::shared_ptr<SelectStmt> select;
  std::string select_text;  // original SELECT text, for introspection
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty = declaration order
  std::vector<std::vector<std::unique_ptr<Expr>>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, std::unique_ptr<Expr>>> assignments;
  std::unique_ptr<Expr> where;
};

struct DeleteStmt {
  std::string table;
  std::unique_ptr<Expr> where;
};

/// GRANT/REVOKE SELECT|ALL ON table TO/FROM user.
struct GrantStmt {
  bool is_revoke = false;
  bool select_only = true;  // SELECT vs ALL (select + modify)
  std::string table;
  std::string user;
};

/// A parsed statement (tagged union; exactly the member matching `kind`
/// is populated).
struct Statement {
  StatementKind kind;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<CreateViewStmt> create_view;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<GrantStmt> grant;
  std::shared_ptr<SelectStmt> select;
};

}  // namespace db2graph::sql

#endif  // DB2GRAPH_SQL_AST_H_
