#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace db2graph::sql {

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '_')) {
        ++i;
      }
      tok.type = TokenType::kIdentifier;
      tok.text = sql.substr(start, i - start);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      // Quoted identifier.
      size_t start = ++i;
      while (i < n && sql[i] != '"') ++i;
      if (i >= n) {
        return Status::InvalidArgument("unterminated quoted identifier");
      }
      tok.type = TokenType::kIdentifier;
      tok.text = sql.substr(start, i - start);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                       sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E' ||
                       ((sql[i] == '+' || sql[i] == '-') && i > start &&
                        (sql[i - 1] == 'e' || sql[i - 1] == 'E')))) {
        if (sql[i] == '.' || sql[i] == 'e' || sql[i] == 'E') is_double = true;
        ++i;
      }
      std::string num = sql.substr(start, i - start);
      tok.type = TokenType::kNumber;
      tok.text = num;
      if (is_double) {
        tok.value = Value(std::strtod(num.c_str(), nullptr));
      } else {
        tok.value = Value(static_cast<int64_t>(
            std::strtoll(num.c_str(), nullptr, 10)));
      }
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      std::string s;
      ++i;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escape
            s.push_back('\'');
            i += 2;
            continue;
          }
          break;
        }
        s.push_back(sql[i++]);
      }
      if (i >= n) {
        return Status::InvalidArgument("unterminated string literal");
      }
      ++i;  // closing quote
      tok.type = TokenType::kString;
      tok.text = s;
      tok.value = Value(std::move(s));
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-character operators.
    auto two = (i + 1 < n) ? sql.substr(i, 2) : std::string();
    if (two == "<>" || two == "!=" || two == "<=" || two == ">=" ||
        two == "||") {
      tok.type = TokenType::kOperator;
      tok.text = two;
      i += 2;
      tokens.push_back(std::move(tok));
      continue;
    }
    static const std::string kSingles = "=<>+-*/%.,()?;";
    if (kSingles.find(c) != std::string::npos) {
      tok.type = TokenType::kOperator;
      tok.text = std::string(1, c);
      ++i;
      tokens.push_back(std::move(tok));
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace db2graph::sql
