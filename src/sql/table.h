// Copyright (c) 2026 The db2graph-repro Authors.
//
// Column-oriented in-memory store with hash indexes. Each table holds one
// typed vector per column (int64/double/string/bool) plus a validity
// bitmap; rows exist only as slot numbers. Slots are stable across deletes
// (a free list recycles them), so index postings stay valid across the
// columnar layout exactly as they did for the row store.

#ifndef DB2GRAPH_SQL_TABLE_H_
#define DB2GRAPH_SQL_TABLE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sql/schema.h"

namespace db2graph::sql {

/// Stable row identifier within a table (slot number).
using RowId = uint64_t;

/// Encoded width of one value in a compact page layout (disk accounting
/// and ordered-index key-width bookkeeping).
size_t EncodedValueBytes(const Value& v);

/// One column of a table: a typed vector indexed by slot number plus a
/// validity bitmap (bit set = non-NULL). Only the vector matching the
/// declared type is populated — Table::Insert coerces or rejects values,
/// so a column never holds mixed types. Dead slots read as NULL.
class Column {
 public:
  explicit Column(ColumnType type) : type_(type) {}

  ColumnType type() const { return type_; }
  ValueType value_type() const { return ColumnValueType(type_); }
  size_t size() const { return size_; }

  /// Grows to `n` slots, new slots NULL. Never shrinks.
  void EnsureSize(size_t n);

  bool IsNull(RowId rid) const {
    return ((valid_[rid >> 6] >> (rid & 63)) & 1) == 0;
  }

  /// Stores a value into a slot. `v` must be NULL or match value_type()
  /// (the table layer enforces coercion before it gets here).
  void Set(RowId rid, const Value& v);
  void SetMove(RowId rid, Value&& v);
  /// Clears a slot back to NULL, releasing string storage.
  void SetNull(RowId rid);

  /// Materializes one cell as a Value.
  Value Get(RowId rid) const;

  // Raw typed access for the vectorized kernels. Only the array matching
  // value_type() is meaningful; validity() has one bit per slot.
  const int64_t* ints() const { return ints_.data(); }
  const double* doubles() const { return doubles_.data(); }
  const uint8_t* bools() const { return bools_.data(); }
  const std::string* strings() const { return strings_.data(); }
  const uint64_t* validity() const { return valid_.data(); }

  /// Approximate heap footprint of this column's vectors.
  size_t ApproxBytes() const;

 private:
  void SetValid(RowId rid, bool valid) {
    uint64_t mask = uint64_t{1} << (rid & 63);
    if (valid) {
      valid_[rid >> 6] |= mask;
    } else {
      valid_[rid >> 6] &= ~mask;
    }
  }

  ColumnType type_;
  size_t size_ = 0;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint8_t> bools_;
  std::vector<std::string> strings_;
  std::vector<uint64_t> valid_;  // validity bitmap, 64 slots per word
};

/// A hash index over one or more columns of a table.
class Index {
 public:
  Index(std::string name, std::vector<size_t> column_indexes, bool unique)
      : name_(std::move(name)),
        column_indexes_(std::move(column_indexes)),
        unique_(unique) {}

  const std::string& name() const { return name_; }
  const std::vector<size_t>& column_indexes() const {
    return column_indexes_;
  }
  bool unique() const { return unique_; }

  /// Extracts this index's key from a full row.
  Row KeyFor(const Row& row) const {
    Row key;
    key.reserve(column_indexes_.size());
    for (size_t c : column_indexes_) key.push_back(row[c]);
    return key;
  }

  void Insert(const Row& key, RowId rid) { map_.emplace(key, rid); }
  void Erase(const Row& key, RowId rid);

  /// All row ids whose key equals `key`.
  void Lookup(const Row& key, std::vector<RowId>* out) const;

  bool Contains(const Row& key) const { return map_.count(key) > 0; }

  size_t entry_count() const { return map_.size(); }

  /// Approximate memory footprint, for storage accounting.
  size_t ApproxBytes() const;

 private:
  std::string name_;
  std::vector<size_t> column_indexes_;
  bool unique_;
  std::unordered_multimap<Row, RowId, RowHash> map_;
};

/// A single-column ordered (B-tree-style) index supporting range scans.
class OrderedIndex {
 public:
  OrderedIndex(std::string name, size_t column_index)
      : name_(std::move(name)), column_index_(column_index) {}

  const std::string& name() const { return name_; }
  size_t column_index() const { return column_index_; }

  void Insert(const Value& key, RowId rid) {
    key_bytes_ += EncodedValueBytes(key);
    map_.emplace(key, rid);
  }
  void Erase(const Value& key, RowId rid);

  /// Row ids with key in [lo, hi] (either bound optional; exclusive when
  /// the corresponding flag is set). NULL keys never match.
  void RangeLookup(const Value* lo, bool lo_exclusive, const Value* hi,
                   bool hi_exclusive, std::vector<RowId>* out) const;

  size_t entry_count() const { return map_.size(); }

  /// Sum of encoded key widths over all entries (maintained on
  /// Insert/Erase rather than estimated).
  size_t key_bytes() const { return key_bytes_; }

  /// Approximate memory footprint: per-node red-black overhead (three
  /// pointers + color word) and the payload pair, plus the actual key
  /// widths accumulated above.
  size_t ApproxBytes() const {
    return 64 +
           map_.size() * (4 * sizeof(void*) + sizeof(std::pair<Value, RowId>)) +
           key_bytes_;
  }

 private:
  std::string name_;
  size_t column_index_;
  size_t key_bytes_ = 0;
  std::multimap<Value, RowId> map_;
};

/// A base table: schema + typed column vectors + its indexes.
class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }

  /// Number of live rows.
  size_t row_count() const { return live_count_; }

  /// Upper bound of slot numbers; iterate [0, slot_count()) and check
  /// IsLive().
  size_t slot_count() const { return slot_count_; }
  bool IsLive(RowId rid) const { return rid < live_.size() && live_[rid]; }

  /// Materializes one row from the column vectors. Returns by value —
  /// there is no contiguous row in storage to reference.
  Row GetRow(RowId rid) const;
  /// Appends the row's values to `out` (join/row-adapter hot path: avoids
  /// an intermediate Row).
  void AppendRow(RowId rid, Row* out) const;
  /// Materializes into a caller-owned scratch row, reusing its capacity.
  void MaterializeRow(RowId rid, Row* out) const;
  /// One cell, materialized.
  Value ValueAt(RowId rid, size_t column) const {
    return columns_[column].Get(rid);
  }
  /// Typed column access for the vectorized kernels.
  const Column& column(size_t index) const { return columns_[index]; }
  size_t column_count() const { return columns_.size(); }

  /// Per-column statistics maintained incrementally by the write path.
  /// min/max are NULL when the column has no non-NULL live values. The
  /// counts are always exact; min/max and ndv may require a lazy rescan
  /// after a delete/update invalidated them (handled inside the accessor,
  /// which is safe to call from concurrent readers).
  struct ColumnStats {
    uint64_t row_count = 0;   // live rows
    uint64_t null_count = 0;  // NULL cells among live rows
    uint64_t ndv = 0;         // approximate distinct non-NULL values (KMV)
    Value min;
    Value max;
  };
  ColumnStats GetColumnStats(size_t column) const;
  /// Publishes rows/nulls/ndv gauges for every column to the global
  /// MetricsRegistry as "sql.colstats.<table>.<column>.{rows,nulls,ndv}".
  void PublishColumnStats() const;

  /// Monotonic counter bumped on every statistics-affecting write
  /// (insert/delete/update/undo). Database::stats_epoch() sums these so
  /// the optimizer can detect stats drift without comparing snapshots.
  uint64_t stats_version() const {
    return stats_version_.load(std::memory_order_relaxed);
  }

  /// Appends a row (recycling a free slot when available). The row must
  /// already match the schema arity. Index maintenance included. Uniqueness
  /// for unique indexes is enforced here.
  Result<RowId> Insert(Row row);

  /// Deletes a live row; returns the removed image for undo logs.
  Result<Row> Delete(RowId rid);

  /// Replaces a live row in place; returns the before image.
  Result<Row> Update(RowId rid, Row new_row);

  /// Re-inserts a row into a specific slot (transaction undo of Delete).
  void RestoreSlot(RowId rid, Row row);
  /// Removes a row from a specific slot (transaction undo of Insert).
  void EraseSlot(RowId rid);

  /// Creates a hash index. Populates it from existing rows.
  Status CreateIndex(const std::string& name,
                     const std::vector<std::string>& columns, bool unique);

  /// Creates a single-column ordered index (range scans).
  Status CreateOrderedIndex(const std::string& name,
                            const std::string& column);

  bool HasIndexNamed(const std::string& name) const;

  /// Finds an index whose columns are exactly `column_indexes` (order
  /// insensitive); nullptr when none.
  const Index* FindIndexOn(const std::vector<size_t>& column_indexes) const;

  /// Ordered index on exactly `column_index`; nullptr when none.
  const OrderedIndex* FindOrderedIndexOn(size_t column_index) const;

  const std::vector<std::unique_ptr<Index>>& indexes() const {
    return indexes_;
  }

  /// Approximate in-memory footprint in bytes (column vectors + indexes).
  size_t ApproxBytes() const;

  /// Approximate size of a compact on-disk page layout (per-column value
  /// runs + packed null bitmaps + index entries). Drives the paper's
  /// Table 3 "Disk Usage" comparison against the graph stores' formats.
  size_t ApproxDiskBytes() const;

 private:
  // Incremental statistics bookkeeping, one per column. The NDV sketch is
  // a k-minimum-values summary over 64-bit value hashes: insert-only (an
  // insert adds its hash; a delete flips ndv_stale and the next stats read
  // rebuilds from the live rows, mirroring the minmax_stale protocol).
  struct StatsState {
    uint64_t null_count = 0;
    Value min;
    Value max;
    bool minmax_stale = false;
    std::vector<uint64_t> kmv;  // sorted k smallest distinct hashes
    bool kmv_saturated = false;  // true once a hash was dropped from kmv
    bool ndv_stale = false;
  };

  void IndexInsert(const Row& row, RowId rid);
  void IndexErase(const Row& row, RowId rid);
  void StatsOnInsert(const Row& row);
  void StatsOnErase(const Row& row);
  static void SketchAdd(StatsState* state, const Value& v);
  void EnsureSlots(size_t n);
  void StoreRow(RowId rid, Row&& row);
  void ClearSlot(RowId rid);

  TableSchema schema_;
  std::vector<Column> columns_;
  std::vector<bool> live_;
  std::vector<RowId> free_slots_;
  size_t live_count_ = 0;
  size_t slot_count_ = 0;
  mutable std::vector<StatsState> stats_;
  /// Serializes the lazy stats rebuild inside GetColumnStats: concurrent
  /// readers (both holding the database read lock) may otherwise race on
  /// the mutable StatsState. Writers are already exclusive via the
  /// database lock, so they skip this mutex.
  mutable std::mutex stats_mutex_;
  std::atomic<uint64_t> stats_version_{0};
  std::vector<std::unique_ptr<Index>> indexes_;
  std::vector<std::unique_ptr<OrderedIndex>> ordered_indexes_;
};

/// Approximate in-memory size of one row's payload.
size_t ApproxRowBytes(const Row& row);

/// One equality/IN probe term extracted from a statement's conjuncts, in
/// conjunct order: `column = <outer value>` has value_count 1, a
/// `column IN (...)` lists its arity.
struct ProbeCandidate {
  size_t column_index = 0;
  size_t value_count = 1;
};

/// The index the executor will probe for a set of candidates (and which
/// candidates feed it, as positions into the input vector, in index column
/// order). Preference order: a multi-column hash index exactly covered by
/// the single-value equality terms, else the first candidate in conjunct
/// order backed by a single-column index. Shared between the join-stage
/// planner in the executor and the graph layer's multi-hop optimizer, so
/// a collapse decision made at compile time predicts the runtime access
/// path exactly.
struct ProbeChoice {
  const Index* index = nullptr;
  std::vector<size_t> term_indexes;
};
ProbeChoice ChooseProbeIndex(const Table& table,
                             const std::vector<ProbeCandidate>& candidates);

}  // namespace db2graph::sql

#endif  // DB2GRAPH_SQL_TABLE_H_
