// Copyright (c) 2026 The db2graph-repro Authors.
//
// Slot-based in-memory row store with hash indexes. Row slots are stable
// across deletes (a free list recycles them), so index postings stay valid.

#ifndef DB2GRAPH_SQL_TABLE_H_
#define DB2GRAPH_SQL_TABLE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sql/schema.h"

namespace db2graph::sql {

/// Stable row identifier within a table (slot number).
using RowId = uint64_t;

/// A hash index over one or more columns of a table.
class Index {
 public:
  Index(std::string name, std::vector<size_t> column_indexes, bool unique)
      : name_(std::move(name)),
        column_indexes_(std::move(column_indexes)),
        unique_(unique) {}

  const std::string& name() const { return name_; }
  const std::vector<size_t>& column_indexes() const {
    return column_indexes_;
  }
  bool unique() const { return unique_; }

  /// Extracts this index's key from a full row.
  Row KeyFor(const Row& row) const {
    Row key;
    key.reserve(column_indexes_.size());
    for (size_t c : column_indexes_) key.push_back(row[c]);
    return key;
  }

  void Insert(const Row& key, RowId rid) { map_.emplace(key, rid); }
  void Erase(const Row& key, RowId rid);

  /// All row ids whose key equals `key`.
  void Lookup(const Row& key, std::vector<RowId>* out) const;

  bool Contains(const Row& key) const { return map_.count(key) > 0; }

  size_t entry_count() const { return map_.size(); }

  /// Approximate memory footprint, for storage accounting.
  size_t ApproxBytes() const;

 private:
  std::string name_;
  std::vector<size_t> column_indexes_;
  bool unique_;
  std::unordered_multimap<Row, RowId, RowHash> map_;
};

/// A single-column ordered (B-tree-style) index supporting range scans.
class OrderedIndex {
 public:
  OrderedIndex(std::string name, size_t column_index)
      : name_(std::move(name)), column_index_(column_index) {}

  const std::string& name() const { return name_; }
  size_t column_index() const { return column_index_; }

  void Insert(const Value& key, RowId rid) { map_.emplace(key, rid); }
  void Erase(const Value& key, RowId rid);

  /// Row ids with key in [lo, hi] (either bound optional; exclusive when
  /// the corresponding flag is set). NULL keys never match.
  void RangeLookup(const Value* lo, bool lo_exclusive, const Value* hi,
                   bool hi_exclusive, std::vector<RowId>* out) const;

  size_t entry_count() const { return map_.size(); }
  size_t ApproxBytes() const { return 64 + map_.size() * 48; }

 private:
  std::string name_;
  size_t column_index_;
  std::multimap<Value, RowId> map_;
};

/// A base table: schema + slotted rows + its indexes.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const { return schema_; }

  /// Number of live rows.
  size_t row_count() const { return live_count_; }

  /// Upper bound of slot numbers; iterate [0, slot_count()) and check
  /// IsLive().
  size_t slot_count() const { return rows_.size(); }
  bool IsLive(RowId rid) const { return rid < live_.size() && live_[rid]; }
  const Row& GetRow(RowId rid) const { return rows_[rid]; }

  /// Appends a row (recycling a free slot when available). The row must
  /// already match the schema arity. Index maintenance included. Uniqueness
  /// for unique indexes is enforced here.
  Result<RowId> Insert(Row row);

  /// Deletes a live row; returns the removed image for undo logs.
  Result<Row> Delete(RowId rid);

  /// Replaces a live row in place; returns the before image.
  Result<Row> Update(RowId rid, Row new_row);

  /// Re-inserts a row into a specific slot (transaction undo of Delete).
  void RestoreSlot(RowId rid, Row row);
  /// Removes a row from a specific slot (transaction undo of Insert).
  void EraseSlot(RowId rid);

  /// Creates a hash index. Populates it from existing rows.
  Status CreateIndex(const std::string& name,
                     const std::vector<std::string>& columns, bool unique);

  /// Creates a single-column ordered index (range scans).
  Status CreateOrderedIndex(const std::string& name,
                            const std::string& column);

  bool HasIndexNamed(const std::string& name) const;

  /// Finds an index whose columns are exactly `column_indexes` (order
  /// insensitive); nullptr when none.
  const Index* FindIndexOn(const std::vector<size_t>& column_indexes) const;

  /// Ordered index on exactly `column_index`; nullptr when none.
  const OrderedIndex* FindOrderedIndexOn(size_t column_index) const;

  const std::vector<std::unique_ptr<Index>>& indexes() const {
    return indexes_;
  }

  /// Approximate in-memory footprint in bytes (rows + indexes).
  size_t ApproxBytes() const;

  /// Approximate size of a compact on-disk page layout (encoded value
  /// widths + row headers + index entries). Drives the paper's Table 3
  /// "Disk Usage" comparison against the graph stores' formats.
  size_t ApproxDiskBytes() const;

 private:
  void IndexInsert(const Row& row, RowId rid);
  void IndexErase(const Row& row, RowId rid);

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<bool> live_;
  std::vector<RowId> free_slots_;
  size_t live_count_ = 0;
  std::vector<std::unique_ptr<Index>> indexes_;
  std::vector<std::unique_ptr<OrderedIndex>> ordered_indexes_;
};

/// Approximate in-memory size of one row's payload.
size_t ApproxRowBytes(const Row& row);

}  // namespace db2graph::sql

#endif  // DB2GRAPH_SQL_TABLE_H_
